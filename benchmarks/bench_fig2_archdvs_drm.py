"""Figure 2: ArchDVS DRM performance for four qualification costs.

For every application and T_qual in {400, 370, 345, 325} K, the DRM
oracle searches the full ArchDVS space (18 microarchitectures x the DVS
grid) and reports the best performance that meets the FIT target,
relative to the base non-adaptive 4 GHz processor.

Paper shapes asserted:
- at 400 K (worst-case qualification) every application gains;
- performance is monotone in T_qual;
- hot, high-IPC media applications lose the most at cheap qualification
  points; the cool, low-IPC applications (twolf, art) lose least and
  hold ~base performance at 345 K.
"""

from repro.core.drm import AdaptationMode
from repro.harness.reporting import format_series
from repro.workloads.suite import WORKLOAD_SUITE

from _bench_utils import prewarm_simulations, run_once

T_QUALS = (400.0, 370.0, 345.0, 325.0)


def reproduce_fig2(drm_oracle):
    # Parallelise the 162 cycle-level simulations through the engine;
    # the oracle search below then runs over a warm cache.
    prewarm_simulations(drm_oracle.cache)
    series = {}
    for profile in WORKLOAD_SUITE:
        series[profile.name] = [
            drm_oracle.best(profile, t_qual_k=t_qual, mode=AdaptationMode.ARCHDVS).performance
            for t_qual in T_QUALS
        ]
    return series


def test_fig2_archdvs_drm(benchmark, emit, drm_oracle):
    series = run_once(benchmark, lambda: reproduce_fig2(drm_oracle))
    text = format_series(
        "Tqual (K)",
        list(T_QUALS),
        series,
        title="Figure 2: ArchDVS DRM performance vs base, by T_qual",
    )
    emit("fig2_archdvs_drm", text)

    perf = {name: dict(zip(T_QUALS, vals)) for name, vals in series.items()}

    # Worst-case qualification is overly conservative: every app gains.
    for name in perf:
        assert perf[name][400.0] > 1.0, name
    # Monotone in the cost proxy.
    for name, vals in series.items():
        assert vals == sorted(vals, reverse=True), name
    # At 345 K the cool low-IPC apps stay near base...
    assert perf["twolf"][345.0] > 0.9
    assert perf["art"][345.0] > 0.9
    # ...while hot media throttles hardest.
    assert perf["MPGdec"][345.0] < perf["twolf"][345.0]
    assert perf["MPGdec"][325.0] <= min(perf["art"][325.0], perf["twolf"][325.0])
    # At 325 K the media apps see a large slowdown (paper: MP3dec -26%).
    assert perf["MP3dec"][325.0] < 0.85
