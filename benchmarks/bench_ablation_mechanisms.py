"""Ablation A1: which failure mechanism dominates where.

Per-mechanism FIT contribution for every application at two qualification
points.  The paper's qualitative claims this checks: TDDB and the thermal
mechanisms respond to temperature, so hot applications are
mechanism-diverse; electromigration tracks activity; and the mechanism
ranking shifts with the qualification temperature (budget headroom is
temperature-relative).
"""

from repro.harness.reporting import format_table
from repro.workloads.suite import WORKLOAD_SUITE

from _bench_utils import run_once

T_QUALS = (400.0, 345.0)


def reproduce(drm_oracle):
    rows = []
    for t_qual in T_QUALS:
        ramp = drm_oracle.ramp_for(t_qual)
        for profile in WORKLOAD_SUITE:
            rel = ramp.application_reliability(drm_oracle.base_evaluation(profile))
            by_mech = rel.account.by_mechanism()
            rows.append(
                {
                    "t_qual": t_qual,
                    "app": profile.name,
                    "EM": by_mech["EM"],
                    "SM": by_mech["SM"],
                    "TDDB": by_mech["TDDB"],
                    "TC": by_mech["TC"],
                    "total": rel.total_fit,
                    "dominant": rel.account.dominant_mechanism(),
                }
            )
    return rows


def test_ablation_mechanism_breakdown(benchmark, emit, drm_oracle):
    rows = run_once(benchmark, lambda: reproduce(drm_oracle))
    text = format_table(
        ["Tqual", "App", "EM", "SM", "TDDB", "TC", "Total", "Dominant"],
        [
            [r["t_qual"], r["app"], r["EM"], r["SM"], r["TDDB"], r["TC"], r["total"], r["dominant"]]
            for r in rows
        ],
        title="Ablation A1: per-mechanism FIT at the base operating point",
    )
    emit("ablation_mechanisms", text)

    for r in rows:
        # SOFR bookkeeping is exact.
        assert r["EM"] + r["SM"] + r["TDDB"] + r["TC"] == r["total"] or abs(
            r["EM"] + r["SM"] + r["TDDB"] + r["TC"] - r["total"]
        ) < 1e-6
        # Every mechanism contributes something for every app.
        for mech in ("EM", "SM", "TDDB", "TC"):
            assert r[mech] > 0.0

    # Cheaper qualification inflates every app's FIT.
    cheap = {r["app"]: r["total"] for r in rows if r["t_qual"] == 345.0}
    costly = {r["app"]: r["total"] for r in rows if r["t_qual"] == 400.0}
    for app in cheap:
        assert cheap[app] > costly[app] * 3
