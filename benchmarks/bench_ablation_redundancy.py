"""Ablation A11: structural duplication and graceful degradation.

The lifetime-enhancement direction the paper's related work points at
(and its authors pursued next): spend area on cold spares (SD) or let
adaptive structures fail soft (GPD).  Evaluated on the reproduction's
calibrated FIT fields with lognormal wear-out lifetimes.

Reported per application: the MTTF improvement of (a) sparing the single
most FIT-loaded structure, (b) sparing the top three, and (c) GPD on the
adaptive execution resources (ALUs/FPUs/window), with the area overhead
of each plan.
"""

from repro.core.redundancy import (
    RedundancyPlan,
    evaluate_degradation,
    evaluate_duplication,
)
from repro.harness.reporting import format_table
from repro.workloads.suite import WORKLOAD_SUITE

from _bench_utils import run_once

T_QUAL = 400.0
APPS = ("MPGdec", "bzip2", "twolf")
#: Relative machine performance after losing capacity in an adaptive
#: structure (from the Arch simulation space: one step down the FU/window
#: ladder costs a few percent for most apps).
GPD_PERFORMANCE = {"ialu": 0.97, "fpu": 0.95, "window": 0.98}


def reproduce(drm_oracle):
    ramp = drm_oracle.ramp_for(T_QUAL)
    rows = []
    for name in APPS:
        profile = next(p for p in WORKLOAD_SUITE if p.name == name)
        account = ramp.application_reliability(
            drm_oracle.base_evaluation(profile)
        ).account
        by_struct = account.by_structure()
        ranked = sorted(by_struct, key=by_struct.get, reverse=True)
        plans = {
            "SD top-1": RedundancyPlan.for_structures(tuple(ranked[:1])),
            "SD top-3": RedundancyPlan.for_structures(tuple(ranked[:3])),
        }
        for label, plan in plans.items():
            result = evaluate_duplication(account, plan, n_samples=12_000, seed=4)
            rows.append(
                {
                    "app": name,
                    "scheme": label,
                    "improvement": result.improvement,
                    "area_mm2": result.area_overhead_mm2,
                    "perf": 1.0,
                }
            )
        gpd = evaluate_degradation(account, GPD_PERFORMANCE, n_samples=12_000, seed=4)
        rows.append(
            {
                "app": name,
                "scheme": "GPD exec resources",
                "improvement": gpd.improvement,
                "area_mm2": 0.0,
                "perf": gpd.mean_relative_performance,
            }
        )
    return rows


def test_ablation_redundancy(benchmark, emit, drm_oracle):
    rows = run_once(benchmark, lambda: reproduce(drm_oracle))
    text = format_table(
        ["App", "Scheme", "MTTF improvement", "Area overhead (mm^2)",
         "Lifetime-avg perf"],
        [
            [r["app"], r["scheme"], r["improvement"], r["area_mm2"], r["perf"]]
            for r in rows
        ],
        title=f"Ablation A11: structural duplication / graceful degradation "
        f"(lognormal lifetimes, qualified at {T_QUAL:.0f}K)",
    )
    emit("ablation_redundancy", text)

    for name in APPS:
        app_rows = {r["scheme"]: r for r in rows if r["app"] == name}
        # Sparing helps, more spares help more, GPD costs no area but
        # some performance.
        assert app_rows["SD top-1"]["improvement"] > 1.02, name
        assert (
            app_rows["SD top-3"]["improvement"]
            >= app_rows["SD top-1"]["improvement"] - 1e-9
        ), name
        assert app_rows["SD top-3"]["area_mm2"] > app_rows["SD top-1"]["area_mm2"], name
        gpd = app_rows["GPD exec resources"]
        assert gpd["improvement"] > 1.0, name
        assert gpd["area_mm2"] == 0.0
        assert 0.9 < gpd["perf"] < 1.0, name
