"""The decision-service benchmark: batched serving vs sequential calls.

Drives the in-process :class:`repro.serve.DecisionService` with the
seeded load generator at concurrency 64, once per traffic mix
(static / dynamic / oscillating / bursty), recording QPS and p50/p99
latency for each.  A second, deliberately naive service — batching off,
decision cache off, evaluation memo off, one worker — replays a slice
of the static trace one request at a time as the sequential baseline.

The serving stack's throughput edge comes from exactly the machinery
the ISSUE names: micro-batching amortises executor hops, batch-level
dedupe collapses concurrent duplicates, the two-tier decision cache
serves the hot set from memory, and the grid-evaluation memo shares
platform sweeps between requests that differ only in their target.

Results land in ``BENCH_serve.json`` at the repository root.  Set
``REPRO_BENCH_SMOKE=1`` for the reduced CI grid; the 5x floor is only
asserted on the full run.
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.serve import (
    DEFAULT_PARAMETERS,
    DecisionService,
    LoadHarness,
    RequestTraceGenerator,
    ServiceConfig,
    TrafficMix,
)

from _bench_utils import run_once, write_bench_result
from conftest import BENCH_DIR

RESULT_PATH = BENCH_DIR.parent / "BENCH_serve.json"

#: Acceptance floor: batched QPS over sequential QPS on the static mix.
MIN_SPEEDUP = 5.0

#: Reduced oracle budgets — serving latency is the measurement target,
#: so the simulation/search cost is scaled to keep the bench in seconds.
BENCH_INSTRUCTIONS = 4_000
BENCH_WARMUP = 1_000
TRACE_APPS = ("MPGdec", "gzip", "art")
TRACE_SEED = 42


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _scale():
    """(requests per mix, concurrency, sequential slice) for this mode."""
    if _smoke():
        return 48, 16, 12
    return 256, 64, 48


def _service_config(**overrides) -> ServiceConfig:
    base = dict(
        dvs_steps=5,
        intra_grid_steps=3,
        instructions=BENCH_INSTRUCTIONS,
        warmup=BENCH_WARMUP,
        sim_seed=7,
        qual_apps=("gzip", "art"),
        workers=4,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def _trace(mix: TrafficMix, n_requests: int):
    parameters = dict(DEFAULT_PARAMETERS)
    parameters["apps"] = TRACE_APPS
    return RequestTraceGenerator(
        mix=mix, parameters=parameters, seed=TRACE_SEED
    ).generate(n_requests)


async def _drive(service, harness, traces):
    results = {}
    for mix, trace in traces.items():
        results[mix] = await harness.run_inprocess(
            service, trace, mix=mix.value
        )
    await service.close()
    return results


async def _drive_sequential(service, trace):
    harness = LoadHarness(concurrency=1)
    start = time.perf_counter()
    result = await harness.run_inprocess(service, trace, mix="static")
    wall_s = time.perf_counter() - start
    await service.close()
    return result, wall_s


def measure_serve():
    n_requests, concurrency, n_sequential = _scale()
    traces = {mix: _trace(mix, n_requests) for mix in TrafficMix}

    batched = DecisionService(
        _service_config(max_batch=concurrency, max_delay_s=0.005)
    )
    batched.prewarm(TRACE_APPS)
    mix_results = asyncio.run(
        _drive(batched, LoadHarness(concurrency=concurrency), traces)
    )

    sequential = DecisionService(
        _service_config(
            batching=False, cache_capacity=0, eval_memo_capacity=0, workers=1
        )
    )
    sequential.prewarm(TRACE_APPS)
    sequential_result, _ = asyncio.run(
        _drive_sequential(
            sequential, traces[TrafficMix.STATIC][:n_sequential]
        )
    )

    static = mix_results[TrafficMix.STATIC]
    for result in mix_results.values():
        assert result.errors == 0
    assert sequential_result.errors == 0

    return {
        "mode": "smoke" if _smoke() else "full",
        "headline": {
            "speedup_vs_sequential": static.qps / sequential_result.qps,
            "static_qps": static.qps,
            "sequential_qps": sequential_result.qps,
        },
        "timings": {
            "static_wall_s": static.wall_s,
            "sequential_wall_s": sequential_result.wall_s,
        },
        "details": {
            "concurrency": concurrency,
            "requests_per_mix": n_requests,
            "apps": list(TRACE_APPS),
            "trace_seed": TRACE_SEED,
            "mixes": {
                mix.value: result.as_dict()
                for mix, result in mix_results.items()
            },
            "sequential": {
                "requests": sequential_result.requests,
                "wall_s": sequential_result.wall_s,
                "qps": sequential_result.qps,
                "p50_ms": sequential_result.p50_ms,
                "p99_ms": sequential_result.p99_ms,
            },
        },
    }


def test_serve_throughput(benchmark, emit):
    result = run_once(benchmark, measure_serve)
    write_bench_result(
        RESULT_PATH,
        name="serve",
        mode=result["mode"],
        headline=result["headline"],
        floor=MIN_SPEEDUP,
        timings=result["timings"],
        details=result["details"],
    )
    details = result["details"]
    lines = [
        "Decision service ({mode}), concurrency {concurrency}, "
        "{requests_per_mix} requests/mix:".format(
            mode=result["mode"],
            concurrency=details["concurrency"],
            requests_per_mix=details["requests_per_mix"],
        )
    ]
    for mix, summary in details["mixes"].items():
        lines.append(
            "  {mix:<12} {qps:7.1f} qps  p50 {p50:7.2f} ms  "
            "p99 {p99:7.2f} ms  tiers {tiers}".format(
                mix=mix,
                qps=summary["qps"],
                p50=summary["p50_ms"],
                p99=summary["p99_ms"],
                tiers=summary["tiers"],
            )
        )
    lines.append(
        "  sequential   {qps:7.1f} qps  p50 {p50:7.2f} ms  "
        "(batching/cache/memo off)".format(
            qps=details["sequential"]["qps"],
            p50=details["sequential"]["p50_ms"],
        )
    )
    lines.append(
        "  speedup (static vs sequential): "
        "{speedup:.1f}x".format(speedup=result["headline"]["speedup_vs_sequential"])
    )
    emit("serve", "\n".join(lines))

    for summary in details["mixes"].values():
        assert summary["qps"] > 0.0
        assert summary["p99_ms"] >= summary["p50_ms"]
    assert result["headline"]["speedup_vs_sequential"] > 1.0
    if not _smoke():
        assert result["headline"]["speedup_vs_sequential"] >= MIN_SPEEDUP
