"""Table 1: the base non-adaptive processor.

Regenerates the configuration table from the objects the library actually
instantiates, and cross-checks every row against the paper's values —
the configuration is an input, so here paper-vs-measured must match
exactly.
"""

from repro.config.dvs import DEFAULT_VF_CURVE
from repro.config.microarch import BASE_MICROARCH
from repro.config.technology import DEFAULT_TECHNOLOGY
from repro.cpu.caches import HierarchyLatencies, MemoryHierarchy
from repro.harness.reporting import format_table

from _bench_utils import run_once


def build_table() -> tuple[str, list[tuple[str, str, str]]]:
    tech = DEFAULT_TECHNOLOGY
    core = BASE_MICROARCH
    lat = HierarchyLatencies()
    hierarchy = MemoryHierarchy()
    rows = [
        ("Process technology", f"{tech.process_nm:.0f} nm", "65 nm"),
        ("Vdd", f"{tech.vdd_nominal_v:.1f} V", "1.0 V"),
        ("Processor frequency", f"{tech.frequency_nominal_hz/1e9:.1f} GHz", "4.0 GHz"),
        ("Core size", f"{tech.core_area_mm2:.1f} mm^2", "20.2 mm^2"),
        ("Die edge", f"{tech.die_edge_mm:.1f} mm", "4.5 mm"),
        ("Leakage density @383K", f"{tech.leakage_density_w_per_mm2:.1f} W/mm^2", "0.5 W/mm^2"),
        ("Fetch/retire rate", f"{core.fetch_width}/{core.retire_width} per cycle", "8 per cycle"),
        ("Functional units", f"{core.n_ialu} Int, {core.n_fpu} FP, {core.n_agen} Add. gen.", "6 Int, 4 FP, 2 Add. gen."),
        ("Instruction window", f"{core.window_size} entries", "128 entries"),
        ("Register file", f"{core.int_registers} int + {core.fp_registers} FP", "192 + 192"),
        ("Memory queue", f"{core.memory_queue_size} entries", "32 entries"),
        ("Branch prediction", f"{core.bpred_bytes // 1024}KB bimodal agree, {core.ras_entries}-entry RAS", "2KB bimodal agree, 32 entry RAS"),
        ("L1 data", f"{64}KB 2-way, {hierarchy.l1d.n_sets} sets, 12 MSHRs", "64KB 2-way, 12 MSHRs"),
        ("L1 instruction", f"{32}KB 2-way, {hierarchy.l1i.n_sets} sets", "32KB 2-way"),
        ("L2 unified", f"{1024}KB 4-way, {hierarchy.l2.n_sets} sets", "1MB 4-way"),
        ("L1 hit", f"{lat.l1_hit} cycles", "2 cycles"),
        ("L2 hit (off chip)", f"{lat.l2_hit} cycles", "20 cycles"),
        ("Main memory (off chip)", f"{lat.memory} cycles", "102 cycles"),
        ("DVS range", f"{DEFAULT_VF_CURVE.f_min_hz/1e9:.1f}-{DEFAULT_VF_CURVE.f_max_hz/1e9:.1f} GHz", "2.5-5.0 GHz"),
    ]
    text = format_table(
        ["Parameter", "Instantiated", "Paper (Table 1)"],
        [list(r) for r in rows],
        title="Table 1: base non-adaptive processor",
    )
    return text, rows


def test_table1_base_config(benchmark, emit):
    text, rows = run_once(benchmark, build_table)
    emit("table1_base_config", text)
    # Structural cross-checks: the instantiated machine IS Table 1.
    assert BASE_MICROARCH.issue_width == 12
    assert DEFAULT_TECHNOLOGY.core_area_mm2 == 20.2
    assert HierarchyLatencies().memory == 102
