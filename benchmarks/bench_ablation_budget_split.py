"""Ablation A2: sensitivity of DRM headroom to the budget split.

The paper assumes the target FIT is split evenly across the four failure
mechanisms.  This ablation re-qualifies the same processor with skewed
splits and measures how much DVS-DRM performance an application gets
under each.  Expected: the split is a
consequential design choice — starving whichever mechanism binds at the
preferred operating point costs performance.  (For bzip2 at this
qualification point the binding mechanisms turn out to be the
temperature-driven ones, so over-protecting TDDB at their expense is the
costly split.)
"""

from repro.core.drm import AdaptationMode
from repro.core.qualification import calibrate
from repro.core.ramp import RampModel
from repro.harness.reporting import format_table
from repro.workloads.suite import workload_by_name

from _bench_utils import run_once

T_QUAL = 370.0
APP = "bzip2"

SPLITS = {
    "even (paper)": {"EM": 0.25, "SM": 0.25, "TDDB": 0.25, "TC": 0.25},
    "tddb-heavy": {"EM": 0.10, "SM": 0.10, "TDDB": 0.70, "TC": 0.10},
    "tddb-starved": {"EM": 0.30, "SM": 0.30, "TDDB": 0.10, "TC": 0.30},
    "em-heavy": {"EM": 0.70, "SM": 0.10, "TDDB": 0.10, "TC": 0.10},
}


def reproduce(drm_oracle):
    profile = workload_by_name(APP)
    rows = []
    for label, shares in SPLITS.items():
        qualified = calibrate(
            drm_oracle.qualification_point(T_QUAL),
            fit_target=drm_oracle.fit_target,
            technology=drm_oracle.platform.technology,
            mechanism_shares=shares,
        )
        ramp = RampModel(qualified)
        best = None
        for config, op in drm_oracle.candidates(AdaptationMode.DVS):
            perf, rel, _ = drm_oracle.evaluate_candidate(profile, config, op, ramp)
            if rel.meets_target and (best is None or perf > best[0]):
                best = (perf, op, rel.total_fit)
        rows.append(
            {
                "split": label,
                "perf": best[0] if best else 0.0,
                "freq": best[1].frequency_ghz if best else float("nan"),
                "fit": best[2] if best else float("nan"),
            }
        )
    return rows


def test_ablation_budget_split(benchmark, emit, drm_oracle):
    rows = run_once(benchmark, lambda: reproduce(drm_oracle))
    text = format_table(
        ["Budget split", "DRM perf", "Chosen f (GHz)", "FIT"],
        [[r["split"], r["perf"], r["freq"], r["fit"]] for r in rows],
        title=f"Ablation A2: mechanism budget split vs DVS-DRM performance ({APP}, Tqual={T_QUAL:.0f}K)",
    )
    emit("ablation_budget_split", text)

    perf = {r["split"]: r["perf"] for r in rows}
    # The split materially moves the achievable operating point.
    assert max(perf.values()) > min(perf.values())
    # The paper's even split is a reasonable compromise: never the worst.
    assert perf["even (paper)"] >= min(perf.values())
    # Every split still admits a usable operating point.
    assert all(p > 0.5 for p in perf.values())
