"""Ablation A6: technology scaling vs lifetime reliability (Section 1.2).

The paper motivates the whole agenda with scaling: power density rises
node over node, temperature follows, and wear-out accelerates
exponentially.  This bench runs the density trajectory of
:mod:`repro.core.scaling` on a hot and a cool application (reliability
held at the 65 nm worst-case qualification) and checks the claim's
executable form: FIT grows monotonically and superlinearly with density,
and the 65 nm node is the last one where the hot application still meets
the 30-year target without intervention.
"""

from repro.core.scaling import ScalingStudy
from repro.harness.reporting import format_table
from repro.workloads.suite import workload_by_name

from _bench_utils import run_once

APPS = ("MPGdec", "twolf")


def reproduce(drm_oracle):
    ramp = drm_oracle.ramp_for(400.0)
    study = ScalingStudy(ramp, base_platform=drm_oracle.platform)
    rows = []
    for name in APPS:
        run = drm_oracle.cache.run(workload_by_name(name))
        for result in study.trajectory(run):
            rows.append(
                {
                    "app": name,
                    "node": result.scenario.label,
                    "density": result.scenario.power_density_scale,
                    "power": result.avg_power_w,
                    "peak_t": result.peak_temperature_k,
                    "fit": result.fit,
                }
            )
    return rows


def test_ablation_scaling(benchmark, emit, drm_oracle):
    rows = run_once(benchmark, lambda: reproduce(drm_oracle))
    text = format_table(
        ["App", "Node", "Density x", "Power W", "Peak T (K)", "FIT"],
        [
            [r["app"], r["node"], r["density"], r["power"], r["peak_t"], r["fit"]]
            for r in rows
        ],
        title="Ablation A6: FIT along the power-density scaling trajectory "
        "(qualified at the 65nm 400K worst case)",
    )
    emit("ablation_scaling", text)

    for name in APPS:
        app_rows = [r for r in rows if r["app"] == name]
        fits = [r["fit"] for r in app_rows]
        temps = [r["peak_t"] for r in app_rows]
        # Monotone in density: hotter nodes fail faster.
        assert fits == sorted(fits), name
        assert temps == sorted(temps), name
        # Superlinear: the last density step (~1.27x) costs more than
        # 1.27x in FIT for every app...
        assert fits[-1] / fits[-2] > 1.27, name
    # ...and dramatically more for the hot application, where the
    # exponential temperature acceleration has the most to amplify.
    hot_fits = [r["fit"] for r in rows if r["app"] == "MPGdec"]
    assert hot_fits[-1] / hot_fits[-2] > 1.27 * 1.5
    # The hot application blows the target two density steps past 65 nm.
    hot = [r for r in rows if r["app"] == "MPGdec"]
    assert hot[3]["fit"] <= 4000.0          # calibrated 65 nm point
    assert hot[5]["fit"] > 4000.0           # the "32nm-density" point
