"""The batched-kernel speedup benchmark: scalar loop vs evaluate_batch.

Times the full ArchDVS candidate grid (18 microarchitectures x the DVS
grid) two ways for each application:

- **scalar** — the retained reference path: one
  ``Platform._evaluate_mixed_reference`` fixed point plus one scalar RAMP
  accounting pass per candidate, exactly what the oracles did before the
  kernel existed;
- **batched** — one ``Platform.evaluate_batch`` call per
  microarchitecture (DVS points share a simulation) plus one
  ``RampModel.application_fit_batch`` pass.

Results land in ``BENCH_batch_kernel.json`` at the repository root
(candidates/sec for both paths and the speedup), seeding the perf
trajectory.  Set ``REPRO_BENCH_SMOKE=1`` to run a reduced grid (CI's
bench-smoke job); the speedup floor is only asserted on the full grid.
"""

from __future__ import annotations

import itertools
import os
import time

from repro.config.microarch import arch_adaptation_space
from repro.workloads.suite import WORKLOAD_SUITE

from _bench_utils import prewarm_simulations, run_once, write_bench_result
from conftest import BENCH_DIR, BENCH_DVS_STEPS

RESULT_PATH = BENCH_DIR.parent / "BENCH_batch_kernel.json"

#: The acceptance floor for the full ArchDVS grid.
MIN_SPEEDUP = 5.0

T_QUAL_K = 370.0


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _grid_spec(drm_oracle):
    """(profiles, configs, operating points) — reduced under smoke."""
    configs = arch_adaptation_space()
    ops = drm_oracle.vf_curve.grid(BENCH_DVS_STEPS)
    profiles = WORKLOAD_SUITE
    if _smoke():
        return profiles[:2], configs[:3], ops[::2]
    return profiles, configs, ops


def measure_batch_kernel(drm_oracle):
    profiles, configs, ops = _grid_spec(drm_oracle)
    prewarm_simulations(drm_oracle.cache, profiles=profiles, configs=configs)
    platform = drm_oracle.platform
    ramp = drm_oracle.ramp_for(T_QUAL_K)
    candidates = [(c, op) for c in configs for op in ops]

    scalar_s = 0.0
    batched_s = 0.0
    scalar_fits = []
    batched_fits = []
    for profile in profiles:
        runs = {c: drm_oracle.cache.run(profile, c) for c in configs}

        start = time.perf_counter()
        for config, op in candidates:
            evaluation = platform._evaluate_mixed_reference(
                runs[config], [op] * len(runs[config].phases)
            )
            scalar_fits.append(
                ramp.application_reliability(evaluation).total_fit
            )
        scalar_s += time.perf_counter() - start

        start = time.perf_counter()
        for config, group in itertools.groupby(
            candidates, key=lambda ca: ca[0]
        ):
            batch = platform.evaluate_batch(
                runs[config], [op for _, op in group]
            )
            batched_fits.extend(
                float(f) for f in ramp.application_fit_batch(batch)
            )
        batched_s += time.perf_counter() - start

    # The two paths must agree before their timing comparison means
    # anything (documented equivalence tolerance).
    for fit_s, fit_b in zip(scalar_fits, batched_fits):
        assert abs(fit_b - fit_s) <= 1e-9 * abs(fit_s)

    evaluations = len(candidates) * len(profiles)
    return {
        "mode": "smoke" if _smoke() else "full",
        "headline": {
            "speedup": scalar_s / batched_s,
            "scalar_candidates_per_s": evaluations / scalar_s,
            "batched_candidates_per_s": evaluations / batched_s,
        },
        "timings": {"scalar_s": scalar_s, "batched_s": batched_s},
        "details": {
            "t_qual_k": T_QUAL_K,
            "n_profiles": len(profiles),
            "n_configs": len(configs),
            "n_dvs_points": len(ops),
            "n_candidates_per_profile": len(candidates),
            "n_evaluations": evaluations,
        },
    }


def test_batch_kernel_speedup(benchmark, emit, drm_oracle):
    result = run_once(benchmark, lambda: measure_batch_kernel(drm_oracle))
    write_bench_result(
        RESULT_PATH,
        name="batch_kernel",
        mode=result["mode"],
        headline=result["headline"],
        floor=MIN_SPEEDUP,
        timings=result["timings"],
        details=result["details"],
    )
    emit(
        "batch_kernel",
        "Batched kernel vs scalar loop ({mode}): "
        "{n_evaluations} evaluations, scalar {scalar_s:.2f} s "
        "({scalar_per_s:.0f}/s), batched {batched_s:.2f} s "
        "({batched_per_s:.0f}/s), speedup {speedup:.1f}x".format(
            mode=result["mode"],
            n_evaluations=result["details"]["n_evaluations"],
            scalar_s=result["timings"]["scalar_s"],
            scalar_per_s=result["headline"]["scalar_candidates_per_s"],
            batched_s=result["timings"]["batched_s"],
            batched_per_s=result["headline"]["batched_candidates_per_s"],
            speedup=result["headline"]["speedup"],
        ),
    )
    assert result["timings"]["batched_s"] < result["timings"]["scalar_s"]
    if not _smoke():
        assert result["headline"]["speedup"] >= MIN_SPEEDUP
