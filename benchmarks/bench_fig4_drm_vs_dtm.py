"""Figure 4: DRM vs DTM frequency choices across the suite.

For every application and every temperature in {325, 335, 345, 360, 370,
400} K, report the DVS frequency chosen by DRM (interpreting the
temperature as T_qual) and by DTM (interpreting it as T_limit) — the
paper's DVS-Rel and DVS-Temp curves.

Paper shapes asserted:
- both curves rise with temperature;
- the DTM curve is steeper than the DRM curve (reliability's exponential
  temperature dependence plus TDDB's voltage term flatten DVS-Rel);
- the curves cross, and the crossover point is application dependent;
- on the hot side DTM's choice violates the reliability target; on the
  cool side DRM's choice violates the thermal limit.
"""

from repro.config.microarch import BASE_MICROARCH
from repro.core.drm import AdaptationMode
from repro.harness.reporting import format_series
from repro.workloads.suite import WORKLOAD_SUITE

from _bench_utils import run_once

TEMPS = (325.0, 335.0, 345.0, 360.0, 370.0, 400.0)


def reproduce_fig4(drm_oracle, dtm_oracle):
    curves = {}
    for profile in WORKLOAD_SUITE:
        curves[f"{profile.name}:DVS-Rel"] = [
            drm_oracle.best(profile, t_qual_k=t, mode=AdaptationMode.DVS).op.frequency_ghz
            for t in TEMPS
        ]
        curves[f"{profile.name}:DVS-Temp"] = [
            dtm_oracle.best(profile, t_limit_k=t).op.frequency_ghz for t in TEMPS
        ]
    return curves


def test_fig4_drm_vs_dtm(benchmark, emit, drm_oracle, dtm_oracle):
    curves = run_once(benchmark, lambda: reproduce_fig4(drm_oracle, dtm_oracle))
    text = format_series(
        "T (K)",
        list(TEMPS),
        curves,
        title="Figure 4: frequency chosen by DRM (DVS-Rel) vs DTM (DVS-Temp), GHz",
    )
    emit("fig4_drm_vs_dtm", text)

    crossover_signs = []
    for profile in WORKLOAD_SUITE:
        rel = curves[f"{profile.name}:DVS-Rel"]
        temp = curves[f"{profile.name}:DVS-Temp"]
        # Both curves are non-decreasing in temperature.
        assert rel == sorted(rel), profile.name
        assert temp == sorted(temp), profile.name
        cool_excess = max(r - t for r, t in zip(rel[:3], temp[:3]))
        hot_excess = max(t - r for r, t in zip(rel[3:], temp[3:]))
        crossover_signs.append((cool_excess, hot_excess))

    # DVS-Temp is the steeper family: across the suite its total rise over
    # the range dominates DVS-Rel's (a per-app exception can occur when
    # both curves saturate at the DVS floor).
    steeper = sum(
        1
        for p in WORKLOAD_SUITE
        if (curves[f"{p.name}:DVS-Temp"][-1] - curves[f"{p.name}:DVS-Temp"][0])
        >= (curves[f"{p.name}:DVS-Rel"][-1] - curves[f"{p.name}:DVS-Rel"][0]) - 1e-9
    )
    assert steeper >= 7

    # At the cool end DRM out-clocks DTM for most apps (DRM would violate
    # the thermal limit); at the hot end DTM out-clocks DRM for at least
    # some apps (DTM would violate the reliability target).
    assert sum(1 for cool, _ in crossover_signs if cool > 0) >= 5
    assert sum(1 for _, hot in crossover_signs if hot > 0) >= 2

    # The crossover temperature differs between applications: the
    # sign pattern across TEMPS is not identical for all apps.
    patterns = set()
    for profile in WORKLOAD_SUITE:
        rel = curves[f"{profile.name}:DVS-Rel"]
        temp = curves[f"{profile.name}:DVS-Temp"]
        patterns.add(tuple(1 if t > r else (-1 if t < r else 0) for r, t in zip(rel, temp)))
    assert len(patterns) >= 2


def test_fig4_cross_policy_violations(benchmark, emit, drm_oracle, dtm_oracle):
    """The quantified 'neither subsumes the other' claim."""

    def measure():
        from repro.workloads.suite import workload_by_name

        app = workload_by_name("bzip2")
        run = drm_oracle.cache.run(app, BASE_MICROARCH)
        # Hot side: DTM at T=400 vs the 400 K-qualified FIT target.
        dtm_choice = dtm_oracle.best(app, t_limit_k=400.0)
        ramp = drm_oracle.ramp_for(400.0)
        fit_of_dtm = ramp.application_reliability(
            drm_oracle.platform.evaluate(run, dtm_choice.op)
        ).total_fit
        # Cool side: DRM at T_qual=345 vs the 345 K thermal limit.
        drm_choice = drm_oracle.best(app, t_qual_k=345.0, mode=AdaptationMode.DVS)
        peak_of_drm = drm_oracle.platform.evaluate(run, drm_choice.op).peak_temperature_k
        return fit_of_dtm, peak_of_drm

    fit_of_dtm, peak_of_drm = run_once(benchmark, measure)
    emit(
        "fig4_violations",
        "Cross-policy violations (bzip2):\n"
        f"  FIT of DTM's choice at T_limit=400K (target 4000): {fit_of_dtm:.0f}\n"
        f"  Peak T of DRM's choice at T_qual=345K (limit 345K): {peak_of_drm:.1f} K",
    )
    assert fit_of_dtm > 4000.0  # DTM breaks the reliability budget
    assert peak_of_drm > 345.0  # DRM breaks the thermal cap
