"""Ablation A10: relaxing SOFR's constant-failure-rate assumption.

Section 3.5 admits the constant-rate assumption "is clearly inaccurate"
for wear-out and Section 8 promises time-dependent models.  This bench
takes each application's calibrated per-(structure, mechanism) FIT field,
replaces the exponential lifetimes with wear-out shapes of the *same
means* (Weibull beta = 2, 4; lognormal sigma = 0.5), and solves the
series system by Monte Carlo.

Expected: the exponential Monte Carlo matches the SOFR algebra (the
cross-check), and every wear-out shape yields a *longer* system MTTF —
quantifying how conservative the paper's SOFR-based FIT values are and,
by implication, how much additional DRM headroom a time-dependent model
would legitimise.
"""

import pytest

from repro.core.lifetime import (
    ExponentialLifetime,
    LognormalLifetime,
    WeibullLifetime,
    component_mttfs_from_account,
    series_system_mttf,
)
from repro.harness.reporting import format_table
from repro.workloads.suite import WORKLOAD_SUITE

from _bench_utils import run_once

T_QUAL = 400.0
APPS = ("MPGdec", "bzip2", "twolf")
DISTRIBUTIONS = (
    ExponentialLifetime(),
    WeibullLifetime(2.0),
    WeibullLifetime(4.0),
    LognormalLifetime(0.5),
)


def reproduce(drm_oracle):
    ramp = drm_oracle.ramp_for(T_QUAL)
    rows = []
    for name in APPS:
        profile = next(p for p in WORKLOAD_SUITE if p.name == name)
        rel = ramp.application_reliability(drm_oracle.base_evaluation(profile))
        mttfs = component_mttfs_from_account(rel.account)
        for dist in DISTRIBUTIONS:
            result = series_system_mttf(mttfs, dist, n_samples=30_000, seed=11)
            rows.append(
                {
                    "app": name,
                    "distribution": result.distribution,
                    "sofr_years": result.sofr_mttf_hours / 8760.0,
                    "mc_years": result.mttf_hours / 8760.0,
                    "ratio": result.sofr_conservatism,
                }
            )
    return rows


def test_ablation_lifetime_distributions(benchmark, emit, drm_oracle):
    rows = run_once(benchmark, lambda: reproduce(drm_oracle))
    text = format_table(
        ["App", "Lifetime model", "SOFR MTTF (yr)", "MC MTTF (yr)", "MC/SOFR"],
        [
            [r["app"], r["distribution"], r["sofr_years"], r["mc_years"], r["ratio"]]
            for r in rows
        ],
        title=f"Ablation A10: series-system MTTF under time-dependent lifetimes "
        f"(qualified at {T_QUAL:.0f}K)",
    )
    emit("ablation_lifetime", text)

    for r in rows:
        if r["distribution"] == "exponential":
            # The MC solver reproduces the SOFR algebra under SOFR's own
            # assumption.
            assert r["ratio"] == pytest.approx(1.0, rel=0.03), r["app"]
        else:
            # Wear-out shapes: SOFR is conservative.
            assert r["ratio"] > 1.1, (r["app"], r["distribution"])
    # Steeper wear-out = more conservatism, for every app.
    for name in APPS:
        b2 = next(r for r in rows if r["app"] == name and "beta=2" in r["distribution"])
        b4 = next(r for r in rows if r["app"] == name and "beta=4" in r["distribution"])
        assert b4["ratio"] > b2["ratio"]

