"""Ablation A3: time-averaged FIT vs worst-instant FIT.

The paper's Section 7.1 argument: at a higher frequency "the temperature
will occasionally exceed 400K but the total FIT value will not exceed the
target because higher instantaneous FIT values are compensated by lower
values at other times".  Current worst-case methodology effectively
budgets to the worst instant.  This ablation quantifies, per application,
the gap between the two accounting rules and the performance a
worst-instant rule would forfeit.
"""

from repro.core.drm import AdaptationMode
from repro.harness.reporting import format_table
from repro.workloads.suite import WORKLOAD_SUITE

from _bench_utils import run_once

T_QUAL = 370.0


def reproduce(drm_oracle):
    ramp = drm_oracle.ramp_for(T_QUAL)
    rows = []
    for profile in WORKLOAD_SUITE:
        # Oracle choice under the paper's (time-averaged) accounting.
        avg_decision = drm_oracle.best(profile, t_qual_k=T_QUAL, mode=AdaptationMode.DVS)
        # Oracle choice if the *worst instant* had to stay within target.
        best_worst = None
        for config, op in drm_oracle.candidates(AdaptationMode.DVS):
            perf, rel, evaluation = drm_oracle.evaluate_candidate(
                profile, config, op, ramp
            )
            worst = drm_oracle.ramp_for(T_QUAL).worst_instant_fit(evaluation)
            tc = rel.account.by_mechanism()["TC"]
            if worst + tc <= drm_oracle.fit_target and (
                best_worst is None or perf > best_worst[0]
            ):
                best_worst = (perf, worst + tc)
        rel_base = ramp.application_reliability(drm_oracle.base_evaluation(profile))
        rows.append(
            {
                "app": profile.name,
                "avg_fit": rel_base.total_fit,
                "worst_fit": ramp.worst_instant_fit(drm_oracle.base_evaluation(profile))
                + rel_base.account.by_mechanism()["TC"],
                "perf_avg_rule": avg_decision.performance,
                "perf_worst_rule": best_worst[0] if best_worst else 0.0,
            }
        )
    return rows


def test_ablation_time_averaging(benchmark, emit, drm_oracle):
    rows = run_once(benchmark, lambda: reproduce(drm_oracle))
    text = format_table(
        ["App", "Avg FIT (base)", "Worst-instant FIT (base)",
         "DRM perf (avg rule)", "DRM perf (worst-instant rule)"],
        [
            [r["app"], r["avg_fit"], r["worst_fit"], r["perf_avg_rule"], r["perf_worst_rule"]]
            for r in rows
        ],
        title=f"Ablation A3: time-averaged vs worst-instant accounting (Tqual={T_QUAL:.0f}K)",
    )
    emit("ablation_time_averaging", text)

    for r in rows:
        # The worst instant is never below the average (sanity) ...
        assert r["worst_fit"] >= r["avg_fit"] - 1e-6, r["app"]
        # ... and the worst-instant rule never allows more performance.
        assert r["perf_worst_rule"] <= r["perf_avg_rule"] + 1e-9, r["app"]
    # Phase variation opens a real gap between the accounting rules...
    gapped = sum(1 for r in rows if r["worst_fit"] > r["avg_fit"] * 1.02)
    assert gapped >= 7
    # ...which costs performance for at least one app even on the coarse
    # 0.25 GHz DVS grid (finer actuators would monetise more of the gap).
    strictly = sum(1 for r in rows if r["perf_worst_rule"] < r["perf_avg_rule"] - 1e-9)
    assert strictly >= 1
