"""Ablation A4: feedback DRM controller vs the oracle.

The paper's evaluation uses an oracle that knows each application's
behaviour in advance; its future work promises practical control
algorithms.  This bench runs the PI bank-regulated DVS controller
(:mod:`repro.core.controllers`) with no foreknowledge and compares its
steady performance and lifetime-average FIT against the oracle decision.
Expected: the controller lands within a few percent of oracle performance
while keeping the lifetime-average FIT at or below target.
"""

from repro.core.controllers import FeedbackDVSController
from repro.core.drm import AdaptationMode
from repro.harness.reporting import format_table
from repro.workloads.suite import workload_by_name

from _bench_utils import run_once

T_QUAL = 370.0
APPS = ("MPGdec", "bzip2", "twolf")
EPOCHS = 16


def reproduce(drm_oracle):
    ramp = drm_oracle.ramp_for(T_QUAL)
    rows = []
    for name in APPS:
        profile = workload_by_name(name)
        run = drm_oracle.cache.run(profile)
        oracle_decision = drm_oracle.best(profile, t_qual_k=T_QUAL, mode=AdaptationMode.DVS)
        controller = FeedbackDVSController(drm_oracle.platform, ramp)
        trace = controller.run(run, n_epochs=EPOCHS, start_frequency_hz=3.0e9)
        steady = trace.epochs[EPOCHS // 2 :]
        steady_perf = sum(e.performance for e in steady) / len(steady)
        rows.append(
            {
                "app": name,
                "oracle_perf": oracle_decision.performance,
                "controller_perf": steady_perf,
                "gap": steady_perf - oracle_decision.performance,
                "lifetime_fit": trace.average_fit,
                "final_f": trace.epochs[-1].op.frequency_ghz,
            }
        )
    return rows


def test_ablation_controller_vs_oracle(benchmark, emit, drm_oracle):
    rows = run_once(benchmark, lambda: reproduce(drm_oracle))
    text = format_table(
        ["App", "Oracle perf", "Controller steady perf", "Gap",
         "Lifetime-avg FIT", "Final f (GHz)"],
        [
            [r["app"], r["oracle_perf"], r["controller_perf"], r["gap"],
             r["lifetime_fit"], r["final_f"]]
            for r in rows
        ],
        title=f"Ablation A4: feedback controller vs oracle (Tqual={T_QUAL:.0f}K, {EPOCHS} epochs)",
    )
    emit("ablation_controller", text)

    for r in rows:
        # The controller approaches oracle performance from below...
        assert r["controller_perf"] > 0.85 * r["oracle_perf"], r["app"]
        # ...without blowing the lifetime budget.
        assert r["lifetime_fit"] < 1.25 * drm_oracle.fit_target, r["app"]
