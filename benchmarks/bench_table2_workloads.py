"""Table 2: the nine applications' base-processor IPC and power.

Regenerates both measured columns (IPC, total power at 4 GHz / 1.0 V)
from the cycle-level simulator + power/thermal stack and reports them
next to the paper's values.  Shape target: IPC/power orderings preserved;
absolute values within the calibration bands recorded in EXPERIMENTS.md.
"""

import numpy as np

from repro.config.dvs import DEFAULT_VF_CURVE
from repro.harness.reporting import format_table
from repro.workloads.suite import WORKLOAD_SUITE

from _bench_utils import run_once


def reproduce_table2(sim_cache, platform):
    nominal = DEFAULT_VF_CURVE.nominal
    rows = []
    for profile in WORKLOAD_SUITE:
        run = sim_cache.run(profile)
        evaluation = platform.evaluate(run, nominal)
        rows.append(
            {
                "name": profile.name,
                "category": profile.category,
                "ipc": run.ipc,
                "ipc_paper": profile.table2_ipc,
                "power": evaluation.avg_power_w,
                "power_paper": profile.table2_power_w,
                "peak_t": evaluation.peak_temperature_k,
            }
        )
    return rows


def test_table2_workloads(benchmark, emit, sim_cache, platform):
    rows = run_once(benchmark, lambda: reproduce_table2(sim_cache, platform))
    text = format_table(
        ["App", "Type", "IPC", "IPC (paper)", "Power W", "Power W (paper)", "Peak T (K)"],
        [
            [r["name"], r["category"], r["ipc"], r["ipc_paper"], r["power"],
             r["power_paper"], r["peak_t"]]
            for r in rows
        ],
        title="Table 2: workloads on the base non-adaptive processor",
    )
    emit("table2_workloads", text)

    ipcs = [r["ipc"] for r in rows]
    papers = [r["ipc_paper"] for r in rows]
    # Spearman-ish ordering check: measured IPC ranks == paper IPC ranks.
    assert np.corrcoef(np.argsort(np.argsort(ipcs)), np.argsort(np.argsort(papers)))[0, 1] > 0.9
    # Every IPC within the calibration band.
    for r in rows:
        assert 0.65 < r["ipc"] / r["ipc_paper"] < 1.35, r["name"]
        assert 0.7 < r["power"] / r["power_paper"] < 1.3, r["name"]
    # The worst-case thermal anchor: hottest app near 400 K.
    assert 380.0 < max(r["peak_t"] for r in rows) < 410.0
