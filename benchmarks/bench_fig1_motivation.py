"""Figure 1: the DRM motivation picture.

Three processors qualified at T_qual1 > T_qual2 > T_qual3 (cost order),
two applications A (hot: MPGdec) and B (cool: twolf).  The figure's
claim: on the expensive processor both apps are under the FIT target
(over-design); on the middle one only the cool app fits; on the cheap one
neither does — and DRM adapts performance to repair the violations.
"""

from repro.core.drm import AdaptationMode
from repro.harness.reporting import format_table
from repro.workloads.suite import workload_by_name

from _bench_utils import run_once

T_QUALS = (400.0, 362.0, 335.0)  # processors 1 (expensive) .. 3 (cheap)
APP_A = "MPGdec"
APP_B = "twolf"


def reproduce_fig1(drm_oracle):
    rows = []
    for i, t_qual in enumerate(T_QUALS, start=1):
        ramp = drm_oracle.ramp_for(t_qual)
        for name in (APP_A, APP_B):
            profile = workload_by_name(name)
            rel = ramp.application_reliability(drm_oracle.base_evaluation(profile))
            drm = drm_oracle.best(profile, t_qual_k=t_qual, mode=AdaptationMode.DVS)
            rows.append(
                {
                    "processor": f"P{i} (Tqual={t_qual:.0f}K)",
                    "app": name,
                    "fit": rel.total_fit,
                    "meets": rel.meets_target,
                    "drm_perf": drm.performance,
                    "drm_fit": drm.fit,
                }
            )
    return rows


def test_fig1_motivation(benchmark, emit, drm_oracle):
    rows = run_once(benchmark, lambda: reproduce_fig1(drm_oracle))
    text = format_table(
        ["Processor", "App", "FIT (no DRM)", "Meets 4000?", "DRM perf", "DRM FIT"],
        [
            [r["processor"], r["app"], r["fit"], str(r["meets"]), r["drm_perf"], r["drm_fit"]]
            for r in rows
        ],
        title="Figure 1: two applications on three qualification cost points",
    )
    emit("fig1_motivation", text)

    by = {(r["processor"].split()[0], r["app"]): r for r in rows}
    # P1 (expensive): both applications exceed the target (over-design).
    assert by[("P1", APP_A)]["meets"] and by[("P1", APP_B)]["meets"]
    # P2: the hot app violates, the cool one still fits.
    assert not by[("P2", APP_A)]["meets"]
    assert by[("P2", APP_B)]["meets"]
    # P3 (cheap): both violate without intervention.
    assert not by[("P3", APP_A)]["meets"] and not by[("P3", APP_B)]["meets"]
    # DRM repairs every violation back to the target.
    for r in rows:
        assert r["drm_fit"] <= 4000.0 + 1e-6 or r["drm_perf"] < 1.0
