"""Ablation A7: intra-application vs whole-run DRM (Section 8 future work).

The paper's oracle adapts once per run and notes it "does not exploit
intra-application variability".  This bench quantifies what that leaves
on the table: for each application at a tight qualification point, the
per-phase exhaustive oracle vs the uniform (whole-run) DVS oracle on the
same reduced grid, plus the greedy variant that a real controller could
implement.
"""

from repro.core.intra import IntraAppOracle
from repro.harness.reporting import format_table
from repro.workloads.suite import WORKLOAD_SUITE

from _bench_utils import run_once

T_QUAL = 360.0
GRID_STEPS = 6


def reproduce(drm_oracle):
    intra = IntraAppOracle(
        ramp_factory=drm_oracle.ramp_for,
        platform=drm_oracle.platform,
        cache=drm_oracle.cache,
        grid_steps=GRID_STEPS,
    )
    rows = []
    for profile in WORKLOAD_SUITE:
        ramp = drm_oracle.ramp_for(T_QUAL)
        # Uniform baseline on the same grid.
        uniform_perf = 0.0
        for op in intra.vf_curve.grid(GRID_STEPS):
            perf, fit = intra._evaluate_schedule(
                profile, [op] * len(profile.phases), ramp
            )
            if fit <= drm_oracle.fit_target + 1e-9:
                uniform_perf = max(uniform_perf, perf)
        exact = intra.best_exhaustive(profile, t_qual_k=T_QUAL)
        greedy = intra.best_greedy(profile, t_qual_k=T_QUAL)
        rows.append(
            {
                "app": profile.name,
                "uniform": uniform_perf,
                "intra": exact.performance,
                "greedy": greedy.performance,
                "gain_pct": 100.0 * (exact.performance / uniform_perf - 1.0)
                if uniform_perf > 0
                else float("nan"),
                "freqs": "/".join(f"{f:.2f}" for f in exact.frequencies_ghz),
            }
        )
    return rows


def test_ablation_intra_vs_uniform(benchmark, emit, drm_oracle):
    rows = run_once(benchmark, lambda: reproduce(drm_oracle))
    text = format_table(
        ["App", "Uniform DVS", "Intra (exact)", "Intra (greedy)",
         "Gain %", "Per-phase f (GHz)"],
        [
            [r["app"], r["uniform"], r["intra"], r["greedy"], r["gain_pct"], r["freqs"]]
            for r in rows
        ],
        title=f"Ablation A7: per-phase vs whole-run DVS DRM (Tqual={T_QUAL:.0f}K, "
        f"{GRID_STEPS}-point grid)",
    )
    emit("ablation_intra", text)

    for r in rows:
        if r["uniform"] > 0:
            # The per-phase space contains every uniform point.
            assert r["intra"] >= r["uniform"] - 1e-9, r["app"]
            # Greedy is a valid feasible schedule, never above the exact
            # optimum.
            assert r["greedy"] <= r["intra"] + 1e-9, r["app"]
    # Somewhere in the suite, phase variability buys real performance.
    gains = [r["gain_pct"] for r in rows if r["uniform"] > 0]
    assert max(gains) > 0.5
