"""Figure 3: comparing the DRM adaptation spaces for bzip2.

Arch vs DVS vs ArchDVS over a range of T_qual values.  Paper shapes:

- Arch can never exceed 1.0 (the base machine is already the most
  aggressive configuration and Arch cannot change frequency);
- DVS and ArchDVS overclock when the processor is over-designed, so
  they beat Arch there;
- at aggressive (cheap) qualification points DVS throttles far more
  efficiently than resource shrinking — voltage drops crush the TDDB FIT
  and temperature — so DVS retains a large advantage (the paper reports
  ~25% at 335 K);
- ArchDVS tracks DVS closely (it almost always picks plain DVS moves).
"""

from repro.core.drm import AdaptationMode
from repro.harness.reporting import format_series
from repro.workloads.suite import workload_by_name

from _bench_utils import run_once

T_QUALS = (400.0, 370.0, 360.0, 345.0, 335.0, 325.0)
APP = "bzip2"


def reproduce_fig3(drm_oracle):
    profile = workload_by_name(APP)
    series = {}
    for mode in (AdaptationMode.ARCH, AdaptationMode.DVS, AdaptationMode.ARCHDVS):
        decisions = [drm_oracle.best(profile, t_qual_k=t, mode=mode) for t in T_QUALS]
        series[mode.value] = [d.performance for d in decisions]
        series[f"{mode.value}_feasible"] = [1.0 if d.meets_target else 0.0 for d in decisions]
    return series


def test_fig3_adaptations(benchmark, emit, drm_oracle):
    series = run_once(benchmark, lambda: reproduce_fig3(drm_oracle))
    text = format_series(
        "Tqual (K)",
        list(T_QUALS),
        {k: v for k, v in series.items() if not k.endswith("_feasible")},
        title=f"Figure 3: DRM adaptation comparison for {APP}",
    )
    emit("fig3_adaptations", text)

    arch = dict(zip(T_QUALS, series["arch"]))
    dvs = dict(zip(T_QUALS, series["dvs"]))
    archdvs = dict(zip(T_QUALS, series["archdvs"]))
    arch_ok = dict(zip(T_QUALS, series["arch_feasible"]))
    dvs_ok = dict(zip(T_QUALS, series["dvs_feasible"]))

    # Arch is capped at base performance everywhere.
    assert all(p <= 1.0 + 1e-9 for p in series["arch"])
    # Over-designed region: DVS overclocks past Arch's ceiling.
    for t in (370.0, 400.0):
        assert dvs[t] > 1.0
        assert dvs[t] > arch[t]
    # Under-designed region: Arch (stuck at full voltage) can never reach
    # the target; DVS either reaches it or gets strictly closer in FIT.
    for t in (335.0, 325.0):
        assert arch_ok[t] == 0.0
    # Where both modes can satisfy the target, ArchDVS (a superset of the
    # DVS space) performs at least as well as DVS alone; where the target
    # is unreachable the modes trade performance for reliability and the
    # comparison is in FIT space instead (checked in the DRM unit tests).
    for t in T_QUALS:
        if dvs_ok[t] == 1.0:
            assert archdvs[t] >= dvs[t] - 1e-9
