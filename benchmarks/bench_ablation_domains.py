"""Ablation A9: domain-oriented qualification (Section 7.1).

"The performance-cost tradeoff depends on the processor's intended
application domain.  For example, a processor designed for SPEC
applications could be designed to a lower T_qual than a processor
intended for multimedia applications."

This bench computes, per market segment, the cheapest qualification
temperature that keeps every in-segment application at >= 95% of base
performance with the FIT target met, plus the whole-suite frontier the
designer chooses from.
"""

from repro.core.drm import AdaptationMode
from repro.core.tradeoff import cheapest_qualification, qualification_frontier, segment
from repro.errors import AdaptationError
from repro.harness.reporting import format_table
from repro.workloads.suite import WORKLOAD_SUITE

from _bench_utils import run_once

GRID = (330.0, 340.0, 350.0, 360.0, 370.0, 380.0, 390.0, 400.0)
BAR = 0.95


def reproduce(drm_oracle):
    seg_rows = []
    for category in ("media", "specint", "specfp"):
        profiles = segment(WORKLOAD_SUITE, category)
        try:
            t = cheapest_qualification(
                drm_oracle, profiles, GRID, min_performance=BAR
            )
        except AdaptationError:
            t = float("nan")
        seg_rows.append({"segment": category, "t_qual": t})
    frontier = qualification_frontier(
        drm_oracle, (340.0, 360.0, 380.0, 400.0), WORKLOAD_SUITE,
        mode=AdaptationMode.DVS,
    )
    return seg_rows, frontier


def test_ablation_domain_qualification(benchmark, emit, drm_oracle):
    seg_rows, frontier = run_once(benchmark, lambda: reproduce(drm_oracle))
    seg_text = format_table(
        ["Segment", f"Cheapest T_qual for >= {BAR:.0%} perf (K)"],
        [[r["segment"], r["t_qual"]] for r in seg_rows],
        title="Ablation A9a: domain-oriented qualification cost",
    )
    frontier_text = format_table(
        ["T_qual (K)", "Mean perf", "Min perf", "All meet FIT?"],
        [
            [p.t_qual_k, p.mean_performance, p.min_performance, str(p.all_feasible)]
            for p in frontier
        ],
        title="Ablation A9b: whole-suite qualification frontier (DVS DRM)",
    )
    emit("ablation_domains", seg_text + "\n\n" + frontier_text)

    by_seg = {r["segment"]: r["t_qual"] for r in seg_rows}
    # The paper's ordering: SPEC segments qualify cheaper than media.
    assert by_seg["specint"] <= by_seg["media"]
    assert by_seg["specfp"] <= by_seg["media"]
    # Frontier is monotone and tops out above parity at worst case.
    means = [p.mean_performance for p in frontier]
    assert means == sorted(means)
    assert frontier[-1].mean_performance > 1.0
