"""Ablation A5: the two-pass heat-sink initialisation (paper Sec. 6.3).

The paper runs every simulation twice because the heat sink's RC time
constant dwarfs the simulated window: a naive cold-sink evaluation
under-reports temperature, and a per-phase steady-state evaluation (sink
fully equilibrated to each phase alone) mis-orders hot and cool phases.
This bench quantifies both errors against the two-pass methodology for
the phase-richest application, and measures the resulting FIT error —
the reason the methodology matters for reliability work at all.
"""


from repro.harness.reporting import format_table
from repro.thermal.solver import SteadyStateSolver, TransientSolver
from repro.workloads.suite import workload_by_name

from _bench_utils import run_once

APP = "MPGdec"


def reproduce(drm_oracle):
    platform = drm_oracle.platform
    evaluation = drm_oracle.base_evaluation(workload_by_name(APP))
    solver = SteadyStateSolver(platform.network)
    rows = []
    for i, interval in enumerate(evaluation.intervals):
        powers = interval.power.totals()
        two_pass = max(interval.temperatures.values())
        standalone = max(solver.solve(powers).values())
        # Naive cold start: integrate only for a 1 s measurement interval
        # from ambient, the mistake the paper warns about.
        transient = TransientSolver(platform.network)
        cold = transient.run(powers, duration_s=1.0, dt_s=0.01)
        cold_peak = float(max(cold[: platform.network.n_blocks]))
        rows.append(
            {
                "phase": f"phase{i}",
                "two_pass": two_pass,
                "standalone": standalone,
                "cold_1s": cold_peak,
            }
        )
    # FIT consequence at a mid qualification point.
    ramp = drm_oracle.ramp_for(370.0)
    fit_two_pass = ramp.application_reliability(evaluation).total_fit
    return rows, fit_two_pass


def test_ablation_heatsink_initialisation(benchmark, emit, drm_oracle):
    rows, fit_two_pass = run_once(benchmark, lambda: reproduce(drm_oracle))
    text = format_table(
        ["Phase", "Two-pass peak T (K)", "Standalone steady (K)", "Cold 1 s transient (K)"],
        [[r["phase"], r["two_pass"], r["standalone"], r["cold_1s"]] for r in rows],
        title=f"Ablation A5: heat-sink initialisation methods ({APP}); two-pass FIT@370K = {fit_two_pass:.0f}",
    )
    emit("ablation_heatsink", text)

    for r in rows:
        # A 1 s cold-start transient grossly under-reports temperature.
        assert r["cold_1s"] < r["two_pass"] - 10.0
    # The standalone steady solve differs from the two-pass answer for at
    # least one phase (the sink remembers the other phases).
    diffs = [abs(r["standalone"] - r["two_pass"]) for r in rows]
    assert max(diffs) > 0.5
    # Hot phases read hotter standalone, cool phases cooler: the sink
    # history compresses the phase spread.
    spread_two_pass = max(r["two_pass"] for r in rows) - min(r["two_pass"] for r in rows)
    spread_standalone = max(r["standalone"] for r in rows) - min(
        r["standalone"] for r in rows
    )
    assert spread_standalone > spread_two_pass
