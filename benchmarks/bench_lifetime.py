"""The lifetime-simulator throughput benchmark.

The cumulative-damage engine's pitch is that *decade-scale* wear
trajectories are cheap: all the physics is evaluated once per
(application, config) through the batch kernel, after which each mission
epoch costs one elementwise multiply-add.  This bench measures exactly
that split:

- **build** — rate-table construction (simulation + batched FIT fields),
  paid once per (app, config);
- **integrate** — open-loop folding of a multi-decade mission, reported
  as the headline **simulated years per second**;
- **attack** — adversary-search evaluation throughput (schedules/s),
  the loop the red-team CLI spends its budget in.

Results land in ``BENCH_lifetime.json`` at the repository root.  Set
``REPRO_BENCH_SMOKE=1`` for the CI-sized run; the years/s floor is only
asserted on the full mission.
"""

from __future__ import annotations

import os
import time

from repro.lifetime import AdversarySearch, LifetimeSimulator
from repro.workloads.generator import random_mission

from _bench_utils import run_once, write_bench_result
from conftest import BENCH_DIR, BENCH_DVS_STEPS

RESULT_PATH = BENCH_DIR.parent / "BENCH_lifetime.json"

#: Acceptance floor for the full mission: the integrator must fold at
#: least this many simulated years per wall-clock second once the rate
#: table is warm.
MIN_YEARS_PER_S = 50.0

T_QUAL_K = 380.0
APPS = ("MPGdec", "gzip", "art")
FREQUENCIES = (3.0e9, 4.0e9, 5.0e9)
EPOCH_HOURS = 24.0
HOURS_PER_YEAR = 8760.0


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _mission_spec():
    """(apps, mission years, search budget) — reduced under smoke."""
    if _smoke():
        return APPS[:2], 2.0, {"n_random": 4, "greedy_passes": 0, "anneal_steps": 20}
    return APPS, 30.0, {"n_random": 10, "greedy_passes": 1, "anneal_steps": 150}


def measure_lifetime(drm_oracle):
    apps, years, budget = _mission_spec()
    simulator = LifetimeSimulator(
        platform=drm_oracle.platform,
        cache=drm_oracle.cache,
        ramp=drm_oracle.ramp_for(T_QUAL_K),
        dvs_steps=BENCH_DVS_STEPS,
    )
    n_epochs = int(years * HOURS_PER_YEAR / EPOCH_HOURS)
    schedule = random_mission(
        apps=apps,
        frequencies=FREQUENCIES,
        n_epochs=n_epochs,
        epoch_hours=EPOCH_HOURS,
        seed=7,
    )

    search = AdversarySearch(
        simulator,
        apps=apps,
        frequencies=FREQUENCIES,
        n_epochs=min(n_epochs, 64),
        epoch_hours=EPOCH_HOURS,
        seed=11,
    )
    start = time.perf_counter()
    search.prewarm()  # pays every (app, frequency-grid) physics cell
    build_s = time.perf_counter() - start

    start = time.perf_counter()
    state = simulator.open_loop(schedule)
    integrate_s = time.perf_counter() - start
    simulated_years = state.hours / HOURS_PER_YEAR

    start = time.perf_counter()
    attack = search.search(**budget)
    attack_s = time.perf_counter() - start

    return {
        "mode": "smoke" if _smoke() else "full",
        "headline": {
            "simulated_years_per_s": simulated_years / integrate_s,
            "epochs_per_s": n_epochs / integrate_s,
            "adversary_evals_per_s": attack.evaluations / attack_s,
        },
        "timings": {
            "build_s": build_s,
            "integrate_s": integrate_s,
            "attack_s": attack_s,
        },
        "details": {
            "t_qual_k": T_QUAL_K,
            "apps": list(apps),
            "n_epochs": n_epochs,
            "epoch_hours": EPOCH_HOURS,
            "simulated_years": simulated_years,
            "total_damage": state.total,
            "adversary_evaluations": attack.evaluations,
            "adversary_improvement": attack.improvement,
        },
    }


def test_lifetime_throughput(benchmark, emit, drm_oracle):
    result = run_once(benchmark, lambda: measure_lifetime(drm_oracle))
    write_bench_result(
        RESULT_PATH,
        name="lifetime",
        mode=result["mode"],
        headline=result["headline"],
        floor=MIN_YEARS_PER_S,
        timings=result["timings"],
        details=result["details"],
    )
    emit(
        "lifetime",
        "Lifetime simulator ({mode}): {years:.1f} simulated years folded "
        "in {integrate_s:.3f} s ({years_per_s:.0f} yr/s), rate table built "
        "in {build_s:.2f} s, adversary at {evals_per_s:.0f} schedules/s "
        "(improvement {improvement:+.0%})".format(
            mode=result["mode"],
            years=result["details"]["simulated_years"],
            integrate_s=result["timings"]["integrate_s"],
            years_per_s=result["headline"]["simulated_years_per_s"],
            build_s=result["timings"]["build_s"],
            evals_per_s=result["headline"]["adversary_evals_per_s"],
            improvement=result["details"]["adversary_improvement"],
        ),
    )
    assert result["details"]["total_damage"] > 0.0
    assert result["details"]["adversary_improvement"] > 0.0
    if not _smoke():
        assert result["headline"]["simulated_years_per_s"] >= MIN_YEARS_PER_S
