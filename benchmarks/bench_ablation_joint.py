"""Ablation A8: the cost of honouring DRM and DTM together (Section 7.3).

The paper's closing argument: DRM violates thermal limits on one side of
the crossover, DTM violates reliability on the other, so real systems
need both.  This bench runs the joint oracle next to each single policy
for the whole suite at a shared temperature knob, quantifying:

- how often each single policy's choice violates the other constraint;
- the performance premium the joint (both-satisfied) choice costs.
"""

from repro.config.microarch import BASE_MICROARCH
from repro.core.combined import JointOracle
from repro.core.drm import AdaptationMode
from repro.harness.reporting import format_table
from repro.workloads.suite import WORKLOAD_SUITE

from _bench_utils import run_once

TEMP = 370.0


def reproduce(drm_oracle, dtm_oracle):
    joint = JointOracle(
        ramp_factory=drm_oracle.ramp_for,
        platform=drm_oracle.platform,
        cache=drm_oracle.cache,
        dvs_steps=drm_oracle.dvs_steps,
    )
    ramp = drm_oracle.ramp_for(TEMP)
    rows = []
    for profile in WORKLOAD_SUITE:
        run = drm_oracle.cache.run(profile, BASE_MICROARCH)
        drm = drm_oracle.best(profile, t_qual_k=TEMP, mode=AdaptationMode.DVS)
        dtm = dtm_oracle.best(profile, t_limit_k=TEMP)
        j = joint.best(profile, t_qual_k=TEMP, t_limit_k=TEMP)
        drm_peak = drm_oracle.platform.evaluate(run, drm.op).peak_temperature_k
        dtm_fit = ramp.application_reliability(
            drm_oracle.platform.evaluate(run, dtm.op)
        ).total_fit
        rows.append(
            {
                "app": profile.name,
                "drm_f": drm.op.frequency_ghz,
                "dtm_f": dtm.op.frequency_ghz,
                "joint_f": j.op.frequency_ghz,
                "joint_perf": j.performance,
                "drm_breaks_thermal": drm_peak > TEMP + 1e-6,
                "dtm_breaks_fit": dtm_fit > drm_oracle.fit_target + 1e-6,
                "joint_ok": j.feasible,
            }
        )
    return rows


def test_ablation_joint_policy(benchmark, emit, drm_oracle, dtm_oracle):
    rows = run_once(benchmark, lambda: reproduce(drm_oracle, dtm_oracle))
    text = format_table(
        ["App", "DRM f", "DTM f", "Joint f", "Joint perf",
         "DRM>T_limit?", "DTM>FIT?", "Joint OK"],
        [
            [r["app"], r["drm_f"], r["dtm_f"], r["joint_f"], r["joint_perf"],
             str(r["drm_breaks_thermal"]), str(r["dtm_breaks_fit"]),
             str(r["joint_ok"])]
            for r in rows
        ],
        title=f"Ablation A8: joint DRM+DTM policy at T = {TEMP:.0f} K",
    )
    emit("ablation_joint", text)

    # The joint choice is always within both constraints where feasible.
    feasible = [r for r in rows if r["joint_ok"]]
    assert len(feasible) >= 7
    for r in feasible:
        assert r["joint_f"] <= max(r["drm_f"], r["dtm_f"]) + 1e-9
        assert r["joint_f"] <= r["drm_f"] + 1e-9  # FIT cap respected
        assert r["joint_f"] <= r["dtm_f"] + 1e-9  # thermal cap respected
    # The paper's motivation: single policies DO violate the other
    # constraint somewhere in the suite.
    assert any(r["drm_breaks_thermal"] for r in rows)
