"""C1/C2: simulator characterisation and calibration robustness.

Not paper figures — engineering evidence behind them:

- **C1 microbenchmarks**: canonical single-behaviour traces pin the
  simulator's limits where they belong (FU bandwidth, op latencies,
  load-to-use serialisation, MLP, mispredict penalty, RAS) — the checks
  a simulator paper would put in its validation table.
- **C2 seed sensitivity**: the Table 2 calibration re-run under different
  synthesis seeds; the IPC ordering (what the DRM conclusions rest on)
  must survive seed changes even though individual values wobble.
"""

import numpy as np

from repro.cpu.simulator import CycleSimulator, simulate_trace
from repro.harness.reporting import format_table
from repro.workloads import microbench as ub
from repro.workloads.suite import WORKLOAD_SUITE
from repro.workloads.trace import OpClass

from _bench_utils import run_once

SEEDS = (42, 1001, 777)


def characterise():
    rows = [
        ("alu_throughput", simulate_trace(ub.alu_throughput(3000)).ipc, "~6 (ALU count)"),
        ("ialu_chain", simulate_trace(ub.dependency_chain(2000)).ipc, "1.0 (1-cycle latency)"),
        ("imul_chain", simulate_trace(ub.dependency_chain(1000, OpClass.IMUL)).ipc, "0.143 (7-cycle latency)"),
        ("fadd_chain", simulate_trace(ub.dependency_chain(800, OpClass.FADD)).ipc, "0.25 (4-cycle latency)"),
        ("pointer_chase(hot)", simulate_trace(ub.pointer_chase(600)).ipc, "~0.3 (load-to-use 3)"),
        ("stream(cold)", simulate_trace(ub.stream(600)).ipc, "MLP-limited (12 MSHRs)"),
        ("branchy(predictable)", simulate_trace(ub.branchy(2000, predictable=True)).ipc, "high"),
        ("branchy(random)", simulate_trace(ub.branchy(2000)).ipc, "mispredict-bound"),
        ("call_heavy", simulate_trace(ub.call_heavy(150)).ipc, "RAS-predicted"),
    ]
    return rows


def seed_sweep():
    orderings = {}
    table = {}
    for seed in SEEDS:
        sim = CycleSimulator(instructions=12_000, warmup=3_000, seed=seed)
        ipcs = {p.name: sim.run(p).ipc for p in WORKLOAD_SUITE}
        table[seed] = ipcs
        orderings[seed] = tuple(sorted(ipcs, key=ipcs.get, reverse=True))
    return table, orderings


def test_c1_microbenchmark_characterisation(benchmark, emit):
    rows = run_once(benchmark, characterise)
    text = format_table(
        ["Microbenchmark", "IPC", "Expected regime"],
        [[name, ipc, note] for name, ipc, note in rows],
        title="C1: simulator characterisation microbenchmarks",
    )
    emit("characterization_microbench", text)
    by_name = {name: ipc for name, ipc, _ in rows}
    assert 4.0 < by_name["alu_throughput"] <= 6.5
    assert abs(by_name["ialu_chain"] - 1.0) < 0.15
    assert abs(by_name["imul_chain"] - 1 / 7) < 0.03
    assert abs(by_name["fadd_chain"] - 0.25) < 0.05
    assert by_name["pointer_chase(hot)"] < 0.5
    assert by_name["branchy(predictable)"] > by_name["branchy(random)"] * 1.5


def test_c2_seed_sensitivity(benchmark, emit):
    table, orderings = run_once(benchmark, seed_sweep)
    names = [p.name for p in WORKLOAD_SUITE]
    text = format_table(
        ["App"] + [f"seed {s}" for s in SEEDS] + ["paper"],
        [
            [name]
            + [table[s][name] for s in SEEDS]
            + [next(p.table2_ipc for p in WORKLOAD_SUITE if p.name == name)]
            for name in names
        ],
        title="C2: Table 2 IPC under different synthesis seeds",
    )
    emit("characterization_seeds", text)

    # The ends of the spectrum are seed-stable: media on top, twolf/art
    # at the bottom — the property every DRM conclusion rests on.
    for seed in SEEDS:
        order = orderings[seed]
        assert set(order[:3]) == {"MPGdec", "MP3dec", "H263enc"}, seed
        assert set(order[-2:]) <= {"twolf", "art", "ammp"}, seed
    # Per-app spread across seeds stays moderate.
    for name in names:
        vals = [table[s][name] for s in SEEDS]
        assert (max(vals) - min(vals)) / np.mean(vals) < 0.65, name
