"""Shared infrastructure for the reproduction benches.

Each bench module regenerates one of the paper's tables or figures.  The
cycle-level simulations are memoised on disk under ``benchmarks/.simcache``
so re-running the bench suite skips straight to the reliability math, and
every regenerated table is also written to ``benchmarks/out/`` for
comparison against EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.drm import DRMOracle
from repro.core.dtm import DTMOracle
from repro.harness.platform import Platform
from repro.harness.sweep import SimulationCache

BENCH_DIR = Path(__file__).parent
OUT_DIR = BENCH_DIR / "out"

#: DVS grid used by the benches: 0.25 GHz steps over 2.5-5.0 GHz.
BENCH_DVS_STEPS = 11


@pytest.fixture(scope="session")
def sim_cache() -> SimulationCache:
    """Disk-backed simulation cache shared by every bench."""
    return SimulationCache(disk_dir=BENCH_DIR / ".simcache")


@pytest.fixture(scope="session")
def platform() -> Platform:
    return Platform()


@pytest.fixture(scope="session")
def drm_oracle(platform, sim_cache) -> DRMOracle:
    return DRMOracle(platform=platform, cache=sim_cache, dvs_steps=BENCH_DVS_STEPS)


@pytest.fixture(scope="session")
def dtm_oracle(platform, sim_cache) -> DTMOracle:
    return DTMOracle(platform=platform, cache=sim_cache, dvs_steps=BENCH_DVS_STEPS)


@pytest.fixture(scope="session")
def emit():
    """Write a regenerated table to benchmarks/out/ and echo it."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _emit
