"""Helpers shared by the bench modules (kept out of conftest so imports
cannot collide with the test suite's conftest)."""

import json
import os
import platform as _platform
import sys
from pathlib import Path

from repro.config.microarch import arch_adaptation_space
from repro.workloads.suite import WORKLOAD_SUITE


def run_once(benchmark, fn):
    """Benchmark a whole-experiment function exactly once.

    The experiments are minutes-scale; pytest-benchmark's default
    calibration would re-run them dozens of times.  One round keeps the
    timing meaningful (the experiment's wall clock) without repeats.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def prewarm_simulations(cache, profiles=None, configs=None, max_workers=None):
    """Fan the cycle-level simulations out through ``repro.engine``.

    Figure-2-style sweeps need 9 applications x 18 configurations = 162
    independent simulations before any reliability math runs.  Calling
    this first populates ``cache``'s store in parallel; the serial oracle
    search that follows then hits the warm cache for every candidate and
    produces byte-identical results to a cold serial run.

    No-op fallback: with an in-memory cache (no disk store) the runs
    happen serially through the cache itself.
    """
    profiles = list(WORKLOAD_SUITE) if profiles is None else list(profiles)
    configs = (
        list(arch_adaptation_space()) if configs is None else list(configs)
    )
    return cache.run_many(profiles, configs, max_workers=max_workers)


#: Where bench telemetry streams accumulate (one run per invocation).
BENCH_STREAM_ROOT = Path(__file__).parent / ".telemetry"


def machine_info() -> dict:
    """The uniform machine block every bench result carries."""
    return {
        "platform": _platform.platform(),
        "python": _platform.python_version(),
        "implementation": sys.implementation.name,
        "cpus": os.cpu_count(),
    }


def write_bench_result(
    path,
    *,
    name,
    mode,
    headline,
    floor=None,
    timings=None,
    details=None,
    stream_root=None,
):
    """Emit one benchmark result through the telemetry plane.

    Every ``BENCH_*.json`` is the same shape now: a telemetry record
    envelope (``schema_version`` / ``kind`` / ``ts`` / ``run_id`` /
    ``seq`` / ``payload``) whose payload carries the uniform keys —
    ``name``, ``mode``, ``headline`` (the metrics a floor check reads),
    ``floor``, ``timings`` (raw seconds), ``machine``, and free-form
    ``details``.  The identical record is also appended to the bench
    telemetry stream, so ``repro report`` renders benches alongside
    engine / sweep / chaos / fleet history.

    Returns the envelope dict written to ``path``.
    """
    from repro.telemetry import TelemetryWriter

    payload = {
        "name": name,
        "mode": mode,
        "headline": dict(headline),
        "floor": floor,
        "timings": dict(timings or {}),
        "machine": machine_info(),
        "details": dict(details or {}),
    }
    writer = TelemetryWriter(
        stream_root if stream_root is not None else BENCH_STREAM_ROOT,
        prefix="bench",
    )
    record = writer.append("bench.result", payload)
    envelope = record.as_dict()
    Path(path).write_text(json.dumps(envelope, indent=2) + "\n")
    return envelope
