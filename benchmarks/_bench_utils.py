"""Helpers shared by the bench modules (kept out of conftest so imports
cannot collide with the test suite's conftest)."""


def run_once(benchmark, fn):
    """Benchmark a whole-experiment function exactly once.

    The experiments are minutes-scale; pytest-benchmark's default
    calibration would re-run them dozens of times.  One round keeps the
    timing meaningful (the experiment's wall clock) without repeats.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
