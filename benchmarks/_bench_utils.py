"""Helpers shared by the bench modules (kept out of conftest so imports
cannot collide with the test suite's conftest)."""

from repro.config.microarch import arch_adaptation_space
from repro.workloads.suite import WORKLOAD_SUITE


def run_once(benchmark, fn):
    """Benchmark a whole-experiment function exactly once.

    The experiments are minutes-scale; pytest-benchmark's default
    calibration would re-run them dozens of times.  One round keeps the
    timing meaningful (the experiment's wall clock) without repeats.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def prewarm_simulations(cache, profiles=None, configs=None, max_workers=None):
    """Fan the cycle-level simulations out through ``repro.engine``.

    Figure-2-style sweeps need 9 applications x 18 configurations = 162
    independent simulations before any reliability math runs.  Calling
    this first populates ``cache``'s store in parallel; the serial oracle
    search that follows then hits the warm cache for every candidate and
    produces byte-identical results to a cold serial run.

    No-op fallback: with an in-memory cache (no disk store) the runs
    happen serially through the cache itself.
    """
    profiles = list(WORKLOAD_SUITE) if profiles is None else list(profiles)
    configs = (
        list(arch_adaptation_space()) if configs is None else list(configs)
    )
    return cache.run_many(profiles, configs, max_workers=max_workers)
