"""The decision service's wire protocol: requests, responses, cache keys.

One :class:`DecideRequest` asks one oracle question — the same
``best(profile, ...)`` question the library answers directly — plus an
optional ``chip_id`` tying the decision to a fleet member's state.  The
four kinds map onto the four oracles:

=========  =====================================  =======================
kind       oracle                                 required knobs
=========  =====================================  =======================
``drm``    :class:`~repro.core.drm.DRMOracle`     ``t_qual_k`` (+ ``mode``)
``dtm``    :class:`~repro.core.dtm.DTMOracle`     ``t_limit_k``
``joint``  :class:`~repro.core.combined.JointOracle`  ``t_qual_k``, ``t_limit_k``
``intra``  :class:`~repro.core.intra.IntraAppOracle`  ``t_qual_k`` (+ ``strategy``)
=========  =====================================  =======================

Decisions travel as the engine store's JSON payloads
(:data:`repro.engine.store.CODECS`), so a served decision decodes back
into the exact frozen dataclass a direct oracle call returns — the
bit-identity tests rely on this round trip.

The **cache identity** of a request (:meth:`DecideRequest.identity`)
excludes ``chip_id``: two chips asking the same question share one
decision.  :func:`decision_cache_key` folds the identity together with
everything else that can change the answer (profile content digest,
platform fingerprint, grid resolutions, FIT target, simulation budgets,
store schema version) into a content hash addressing the engine store.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Mapping

from repro.config.technology import STRUCTURE_NAMES
from repro.engine.jobs import content_hash, profile_payload
from repro.engine.store import CODECS, SCHEMA_VERSION, decode_result, encode_result
from repro.errors import ServeError
from repro.workloads.suite import SUITE_NAMES

#: Wire-protocol version.  Every response body carries it as
#: ``schema_version``; request bodies may carry it, and an unknown value
#: is rejected with a 400 naming the supported version.  Bump on any
#: incompatible change to request or response shapes.
WIRE_SCHEMA_VERSION = 1

#: Request kinds the service answers, in documentation order.
DECISION_KINDS = ("drm", "dtm", "joint", "intra")

#: DRM adaptation spaces (mirrors :class:`repro.core.drm.AdaptationMode`).
DRM_MODES = ("arch", "dvs", "archdvs")

#: Intra-application search strategies.
INTRA_STRATEGIES = ("greedy", "exhaustive")


@dataclasses.dataclass(frozen=True)
class DecideRequest:
    """One oracle question, JSON-shaped.

    Attributes:
        kind: which oracle answers (see :data:`DECISION_KINDS`).
        app: workload-suite application name.
        t_qual_k: qualification temperature (drm / joint / intra).
        t_limit_k: thermal design point (dtm / joint).
        mode: DRM adaptation space (drm only; default ``archdvs``).
        strategy: intra search strategy (intra only; default ``greedy``).
        chip_id: optional fleet-member id for per-chip state tracking.
        wear: optional per-structure accrued damage fractions the chip
            reports alongside its question (a JSON object on the wire;
            stored canonically as sorted name/value pairs so the frozen
            request stays hashable).  Additive under
            :data:`WIRE_SCHEMA_VERSION` 1: old clients simply omit it.
    """

    kind: str
    app: str
    t_qual_k: float | None = None
    t_limit_k: float | None = None
    mode: str = "archdvs"
    strategy: str = "greedy"
    chip_id: str | None = None
    wear: tuple[tuple[str, float], ...] | None = None

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ServeError` on a malformed request."""
        if self.kind not in DECISION_KINDS:
            raise ServeError(
                f"unknown decision kind {self.kind!r}",
                kind=self.kind,
                known=DECISION_KINDS,
            )
        if self.app not in SUITE_NAMES:
            raise ServeError(
                f"unknown application {self.app!r}",
                app=self.app,
                known=SUITE_NAMES,
            )
        needs_qual = self.kind in ("drm", "joint", "intra")
        needs_limit = self.kind in ("dtm", "joint")
        if needs_qual and not _is_finite_number(self.t_qual_k):
            raise ServeError(
                f"{self.kind!r} request needs a finite t_qual_k",
                kind=self.kind,
                t_qual_k=self.t_qual_k,
            )
        if needs_limit and not _is_finite_number(self.t_limit_k):
            raise ServeError(
                f"{self.kind!r} request needs a finite t_limit_k",
                kind=self.kind,
                t_limit_k=self.t_limit_k,
            )
        if self.kind == "drm" and self.mode not in DRM_MODES:
            raise ServeError(
                f"unknown DRM mode {self.mode!r}",
                mode=self.mode,
                known=DRM_MODES,
            )
        if self.kind == "intra" and self.strategy not in INTRA_STRATEGIES:
            raise ServeError(
                f"unknown intra strategy {self.strategy!r}",
                strategy=self.strategy,
                known=INTRA_STRATEGIES,
            )
        if self.chip_id is not None and not isinstance(self.chip_id, str):
            raise ServeError("chip_id must be a string when present")
        if self.wear is not None:
            for structure, value in self.wear:
                if structure not in STRUCTURE_NAMES:
                    raise ServeError(
                        f"wear names unknown structure {structure!r}",
                        structure=structure,
                        known=STRUCTURE_NAMES,
                    )
                if not _is_finite_number(value) or value < 0.0:
                    raise ServeError(
                        f"wear[{structure!r}] must be a finite non-negative "
                        "number",
                        structure=structure,
                        value=value,
                    )

    def identity(self) -> tuple:
        """The request's compute identity — everything except the chip.

        Two requests with equal identities must receive bit-identical
        decisions; the batcher dedupes on it and the decision cache keys
        on its hash.
        """
        if self.kind == "drm":
            return ("drm", self.app, float(self.t_qual_k), self.mode)
        if self.kind == "dtm":
            return ("dtm", self.app, float(self.t_limit_k))
        if self.kind == "joint":
            return (
                "joint", self.app, float(self.t_qual_k), float(self.t_limit_k)
            )
        return ("intra", self.app, float(self.t_qual_k), self.strategy)

    def as_payload(self) -> dict[str, Any]:
        """JSON-ready request body (omits unset optionals)."""
        payload: dict[str, Any] = {"kind": self.kind, "app": self.app}
        if self.t_qual_k is not None:
            payload["t_qual_k"] = self.t_qual_k
        if self.t_limit_k is not None:
            payload["t_limit_k"] = self.t_limit_k
        if self.kind == "drm":
            payload["mode"] = self.mode
        if self.kind == "intra":
            payload["strategy"] = self.strategy
        if self.chip_id is not None:
            payload["chip_id"] = self.chip_id
        if self.wear is not None:
            payload["wear"] = self.wear_by_structure()
        return payload

    def wear_by_structure(self) -> dict[str, float] | None:
        """The reported wear as a plain dict, or ``None``."""
        if self.wear is None:
            return None
        return {structure: value for structure, value in self.wear}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "DecideRequest":
        """Parse and validate one request body.

        Raises:
            ServeError: for non-object bodies, unknown fields, wrong
                field types, an unsupported ``schema_version``, or a
                semantically invalid request.
        """
        if not isinstance(payload, Mapping):
            raise ServeError("decide request body must be a JSON object")
        if "schema_version" in payload:
            version = payload["schema_version"]
            if version != WIRE_SCHEMA_VERSION:
                raise ServeError(
                    f"unsupported schema_version {version!r}; this server "
                    f"speaks version {WIRE_SCHEMA_VERSION}",
                    schema_version=version,
                    supported=WIRE_SCHEMA_VERSION,
                )
        known = {f.name for f in dataclasses.fields(cls)} | {"schema_version"}
        unknown = set(payload) - known
        if unknown:
            raise ServeError(
                f"unknown request field(s): {', '.join(sorted(unknown))}",
                unknown=sorted(unknown),
            )
        kwargs: dict[str, Any] = {}
        for field in ("kind", "app", "mode", "strategy", "chip_id"):
            if field in payload:
                value = payload[field]
                if value is not None and not isinstance(value, str):
                    raise ServeError(f"{field} must be a string", field=field)
                kwargs[field] = value
        for field in ("t_qual_k", "t_limit_k"):
            if field in payload and payload[field] is not None:
                value = payload[field]
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ServeError(f"{field} must be a number", field=field)
                kwargs[field] = float(value)
        if payload.get("wear") is not None:
            wear = payload["wear"]
            if not isinstance(wear, Mapping):
                raise ServeError("wear must be a JSON object", field="wear")
            entries = []
            for structure, value in wear.items():
                if not isinstance(structure, str):
                    raise ServeError("wear keys must be strings", field="wear")
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ServeError(
                        f"wear[{structure!r}] must be a number", field="wear"
                    )
                entries.append((structure, float(value)))
            kwargs["wear"] = tuple(sorted(entries))
        if "kind" not in kwargs or "app" not in kwargs:
            raise ServeError("decide request needs 'kind' and 'app'")
        if kwargs.get("mode") is None:
            kwargs.pop("mode", None)
        if kwargs.get("strategy") is None:
            kwargs.pop("strategy", None)
        request = cls(**kwargs)
        request.validate()
        return request


def _is_finite_number(value) -> bool:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False
    return math.isfinite(value)


def decision_cache_key(
    request: DecideRequest,
    context: Mapping[str, Any],
    *,
    profile_hash: str | None = None,
) -> str:
    """Content hash addressing one decision in the engine store.

    Args:
        request: the validated request (``chip_id`` is excluded — it
            cannot change the decision).
        context: everything service-side that can change the answer:
            the service's :meth:`DecisionService.cache_context` — profile
            content digest, platform fingerprint, DVS/intra grid
            resolutions, FIT target, and simulation budgets.
        profile_hash: precomputed content hash of the application's
            profile payload (the service hashes each suite profile once
            at startup; omitting it hashes the profile here).
    """
    if profile_hash is None:
        profile_hash = content_hash(profile_payload_for(request.app))
    return content_hash(
        {
            "kind": "serve.decision",
            "schema": SCHEMA_VERSION,
            "request": list(request.identity()),
            "profile": profile_hash,
            "context": dict(context),
        }
    )


def profile_payload_for(app: str) -> dict:
    """The full content payload of a suite application (see
    :func:`repro.engine.jobs.profile_payload`)."""
    from repro.workloads.suite import workload_by_name

    return profile_payload(workload_by_name(app))


def encode_decision(kind: str, decision) -> dict:
    """Engine-store JSON payload for a decision of ``kind``."""
    if kind not in DECISION_KINDS or kind not in CODECS:
        raise ServeError(f"no codec for decision kind {kind!r}", kind=kind)
    return encode_result(kind, decision)


def decode_decision(kind: str, payload: dict):
    """Rebuild the frozen decision dataclass from a stored payload."""
    if kind not in DECISION_KINDS or kind not in CODECS:
        raise ServeError(f"no codec for decision kind {kind!r}", kind=kind)
    return decode_result(kind, payload)
