"""The decision service: oracles behind a batcher, a cache, and a pool.

:class:`DecisionService` is the transport-independent core of
``repro.serve`` — the HTTP layer and the in-process load harness both
drive this object.  One request flows::

    decide(request)
      -> in-process LRU probe          (event loop, pure dict work)
      -> micro-batcher                  (coalesce concurrent requests)
      -> worker pool                    (one thread-pool crossing per batch)
           -> dedupe identical compute identities within the batch
           -> two-tier decision cache   (memory LRU, then engine store)
           -> oracle ``best(...)``      (the miss path; the real library
              call, so served decisions are bit-identical to direct ones)

Three sharing layers make batching pay:

- requests with the **same identity** in one batch compute once
  (batch-level dedupe);
- requests for the **same application** that differ only in their
  reliability knob share one grid evaluation through the platform's
  evaluation memo (:meth:`~repro.harness.platform.Platform.enable_evaluation_memo`);
- **repeat identities** across batches hit the decision cache without
  touching an oracle at all.

Oracles are *per worker thread* (:class:`threading.local`): their
internal memos (ramp models, base evaluations, p_qual) are plain dicts,
so rather than lock them we give each thread its own bundle — they share
the platform, the simulation cache, and the decision cache, which are
thread-safe.  Determinism makes this sound: every thread's bundle
computes identical numbers from identical inputs.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Sequence

from repro.constants import TARGET_FIT
from repro.core.combined import JointOracle
from repro.core.drm import AdaptationMode, DRMOracle
from repro.core.dtm import DTMOracle
from repro.core.intra import IntraAppOracle
from repro.cpu.simulator import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.engine.events import EventLog
from repro.engine.jobs import content_hash
from repro.engine.store import ResultStore
from repro.errors import ServeError
from repro.harness.platform import Platform
from repro.harness.sweep import SimulationCache
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import DecisionCache
from repro.serve.protocol import (
    DecideRequest,
    decision_cache_key,
    profile_payload_for,
)
from repro.serve.state import ChipStateStore
from repro.workloads.suite import SUITE_NAMES, WORKLOAD_SUITE, workload_by_name


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Everything that shapes the service's answers and its hot path.

    The *decision-shaping* fields (grids, budgets, FIT target, the
    qualification suite) are folded into every cache key via
    :meth:`DecisionService.cache_context`; the *hot-path* fields
    (batching, cache sizes, worker count) cannot change an answer, only
    how fast it arrives.

    Attributes:
        dvs_steps: DVS grid resolution for the drm/dtm/joint oracles.
        intra_grid_steps: per-phase DVS candidates for the intra oracle.
        fit_target: qualified failure-rate target.
        instructions / warmup / sim_seed: cycle-level simulation budget.
        qual_apps: applications used for p_qual qualification (``None``
            = the paper's full nine-application suite).
        max_batch / max_delay_s: micro-batcher flush triggers.
        batching: coalesce concurrent requests (off = one pool crossing
            per request; the benchmark's sequential baseline).
        cache_capacity: in-memory decision LRU size (0 disables the
            decision cache entirely).
        store_dir: directory for the persistent tiers (decisions and
            simulations); ``None`` keeps everything in memory.
        eval_memo_capacity: platform evaluation memo size (0 disables).
        workers: worker-pool threads.
        n_shards: chip-state lock stripes.
    """

    dvs_steps: int = 26
    intra_grid_steps: int = 6
    fit_target: float = TARGET_FIT
    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP
    sim_seed: int = 42
    qual_apps: tuple[str, ...] | None = None
    max_batch: int = 64
    max_delay_s: float = 0.005
    batching: bool = True
    cache_capacity: int = 4096
    store_dir: str | None = None
    eval_memo_capacity: int = 256
    workers: int = 4
    n_shards: int = 16

    def __post_init__(self) -> None:
        if self.qual_apps is not None:
            unknown = [a for a in self.qual_apps if a not in SUITE_NAMES]
            if unknown:
                raise ServeError(
                    f"unknown qualification app(s): {', '.join(unknown)}",
                    unknown=unknown,
                )
        if self.workers < 1:
            raise ServeError("need at least one worker thread")

    def as_dict(self) -> dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["qual_apps"] = (
            list(self.qual_apps) if self.qual_apps is not None else None
        )
        return payload


@dataclasses.dataclass(frozen=True)
class ServedDecision:
    """One answered request.

    Attributes:
        request: the validated request.
        decision: the oracle's frozen decision dataclass.
        cache_key: the decision's engine-store address.
        tier: where the answer came from (``"memory"`` / ``"store"`` /
            ``"computed"`` / ``"deduped"``).
    """

    request: DecideRequest
    decision: Any
    cache_key: str
    tier: str


@dataclasses.dataclass
class _WorkItem:
    request: DecideRequest
    key: str


class _Bundle:
    """One worker thread's oracle set (see module docstring)."""

    def __init__(self, service: "DecisionService") -> None:
        cfg = service.config
        suite = service.qual_suite
        self.drm = DRMOracle(
            platform=service.platform,
            cache=service.sim_cache,
            fit_target=cfg.fit_target,
            dvs_steps=cfg.dvs_steps,
            suite=suite,
        )
        self.dtm = DTMOracle(
            platform=service.platform,
            cache=service.sim_cache,
            dvs_steps=cfg.dvs_steps,
        )
        self.joint = JointOracle(
            self.drm.ramp_for,
            platform=service.platform,
            cache=service.sim_cache,
            fit_target=cfg.fit_target,
            dvs_steps=cfg.dvs_steps,
        )
        self.intra = IntraAppOracle(
            self.drm.ramp_for,
            platform=service.platform,
            cache=service.sim_cache,
            fit_target=cfg.fit_target,
            grid_steps=cfg.intra_grid_steps,
        )

    def best(self, request: DecideRequest):
        """Dispatch one validated request to the matching oracle."""
        profile = workload_by_name(request.app)
        if request.kind == "drm":
            return self.drm.best(
                profile,
                t_qual_k=request.t_qual_k,
                mode=AdaptationMode(request.mode),
            )
        if request.kind == "dtm":
            return self.dtm.best(profile, t_limit_k=request.t_limit_k)
        if request.kind == "joint":
            return self.joint.best(
                profile,
                t_qual_k=request.t_qual_k,
                t_limit_k=request.t_limit_k,
            )
        return self.intra.best(
            profile, t_qual_k=request.t_qual_k, strategy=request.strategy
        )


class DecisionService:
    """The servable oracle frontend (see module docstring).

    Args:
        config: decision-shaping and hot-path knobs.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        self.platform = Platform()
        if cfg.eval_memo_capacity > 0:
            self.platform.enable_evaluation_memo(cfg.eval_memo_capacity)
        sim_dir = (
            str(Path(cfg.store_dir) / "sims") if cfg.store_dir is not None else None
        )
        self.sim_cache = SimulationCache(
            instructions=cfg.instructions,
            warmup=cfg.warmup,
            seed=cfg.sim_seed,
            disk_dir=sim_dir,
        )
        self.qual_suite = (
            WORKLOAD_SUITE
            if cfg.qual_apps is None
            else tuple(workload_by_name(a) for a in cfg.qual_apps)
        )
        store = (
            ResultStore(Path(cfg.store_dir) / "decisions")
            if cfg.store_dir is not None
            else None
        )
        self.cache = (
            DecisionCache(cfg.cache_capacity, store=store)
            if cfg.cache_capacity > 0
            else None
        )
        self.chips = ChipStateStore(cfg.n_shards)
        self.events = EventLog()
        self.telemetry = None
        if cfg.store_dir is not None:
            from repro.telemetry import STORE_DIRNAME, TelemetryWriter

            self.telemetry = TelemetryWriter(
                Path(cfg.store_dir) / STORE_DIRNAME, prefix="serve"
            )
            self.events.attach_telemetry(self.telemetry, prefix="serve")
        self.executor = ThreadPoolExecutor(
            max_workers=cfg.workers, thread_name_prefix="repro-serve"
        )
        self.batcher = (
            MicroBatcher(
                self._flush, max_batch=cfg.max_batch, max_delay_s=cfg.max_delay_s
            )
            if cfg.batching
            else None
        )
        self._local = threading.local()
        self._profile_hash = {
            app: content_hash(profile_payload_for(app)) for app in SUITE_NAMES
        }
        self._cache_context = self._build_cache_context()
        self._t0 = time.monotonic()
        self._closed = False

    # ---- identity ------------------------------------------------------

    def _build_cache_context(self) -> dict[str, Any]:
        cfg = self.config
        return {
            "platform": content_hash(self.platform.fingerprint()),
            "dvs_steps": cfg.dvs_steps,
            "intra_grid_steps": cfg.intra_grid_steps,
            "fit_target": cfg.fit_target,
            "instructions": cfg.instructions,
            "warmup": cfg.warmup,
            "sim_seed": cfg.sim_seed,
            "qual_apps": sorted(p.name for p in self.qual_suite),
        }

    def cache_context(self) -> dict[str, Any]:
        """Everything service-side that can change an answer — folded
        into every decision cache key (see
        :func:`~repro.serve.protocol.decision_cache_key`)."""
        return dict(self._cache_context)

    def cache_key_for(self, request: DecideRequest) -> str:
        return decision_cache_key(
            request,
            self._cache_context,
            profile_hash=self._profile_hash[request.app],
        )

    def oracle_bundle(self) -> _Bundle:
        """The calling thread's oracle bundle (created on first use).

        Exposed so tests and the load harness can make *direct*
        ``best(...)`` calls with exactly the service's parameters.
        """
        bundle = getattr(self._local, "bundle", None)
        if bundle is None:
            bundle = _Bundle(self)
            self._local.bundle = bundle
        return bundle

    # ---- lifecycle -----------------------------------------------------

    def prewarm(self, apps: Sequence[str] | None = None) -> None:
        """Simulate ahead of traffic (call from a worker thread / CLI
        startup, never the event loop — this is the expensive part).

        Runs the cycle-level simulations for ``apps`` (default: the full
        suite) plus the qualification suite, so first requests pay
        oracle search cost, not simulation cost.
        """
        names = tuple(apps) if apps is not None else SUITE_NAMES
        for app in names:
            self.sim_cache.run(workload_by_name(app))
        for profile in self.qual_suite:
            self.sim_cache.run(profile)
        self.oracle_bundle().drm.p_qual()

    async def close(self) -> None:
        """Drain the batcher and shut the worker pool down."""
        self._closed = True
        if self.batcher is not None:
            await self.batcher.close()
        self.executor.shutdown(wait=True)

    # ---- the hot path --------------------------------------------------

    async def decide(self, request: DecideRequest) -> ServedDecision:
        """Answer one request (validates, caches, batches, computes).

        Raises:
            ServeError: for a malformed request.
            ReproError subclasses: whatever the oracle raised for this
                request (other requests in the same batch are unaffected).
        """
        request.validate()
        key = self.cache_key_for(request)
        self.events.emit("submitted", job_key=key, stage=f"serve.{request.kind}")
        if self.cache is not None:
            hit = self.cache.get_memory(key)
            if hit is not None:
                self.events.emit(
                    "cache_hit", job_key=key, stage=f"serve.{request.kind}"
                )
                return self._finish(request, key, hit, "memory")
        item = _WorkItem(request=request, key=key)
        try:
            if self.batcher is not None:
                decision, tier = await self.batcher.submit(item)
            else:
                loop = asyncio.get_running_loop()
                result = await loop.run_in_executor(
                    self.executor, self._compute_batch, [item]
                )
                outcome = result[0]
                if isinstance(outcome, Exception):
                    raise outcome
                decision, tier = outcome
        except Exception as exc:
            self.events.emit(
                "failed",
                job_key=key,
                stage=f"serve.{request.kind}",
                detail=type(exc).__name__,
            )
            raise
        if tier in ("memory", "store", "deduped"):
            self.events.emit(
                "cache_hit",
                job_key=key,
                stage=f"serve.{request.kind}",
                detail=tier,
            )
        else:
            self.events.emit(
                "run_finished", job_key=key, stage=f"serve.{request.kind}"
            )
        return self._finish(request, key, decision, tier)

    def _finish(
        self, request: DecideRequest, key: str, decision, tier: str
    ) -> ServedDecision:
        if request.chip_id is not None:
            self.chips.record(
                request.chip_id,
                kind=request.kind,
                app=request.app,
                request_payload=request.as_payload(),
                decision_key=key,
                cache_tier=tier,
                wear=request.wear_by_structure(),
            )
        return ServedDecision(
            request=request, decision=decision, cache_key=key, tier=tier
        )

    async def _flush(self, items: Sequence[_WorkItem]) -> list:
        """Micro-batcher flush callback: one pool crossing per batch."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self.executor, self._compute_batch, list(items)
        )

    def _compute_batch(self, items: list[_WorkItem]) -> list:
        """Worker-thread batch computation, aligned with ``items``.

        Identical cache keys compute once; a failing request poisons
        only its own slots (the exception instance is its result).
        """
        outcomes: dict[str, Any] = {}
        order: list[str] = []
        for item in items:
            if item.key not in outcomes:
                outcomes[item.key] = None
                order.append(item.key)
        by_key = {item.key: item for item in items}
        for key in order:
            item = by_key[key]
            try:
                decision = None
                if self.cache is not None:
                    decision = self.cache.get(key, item.request.kind)
                if decision is not None:
                    outcomes[key] = (decision, "store")
                    continue
                decision = self.oracle_bundle().best(item.request)
                if self.cache is not None:
                    self.cache.put(key, item.request.kind, decision)
                outcomes[key] = (decision, "computed")
            # repro: ignore[RPR006] fault isolation: one failing request
            # must poison only its own batch slots, not the whole batch.
            except Exception as exc:
                outcomes[key] = exc
        results = []
        delivered: set[str] = set()
        for item in items:
            outcome = outcomes[item.key]
            if isinstance(outcome, Exception) or item.key not in delivered:
                delivered.add(item.key)
                results.append(outcome)
            else:
                decision, tier = outcome
                # Identical identity computed once this batch: the
                # followers are cache hits in all but mechanism.
                results.append((decision, "deduped" if tier == "computed" else tier))
        return results

    # ---- observability -------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The ``/statz`` body: every layer's counters in one place.

        Each call also streams one ``serve.statz`` snapshot onto the
        telemetry plane (when a store is configured), so ``repro
        report`` can render the fleet's last-known counters after the
        process is gone.
        """
        counters = dict(self.events.counters)
        body = {
            "uptime_s": time.monotonic() - self._t0,
            "config": self.config.as_dict(),
            "requests": {
                "submitted": counters["submitted"],
                "computed": counters["run"],
                "cache_hits": counters["cached"],
                "failed": counters["failed"],
            },
            "batcher": self.batcher.stats.as_dict() if self.batcher else None,
            "decision_cache": self.cache.stats.as_dict() if self.cache else None,
            "evaluation_memo": self.platform.evaluation_memo_stats(),
            "chips": self.chips.stats(),
            "engine": self.events.summary(),
        }
        if self.telemetry is not None:
            self.telemetry.append(
                "serve.statz",
                {
                    "uptime_s": round(body["uptime_s"], 3),
                    "requests": body["requests"],
                    "chips": body["chips"],
                },
            )
        return body

    def healthy(self) -> bool:
        """Liveness: the pool is up and the accounting invariant holds."""
        return not self._closed and self.events.accounted()
