"""Sharded per-chip state for the decision service.

The paper's premise is a *fleet*: millions of shipped processors, each
periodically asking "what configuration should I run right now?".  The
service remembers, per chip, what it was last told and what it has been
asking — the running profile mix — so operators can inspect a fleet
member (``GET /v1/chip/{id}``) and see its adaptation history at a
glance.

State is sharded by ``sha256(chip_id)`` across independently-locked
dicts, so concurrent recordings from the worker pool contend only when
two chips land in the same shard — the classic striped-lock layout.  All
operations are pure in-memory dict work (safe to call from the event
loop; no file I/O).
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from typing import Any, Mapping

#: Default shard count — enough stripes that a worker pool of a few
#: dozen threads rarely collides, small enough to iterate cheaply.
DEFAULT_SHARDS = 16


@dataclasses.dataclass
class ChipState:
    """Everything the service remembers about one fleet member.

    Attributes:
        chip_id: the chip's fleet identifier.
        requests: total decide requests this chip has made.
        first_seq / last_seq: service-wide sequence numbers of the
            chip's first and most recent request.
        last_kind: decision kind of the most recent request.
        last_request: JSON-shaped body of the most recent request.
        last_decision_key: cache key of the decision it was served.
        last_cache_tier: where that decision came from
            (``"memory"`` / ``"store"`` / ``"computed"``).
        profile_mix: running count of requests per application — the
            chip's observed workload mix.
        kind_mix: running count of requests per decision kind.
        wear_by_structure: highest accrued damage fraction the chip has
            reported per structure.  Merged with ``max()`` because wear
            is physically monotone — a lower report is a stale or
            drifted sensor, never a healed structure.
        wear_updates: requests that carried a wear report.
    """

    chip_id: str
    requests: int = 0
    first_seq: int = -1
    last_seq: int = -1
    last_kind: str = ""
    last_request: dict = dataclasses.field(default_factory=dict)
    last_decision_key: str = ""
    last_cache_tier: str = ""
    profile_mix: dict[str, int] = dataclasses.field(default_factory=dict)
    kind_mix: dict[str, int] = dataclasses.field(default_factory=dict)
    wear_by_structure: dict[str, float] = dataclasses.field(default_factory=dict)
    wear_updates: int = 0

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot (the ``/v1/chip/{id}`` response body)."""
        return {
            "chip_id": self.chip_id,
            "requests": self.requests,
            "first_seq": self.first_seq,
            "last_seq": self.last_seq,
            "last_kind": self.last_kind,
            "last_request": dict(self.last_request),
            "last_decision_key": self.last_decision_key,
            "last_cache_tier": self.last_cache_tier,
            "profile_mix": dict(sorted(self.profile_mix.items())),
            "kind_mix": dict(sorted(self.kind_mix.items())),
            "wear": dict(sorted(self.wear_by_structure.items())),
            "wear_updates": self.wear_updates,
        }


class _Shard:
    __slots__ = ("lock", "chips")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.chips: dict[str, ChipState] = {}


class ChipStateStore:
    """Striped-lock map of ``chip_id`` -> :class:`ChipState`.

    Args:
        n_shards: number of independent lock stripes.
    """

    def __init__(self, n_shards: int = DEFAULT_SHARDS) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self._shards = tuple(_Shard() for _ in range(n_shards))
        self._seq_lock = threading.Lock()
        self._seq = 0

    def shard_index(self, chip_id: str) -> int:
        digest = hashlib.sha256(chip_id.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.n_shards

    def _shard(self, chip_id: str) -> _Shard:
        return self._shards[self.shard_index(chip_id)]

    # ---- recording -----------------------------------------------------

    def record(
        self,
        chip_id: str,
        *,
        kind: str,
        app: str,
        request_payload: dict,
        decision_key: str,
        cache_tier: str,
        wear: Mapping[str, float] | None = None,
    ) -> None:
        """Fold one served decision into the chip's running state.

        ``wear`` (when the request reported it) merges per structure with
        ``max()``: accrued damage is monotone, so the highest report ever
        seen is the best estimate of the chip's true wear.
        """
        with self._seq_lock:
            seq = self._seq
            self._seq += 1
        shard = self._shard(chip_id)
        with shard.lock:
            state = shard.chips.get(chip_id)
            if state is None:
                state = ChipState(chip_id=chip_id, first_seq=seq)
                shard.chips[chip_id] = state
            state.requests += 1
            state.last_seq = seq
            state.last_kind = kind
            state.last_request = dict(request_payload)
            state.last_decision_key = decision_key
            state.last_cache_tier = cache_tier
            state.profile_mix[app] = state.profile_mix.get(app, 0) + 1
            state.kind_mix[kind] = state.kind_mix.get(kind, 0) + 1
            if wear:
                state.wear_updates += 1
                for structure, value in wear.items():
                    previous = state.wear_by_structure.get(structure, 0.0)
                    state.wear_by_structure[structure] = max(
                        previous, float(value)
                    )

    # ---- reading -------------------------------------------------------

    def snapshot(self, chip_id: str) -> dict[str, Any] | None:
        """JSON-ready state of one chip, or ``None`` if never seen."""
        shard = self._shard(chip_id)
        with shard.lock:
            state = shard.chips.get(chip_id)
            return state.as_dict() if state is not None else None

    def __len__(self) -> int:
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += len(shard.chips)
        return total

    def stats(self) -> dict[str, Any]:
        """Fleet-level counters for ``/statz``."""
        chips = 0
        requests = 0
        per_shard: list[int] = []
        for shard in self._shards:
            with shard.lock:
                per_shard.append(len(shard.chips))
                chips += len(shard.chips)
                requests += sum(s.requests for s in shard.chips.values())
        return {
            "chips": chips,
            "tracked_requests": requests,
            "shards": self.n_shards,
            "max_shard_chips": max(per_shard) if per_shard else 0,
        }
