"""Seeded load generation for the decision service.

A fleet does not ask uniformly random questions: chips running the same
binary ask the same few questions over and over (hot sets), deployments
shift the mix over time (phases), day/night cycles alternate between
mixes (oscillation), and incidents slam one question from everywhere at
once (bursts).  :class:`RequestTraceGenerator` reproduces those shapes
as four seeded traffic mixes:

=================  ====================================================
``static``         a fixed hot set absorbs ``hot_ratio`` of requests;
                   the cold tail is drawn from the whole universe
``dynamic``        like static, but the hot set is re-drawn every
                   ``phase_len`` requests (deployment drift)
``oscillating``    two disjoint hot sets alternate every ``period``
                   requests (day/night)
``bursty``         background traffic interrupted by runs of
                   ``burst_len`` identical requests (incident retry
                   storms)
=================  ====================================================

Generation is pure in ``(mix, parameters, seed)`` — same inputs, same
request list — so latency comparisons between runs are apples to apples.

:class:`LoadHarness` replays a trace against the service either
**in-process** (calling :meth:`DecisionService.decide` directly — no
sockets, measures the service core) or **over HTTP** (a keep-alive
asyncio client per worker, with bounded retries so armed
``serve.drop_connection`` faults are survived), recording per-request
latency into a :class:`LoadResult` (p50/p99/QPS).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import random
import time
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ServeError
from repro.serve.protocol import DecideRequest
from repro.serve.service import DecisionService
from repro.workloads.suite import SUITE_NAMES

#: Bounded retries for transport-level failures (armed drop faults fire
#: once per request key, so one retry converges; we allow a margin).
MAX_RETRIES = 3


class TrafficMix(str, Enum):
    """The four fleet traffic shapes (see module docstring)."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    OSCILLATING = "oscillating"
    BURSTY = "bursty"


#: Default question universe: the knob values fleet chips cycle through.
DEFAULT_PARAMETERS: Dict[str, Any] = {
    "apps": ("MPGdec", "gzip", "art"),
    "kinds": ("drm", "dtm", "joint", "intra"),
    "drm_mode": "dvs",
    "intra_strategy": "greedy",
    "t_qual_k_choices": (360.0, 370.0, 380.0),
    "t_limit_k_choices": (350.0, 355.0, 360.0),
    "hot_ratio": 0.8,
    "hot_set_size": 4,
    "phase_len": 50,
    "period": 40,
    "burst_len": 8,
    "chips": 32,
}


@dataclasses.dataclass
class RequestTraceGenerator:
    """Seeded generator of :class:`DecideRequest` traces.

    Args:
        mix: which traffic shape to generate.
        parameters: overrides of :data:`DEFAULT_PARAMETERS`.
        seed: RNG seed (a private :class:`random.Random`, so concurrent
            generators do not interfere).
    """

    mix: TrafficMix
    parameters: Dict[str, Any] = dataclasses.field(default_factory=dict)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        merged = dict(DEFAULT_PARAMETERS)
        merged.update(self.parameters)
        self.parameters = merged
        unknown = [a for a in merged["apps"] if a not in SUITE_NAMES]
        if unknown:
            raise ServeError(
                f"unknown app(s) in traffic universe: {', '.join(unknown)}",
                unknown=unknown,
            )
        self._rng = random.Random(self.seed)
        self._universe = self._build_universe()

    # ---- the question universe ----------------------------------------

    def _build_universe(self) -> List[DecideRequest]:
        """Every distinct question this trace can ask, in fixed order."""
        p = self.parameters
        universe: List[DecideRequest] = []
        for app in p["apps"]:
            for kind in p["kinds"]:
                if kind == "drm":
                    universe.extend(
                        DecideRequest(kind="drm", app=app, t_qual_k=t,
                                      mode=p["drm_mode"])
                        for t in p["t_qual_k_choices"]
                    )
                elif kind == "dtm":
                    universe.extend(
                        DecideRequest(kind="dtm", app=app, t_limit_k=t)
                        for t in p["t_limit_k_choices"]
                    )
                elif kind == "joint":
                    universe.extend(
                        DecideRequest(kind="joint", app=app, t_qual_k=tq,
                                      t_limit_k=tl)
                        for tq, tl in zip(p["t_qual_k_choices"],
                                          p["t_limit_k_choices"])
                    )
                elif kind == "intra":
                    universe.extend(
                        DecideRequest(kind="intra", app=app, t_qual_k=t,
                                      strategy=p["intra_strategy"])
                        for t in p["t_qual_k_choices"]
                    )
                else:
                    raise ServeError(f"unknown traffic kind {kind!r}", kind=kind)
        if not universe:
            raise ServeError("empty request universe: no apps or kinds configured")
        for request in universe:
            request.validate()
        return universe

    def _with_chip(self, request: DecideRequest) -> DecideRequest:
        chip = f"chip-{self._rng.randrange(int(self.parameters['chips'])):04d}"
        return dataclasses.replace(request, chip_id=chip)

    def _hot_set(self) -> List[DecideRequest]:
        size = min(int(self.parameters["hot_set_size"]), len(self._universe))
        return self._rng.sample(self._universe, size)

    # ---- generation ----------------------------------------------------

    def generate(self, n_requests: int) -> List[DecideRequest]:
        """The first ``n_requests`` of this seeded trace."""
        if self.mix is TrafficMix.STATIC:
            return self._generate_static(n_requests)
        if self.mix is TrafficMix.DYNAMIC:
            return self._generate_dynamic(n_requests)
        if self.mix is TrafficMix.OSCILLATING:
            return self._generate_oscillating(n_requests)
        if self.mix is TrafficMix.BURSTY:
            return self._generate_bursty(n_requests)
        raise ServeError(f"unknown traffic mix {self.mix!r}")

    def _draw(self, hot: Sequence[DecideRequest]) -> DecideRequest:
        if hot and self._rng.random() < float(self.parameters["hot_ratio"]):
            return self._with_chip(self._rng.choice(list(hot)))
        return self._with_chip(self._rng.choice(self._universe))

    def _generate_static(self, n: int) -> List[DecideRequest]:
        hot = self._hot_set()
        return [self._draw(hot) for _ in range(n)]

    def _generate_dynamic(self, n: int) -> List[DecideRequest]:
        phase_len = max(1, int(self.parameters["phase_len"]))
        trace: List[DecideRequest] = []
        hot = self._hot_set()
        for i in range(n):
            if i and i % phase_len == 0:
                hot = self._hot_set()  # deployment drift: new hot set
            trace.append(self._draw(hot))
        return trace

    def _generate_oscillating(self, n: int) -> List[DecideRequest]:
        period = max(1, int(self.parameters["period"]))
        hot_a = self._hot_set()
        hot_b = [r for r in self._hot_set() if r not in hot_a] or self._hot_set()
        trace: List[DecideRequest] = []
        for i in range(n):
            hot = hot_a if (i // period) % 2 == 0 else hot_b
            trace.append(self._draw(hot))
        return trace

    def _generate_bursty(self, n: int) -> List[DecideRequest]:
        burst_len = max(1, int(self.parameters["burst_len"]))
        trace: List[DecideRequest] = []
        while len(trace) < n:
            if self._rng.random() < 0.5:
                target = self._rng.choice(self._universe)
                trace.extend(
                    self._with_chip(target)
                    for _ in range(min(burst_len, n - len(trace)))
                )
            else:
                trace.append(self._draw(()))
        return trace


# ---- measurement -------------------------------------------------------


@dataclasses.dataclass
class LoadResult:
    """Latency/throughput record of one replayed trace.

    Attributes:
        mix: traffic shape replayed.
        transport: ``"inprocess"`` or ``"http"``.
        concurrency: worker count.
        latencies_s: per-request wall latency, completion order.
        wall_s: whole-replay wall time.
        errors: requests that exhausted their retries.
        retries: transport-level retries performed (HTTP only).
        tiers: count of responses per cache tier.
    """

    mix: str
    transport: str
    concurrency: int
    latencies_s: List[float] = dataclasses.field(default_factory=list)
    wall_s: float = 0.0
    errors: int = 0
    retries: int = 0
    tiers: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def requests(self) -> int:
        return len(self.latencies_s)

    @property
    def qps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0.0 else 0.0

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index] * 1e3

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(0.50)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(0.99)

    def as_dict(self) -> dict[str, Any]:
        return {
            "mix": self.mix,
            "transport": self.transport,
            "concurrency": self.concurrency,
            "requests": self.requests,
            "wall_s": round(self.wall_s, 6),
            "qps": round(self.qps, 3),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "errors": self.errors,
            "retries": self.retries,
            "tiers": dict(sorted(self.tiers.items())),
        }


class LoadHarness:
    """Replays request traces against a service (see module docstring).

    Args:
        concurrency: simultaneous in-flight requests (worker tasks).
    """

    def __init__(self, concurrency: int = 64) -> None:
        if concurrency < 1:
            raise ServeError("load harness needs at least one worker")
        self.concurrency = concurrency

    # ---- in-process ----------------------------------------------------

    async def run_inprocess(
        self,
        service: DecisionService,
        requests: Sequence[DecideRequest],
        *,
        mix: str = "static",
    ) -> LoadResult:
        """Replay ``requests`` by awaiting ``service.decide`` directly."""
        result = LoadResult(
            mix=mix, transport="inprocess", concurrency=self.concurrency
        )
        queue: asyncio.Queue = asyncio.Queue()
        for request in requests:
            queue.put_nowait(request)

        async def worker() -> None:
            while True:
                try:
                    request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                t_start = time.perf_counter()
                try:
                    served = await service.decide(request)
                # repro: ignore[RPR006] measurement harness: any failure
                # is counted as an error and the replay continues.
                except Exception:
                    result.errors += 1
                    continue
                latency_s = time.perf_counter() - t_start
                result.latencies_s.append(latency_s)
                result.tiers[served.tier] = result.tiers.get(served.tier, 0) + 1

        t0 = time.perf_counter()
        await asyncio.gather(*(worker() for _ in range(self.concurrency)))
        result.wall_s = time.perf_counter() - t0
        return result

    # ---- over HTTP -----------------------------------------------------

    async def run_http(
        self,
        host: str,
        port: int,
        requests: Sequence[DecideRequest],
        *,
        mix: str = "static",
    ) -> LoadResult:
        """Replay ``requests`` over HTTP keep-alive connections.

        Each worker owns one connection; a transport failure (dropped
        connection fault, reset) reconnects and retries the same request
        up to :data:`MAX_RETRIES` times.
        """
        result = LoadResult(mix=mix, transport="http", concurrency=self.concurrency)
        queue: asyncio.Queue = asyncio.Queue()
        for request in requests:
            queue.put_nowait(request)

        async def worker() -> None:
            reader: asyncio.StreamReader | None = None
            writer: asyncio.StreamWriter | None = None

            async def close() -> None:
                nonlocal reader, writer
                if writer is not None:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                reader = writer = None

            try:
                while True:
                    try:
                        request = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    body = json.dumps(request.as_payload()).encode("utf-8")
                    t_start = time.perf_counter()
                    response = None
                    for _attempt in range(1 + MAX_RETRIES):
                        try:
                            if writer is None:
                                reader, writer = await asyncio.open_connection(
                                    host, port
                                )
                            writer.write(
                                b"POST /v1/decide HTTP/1.1\r\n"
                                b"Host: repro-serve\r\n"
                                b"Content-Type: application/json\r\n"
                                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                                + body
                            )
                            await writer.drain()
                            response = await _read_response(reader)
                            break
                        except (
                            asyncio.IncompleteReadError,
                            ConnectionResetError,
                            ConnectionRefusedError,
                            BrokenPipeError,
                        ):
                            result.retries += 1
                            await close()
                    if response is None:
                        result.errors += 1
                        continue
                    status, payload = response
                    if status != 200:
                        result.errors += 1
                        continue
                    latency_s = time.perf_counter() - t_start
                    result.latencies_s.append(latency_s)
                    tier = payload.get("tier", "unknown")
                    result.tiers[tier] = result.tiers.get(tier, 0) + 1
            finally:
                await close()

        t0 = time.perf_counter()
        await asyncio.gather(*(worker() for _ in range(self.concurrency)))
        result.wall_s = time.perf_counter() - t0
        return result


async def _read_response(reader: asyncio.StreamReader) -> tuple[int, dict]:
    """Parse one keep-alive HTTP response (status, JSON body).

    Raises:
        asyncio.IncompleteReadError: on a truncated response (e.g. the
            server dropped the connection at a fault site).
    """
    line = await reader.readline()
    if not line:
        raise asyncio.IncompleteReadError(b"", None)
    status = int(line.decode("latin-1").split()[1])
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n"):
            break
        if not header:
            raise asyncio.IncompleteReadError(b"", None)
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return status, json.loads(body.decode("utf-8") or "{}")
