"""Two-tier hot-decision cache: in-process LRU over the engine store.

The serving hot path is dominated by repeat questions — a fleet of
millions of chips asks a small set of distinct ``(profile, knob, mode)``
questions — so decisions are cached at two tiers:

- **memory** — a bounded LRU of live decision dataclasses, hit from the
  event loop without touching the disk (or even the codec layer);
- **store** — the engine's content-addressed, schema-versioned
  :class:`~repro.engine.store.ResultStore`, shared with the simulation
  cache and the job engine, so decisions survive restarts, are reusable
  across processes, and inherit the store's durability ladder (atomic
  writes, two-strike self-heal, quarantine).  Store reads decode all the
  way back into the frozen decision dataclasses; an undecodable entry is
  struck (:meth:`~repro.engine.store.ResultStore.invalidate`) and reads
  as a miss, while a verified decode absolves a prior strike.

Corruption injected at the store's ``store.corrupt_payload`` fault site
therefore exercises the same heal path the simulation cache uses — a
damaged decision cache degrades to recomputation, never to an exception.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict

from repro.engine.store import DECODE_ERRORS, ResultStore
from repro.serve.protocol import decode_decision, encode_decision


@dataclasses.dataclass
class DecisionCacheStats:
    """Counters for one :class:`DecisionCache` instance."""

    memory_hits: int = 0
    store_hits: int = 0
    misses: int = 0
    puts: int = 0
    store_invalidated: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.store_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["hits"] = self.hits
        payload["hit_rate"] = self.hit_rate
        return payload


class DecisionCache:
    """Bounded LRU of decisions with an optional persistent second tier.

    Args:
        capacity: maximum number of in-memory decisions.
        store: optional engine result store for the persistent tier.
    """

    def __init__(self, capacity: int = 4096, store: ResultStore | None = None):
        if capacity < 1:
            raise ValueError("decision cache capacity must be >= 1")
        self.capacity = capacity
        self.store = store
        self.stats = DecisionCacheStats()
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, tuple[str, object]] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # ---- lookups -------------------------------------------------------

    def get_memory(self, key: str):
        """Memory-tier-only lookup (safe to call from the event loop —
        pure dict work, no file I/O).  Returns the decision or ``None``;
        a miss here is *not* counted (the caller goes on to
        :meth:`get`, which does the full two-tier accounting)."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is None:
                return None
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return entry[1]

    def get(self, key: str, kind: str):
        """Two-tier lookup; promotes store hits into the memory tier.

        Call from a worker thread — the store tier reads from disk.
        """
        hit = self.get_memory(key)
        if hit is not None:
            return hit
        if self.store is not None:
            payload = self.store.get(key)
            if payload is not None:
                try:
                    decision = decode_decision(kind, payload)
                except DECODE_ERRORS:
                    self.store.invalidate(key)
                    with self._lock:
                        self.stats.store_invalidated += 1
                else:
                    self.store.absolve(key)
                    self._insert(key, kind, decision)
                    with self._lock:
                        self.stats.store_hits += 1
                    return decision
        with self._lock:
            self.stats.misses += 1
        return None

    # ---- writes --------------------------------------------------------

    def put(self, key: str, kind: str, decision) -> None:
        """Insert into both tiers (memory always; store when present)."""
        self._insert(key, kind, decision)
        if self.store is not None:
            self.store.put(key, kind, encode_decision(kind, decision))
        with self._lock:
            self.stats.puts += 1

    def _insert(self, key: str, kind: str, decision) -> None:
        with self._lock:
            self._memory[key] = (kind, decision)
            self._memory.move_to_end(key)
            while len(self._memory) > self.capacity:
                self._memory.popitem(last=False)
