"""``repro.serve`` — the decision service subsystem.

The paper's oracles answer one question at a time, in-process.  A fleet
deployment asks the same questions continuously, from many chips at
once, over a network.  This package turns the oracle library into a
long-running service without changing a single answer:

- :mod:`~repro.serve.protocol` — requests, wire payloads, cache keys;
- :mod:`~repro.serve.cache` — two-tier hot-decision cache (LRU over the
  content-addressed engine store);
- :mod:`~repro.serve.batcher` — size/deadline micro-batching;
- :mod:`~repro.serve.state` — sharded per-chip fleet state;
- :mod:`~repro.serve.service` — the transport-independent core;
- :mod:`~repro.serve.http` — stdlib asyncio HTTP/1.1 front end;
- :mod:`~repro.serve.loadgen` — seeded traffic mixes and the load
  harness that measures p50/p99/QPS.

Served decisions are **bit-identical** to direct ``best(...)`` calls:
the miss path *is* the library call, and every caching layer round-trips
through the engine store's exact-decode codecs.
"""

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.cache import DecisionCache, DecisionCacheStats
from repro.serve.http import HttpServer
from repro.serve.loadgen import (
    DEFAULT_PARAMETERS,
    LoadHarness,
    LoadResult,
    RequestTraceGenerator,
    TrafficMix,
)
from repro.serve.protocol import (
    DECISION_KINDS,
    WIRE_SCHEMA_VERSION,
    DecideRequest,
    decision_cache_key,
    decode_decision,
    encode_decision,
)
from repro.serve.service import DecisionService, ServedDecision, ServiceConfig
from repro.serve.state import ChipState, ChipStateStore

__all__ = [
    "BatcherStats",
    "MicroBatcher",
    "DecisionCache",
    "DecisionCacheStats",
    "HttpServer",
    "DEFAULT_PARAMETERS",
    "LoadHarness",
    "LoadResult",
    "RequestTraceGenerator",
    "TrafficMix",
    "DECISION_KINDS",
    "WIRE_SCHEMA_VERSION",
    "DecideRequest",
    "decision_cache_key",
    "decode_decision",
    "encode_decision",
    "DecisionService",
    "ServedDecision",
    "ServiceConfig",
    "ChipState",
    "ChipStateStore",
]
