"""Stdlib-only asyncio HTTP/1.1 front end for the decision service.

No web framework — the repo adds no runtime dependencies — so this is a
deliberately small HTTP server over ``asyncio.start_server``: request
line + headers + ``Content-Length`` body in, JSON out, keep-alive
honoured.  Four routes:

=============================  ========================================
``POST /v1/decide``            answer one :class:`DecideRequest`
``GET /v1/chip/{id}``          one fleet member's recorded state
``GET /healthz``               liveness (200 ok / 503 after shutdown)
``GET /statz``                 every layer's counters
=============================  ========================================

Error mapping: a :class:`~repro.errors.ServeError` (malformed request)
is a 400; any other :class:`~repro.errors.ReproError` (the oracle could
not answer, e.g. an empty adaptation space) is a 422; both carry the
structured :func:`~repro.errors.error_payload` body.

When a fault plan is armed (:mod:`repro.resilience`), the transport
exercises its two network fault sites per decide request, keyed by the
request's *cache key* so a client retry of the same question replays the
same decision point: ``serve.drop_connection`` closes the socket before
any bytes are written, and ``serve.slow_response`` delays the response
by the plan's hang duration (``asyncio.sleep`` — the event loop is never
blocked).  Both fire at most once per key, so retries converge.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import ReproError, ServeError, error_payload
from repro.resilience import active_injector
from repro.serve.protocol import (
    WIRE_SCHEMA_VERSION,
    DecideRequest,
    encode_decision,
)
from repro.serve.service import DecisionService

#: Request-line / header-line length cap (a malformed peer cannot make
#: ``readline`` buffer unboundedly).
MAX_LINE_BYTES = 8192

#: Body size cap for decide requests.
MAX_BODY_BYTES = 1 << 20

#: Header count cap.
MAX_HEADERS = 64


class HttpServer:
    """One listening socket in front of a :class:`DecisionService`.

    Args:
        service: the decision service to expose.
        host: bind address (loopback by default).
        port: bind port (0 = ephemeral; read :attr:`port` after
            :meth:`start`).
    """

    def __init__(
        self,
        service: DecisionService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self.connections_dropped = 0
        self.responses_slowed = 0

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port`."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, close open connections, drain the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in tuple(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*tuple(self._connections), return_exceptions=True)
        await self.service.close()

    # ---- connection handling ------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                status, payload, fault_key = await self._route(method, path, body)
                if not await self._respond_with_faults(
                    writer, status, payload, fault_key
                ):
                    return  # connection deliberately dropped
                if headers.get("connection", "").lower() == "close":
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        except asyncio.CancelledError:
            # Server shutdown with the connection idle between requests:
            # close the socket quietly, don't re-raise into the streams
            # machinery.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; ``None`` at clean EOF.

        Raises:
            asyncio.IncompleteReadError: on a truncated request.
        """
        line = await reader.readline()
        if not line:
            return None
        if len(line) > MAX_LINE_BYTES:
            raise asyncio.IncompleteReadError(line, None)
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise asyncio.IncompleteReadError(line, None)
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            if len(header) > MAX_LINE_BYTES or len(headers) >= MAX_HEADERS:
                raise asyncio.IncompleteReadError(header, None)
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            raise asyncio.IncompleteReadError(b"", None)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    # ---- routing -------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any], str]:
        """Dispatch; returns (status, JSON payload, fault key)."""
        if method == "POST" and path == "/v1/decide":
            return await self._decide(body)
        if method == "GET" and path.startswith("/v1/chip/"):
            chip_id = path[len("/v1/chip/"):]
            snapshot = self.service.chips.snapshot(chip_id)
            if snapshot is None:
                return 404, {"error": f"unknown chip {chip_id!r}"}, path
            snapshot["schema_version"] = WIRE_SCHEMA_VERSION
            return 200, snapshot, path
        if method == "GET" and path == "/healthz":
            if self.service.healthy():
                return 200, {"status": "ok"}, path
            return 503, {"status": "unhealthy"}, path
        if method == "GET" and path == "/statz":
            stats = self.service.stats()
            stats["schema_version"] = WIRE_SCHEMA_VERSION
            stats["transport"] = {
                "connections_dropped": self.connections_dropped,
                "responses_slowed": self.responses_slowed,
            }
            return 200, stats, path
        return 404, {"error": f"no route for {method} {path}"}, path

    async def _decide(self, body: bytes) -> tuple[int, dict[str, Any], str]:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            bad = ServeError(f"decide body is not valid JSON: {exc}")
            return 400, error_payload(bad), "/v1/decide"
        try:
            request = DecideRequest.from_payload(payload)
        except ServeError as exc:
            return 400, error_payload(exc), "/v1/decide"
        try:
            served = await self.service.decide(request)
        except ServeError as exc:
            return 400, error_payload(exc), "/v1/decide"
        except ReproError as exc:
            return 422, error_payload(exc), "/v1/decide"
        response = {
            "schema_version": WIRE_SCHEMA_VERSION,
            "kind": request.kind,
            "cache_key": served.cache_key,
            "tier": served.tier,
            "decision": encode_decision(request.kind, served.decision),
        }
        return 200, response, served.cache_key

    # ---- response writing (with fault sites) --------------------------

    async def _respond_with_faults(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        fault_key: str,
    ) -> bool:
        """Write one response; ``False`` if the connection was dropped."""
        injector = active_injector()
        if injector is not None:
            if injector.drop_connection(fault_key):
                self.connections_dropped += 1
                return False
            delay_s = injector.slow_response(fault_key)
            if delay_s is not None:
                self.responses_slowed += 1
                await asyncio.sleep(delay_s)
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  422: "Unprocessable Entity", 503: "Service Unavailable"}
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        return True
