"""Size- and deadline-triggered micro-batching for concurrent requests.

The serving problem: decisions are cheapest computed in groups (grid
evaluations shared across requests, one thread-pool crossing per batch
instead of per request), but requests arrive one at a time.  The
:class:`MicroBatcher` sits between the two — concurrent ``submit`` calls
are coalesced into one flush when either

- the pending weight reaches ``max_batch`` (**size trigger**), or
- ``max_delay_s`` elapses after the oldest pending item arrived
  (**deadline trigger** — bounds the latency a lone request pays for
  batching).

Robustness properties (each has a dedicated test):

- an **empty flush tick** (the deadline timer firing after a size
  trigger already drained the queue) is a recorded no-op;
- a request **cancelled mid-batch** (client disconnect, timeout) never
  blocks the flush — remaining requests complete normally and the
  cancelled slot's result is discarded;
- an **oversized item** (``weight > max_batch``, e.g. a multi-query
  request bigger than the batch cap) is flushed in a batch of its own
  without stalling the queue: flushes run concurrently, so items queued
  behind it depart on their own triggers.

The batcher is transport-agnostic: ``flush`` receives the batched items
and returns one result per item (an ``Exception`` instance marks that
slot as failed).  The decision service's flush callback runs the batch
on its worker pool.
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Any, Awaitable, Callable, Sequence

#: ``flush`` callback signature: items in, one result per item out.
FlushCallback = Callable[[Sequence[Any]], Awaitable[Sequence[Any]]]


@dataclasses.dataclass
class BatcherStats:
    """Counters for one :class:`MicroBatcher` instance."""

    submitted: int = 0
    flushes: int = 0
    flushed_items: int = 0
    size_triggered: int = 0
    deadline_triggered: int = 0
    empty_ticks: int = 0
    cancelled: int = 0
    oversized: int = 0
    max_batch_items: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class _Pending:
    item: Any
    weight: int
    future: asyncio.Future


class MicroBatcher:
    """Coalesce awaitable submissions into bounded flushes.

    Args:
        flush: async callback computing a batch (see module docstring).
        max_batch: flush when pending weight reaches this (and cap the
            weight drained into one flush, oversized items excepted).
        max_delay_s: deadline after the first pending submission.
    """

    def __init__(
        self,
        flush: FlushCallback,
        *,
        max_batch: int = 64,
        max_delay_s: float = 0.005,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_s < 0.0:
            raise ValueError("max_delay_s must be >= 0")
        self._flush_cb = flush
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.stats = BatcherStats()
        self._pending: list[_Pending] = []
        self._pending_weight = 0
        self._timer: asyncio.TimerHandle | None = None
        self._flush_tasks: set[asyncio.Task] = set()
        self._closed = False

    # ---- submission ----------------------------------------------------

    async def submit(self, item: Any, *, weight: int = 1) -> Any:
        """Enqueue ``item`` and wait for its slot of the flush result.

        Raises whatever exception the flush recorded for this slot, and
        :class:`RuntimeError` after :meth:`close`.
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        if weight < 1:
            raise ValueError("weight must be >= 1")
        loop = asyncio.get_running_loop()
        pending = _Pending(item=item, weight=weight, future=loop.create_future())
        self._pending.append(pending)
        self._pending_weight += weight
        self.stats.submitted += 1
        if weight > self.max_batch:
            self.stats.oversized += 1
        if self._pending_weight >= self.max_batch:
            self._start_flush("size")
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay_s, self._on_deadline)
        return await pending.future

    # ---- triggers ------------------------------------------------------

    def _on_deadline(self) -> None:
        self._timer = None
        if not self._pending:
            # Deadline fired after a size trigger already drained the
            # queue: a recorded no-op, never an error.
            self.stats.empty_ticks += 1
            return
        self._start_flush("deadline")

    def _start_flush(self, trigger: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch: list[_Pending] = []
        weight = 0
        # Drain up to max_batch of weight, but always at least one item,
        # so an oversized item departs (alone) instead of wedging.
        while self._pending:
            nxt = self._pending[0]
            if batch and weight + nxt.weight > self.max_batch:
                break
            batch.append(self._pending.pop(0))
            weight += nxt.weight
        self._pending_weight -= weight
        if not batch:
            return
        if trigger == "size":
            self.stats.size_triggered += 1
        else:
            self.stats.deadline_triggered += 1
        task = asyncio.get_running_loop().create_task(self._run_flush(batch))
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)
        # Items can remain (e.g. the drain stopped at the weight cap);
        # they depart on their own trigger.
        if self._pending and self._pending_weight >= self.max_batch:
            self._start_flush("size")
        elif self._pending and self._timer is None:
            self._timer = asyncio.get_running_loop().call_later(
                self.max_delay_s, self._on_deadline
            )

    # ---- the flush -----------------------------------------------------

    async def _run_flush(self, batch: list[_Pending]) -> None:
        # A slot cancelled while queued is dropped before computing;
        # one cancelled mid-flush is skipped at delivery.  Either way
        # the other slots complete normally.
        live = [p for p in batch if not p.future.cancelled()]
        self.stats.cancelled += len(batch) - len(live)
        if not live:
            return
        self.stats.flushes += 1
        self.stats.flushed_items += len(live)
        self.stats.max_batch_items = max(self.stats.max_batch_items, len(live))
        try:
            results = await self._flush_cb([p.item for p in live])
        # repro: ignore[RPR006] fault isolation: whatever the flush
        # callback raises must fan out to the waiting futures, never
        # kill the batcher's flush task silently.
        except Exception as exc:
            for pending in live:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        if len(results) != len(live):
            mismatch = RuntimeError(
                f"flush returned {len(results)} results for {len(live)} items"
            )
            for pending in live:
                if not pending.future.done():
                    pending.future.set_exception(mismatch)
            return
        for pending, result in zip(live, results):
            if pending.future.done():
                self.stats.cancelled += 1
                continue
            if isinstance(result, Exception):
                pending.future.set_exception(result)
            else:
                pending.future.set_result(result)

    # ---- lifecycle -----------------------------------------------------

    @property
    def pending_items(self) -> int:
        return len(self._pending)

    async def drain(self) -> None:
        """Flush whatever is pending and wait for in-flight flushes."""
        if self._pending:
            self._start_flush("deadline")
        while self._flush_tasks:
            await asyncio.gather(*tuple(self._flush_tasks), return_exceptions=True)

    async def close(self) -> None:
        """Drain and refuse further submissions."""
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        await self.drain()
