"""Physical-unit model and unit-signature harvesting.

The dataflow pass (:mod:`repro.analysis.dataflow`) needs three inputs
this module provides without importing any analyzed code:

- a **units lattice**: named units (``K``, ``degC``, ``V``, ``GHz``,
  ``eV``, ``FIT``, ``hours``, ``1``, ...) grouped into dimensions
  (temperature, voltage, frequency, time, failure rate, ...), plus a
  few algebraic facts (a difference of two absolute temperatures is a
  temperature *delta*; device-hours over hours is a FIT rate);
- **name-based inference**: the RPR001 suffix convention read in
  reverse — ``peak_temperature_k`` carries kelvin, ``fit_target``
  carries FIT, ``frequency_ratio`` is dimensionless;
- **signature harvesting**: for every function, method, and dataclass
  constructor in a parsed file, the inferred unit of each parameter and
  of the return value, keyed by dotted qualname.  ``constants.py``'s
  ``CONSTANT_UNITS`` table is read straight from its AST dict literal,
  so explicitly annotated constants override name inference.

Everything harvested is plain JSON-able data, which is what lets the
incremental driver cache one file's harvest by content hash and rebuild
the cross-module signature table without re-parsing unchanged files.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass


class Dim(enum.Enum):
    """Physical dimension of a unit (the lattice's coarse level)."""

    TEMPERATURE = "temperature"
    TEMPERATURE_DELTA = "temperature-delta"
    VOLTAGE = "voltage"
    FREQUENCY = "frequency"
    POWER = "power"
    ENERGY = "energy"
    TIME = "time"
    RATE = "failure-rate"
    AREA = "area"
    DEVICE_HOURS = "device-hours"
    DIMENSIONLESS = "dimensionless"


@dataclass(frozen=True)
class Unit:
    """One named unit; equality is by name (GHz and Hz are distinct)."""

    name: str
    dim: Dim

    def __str__(self) -> str:
        return self.name


def _mk(name: str, dim: Dim) -> Unit:
    unit = Unit(name, dim)
    UNITS[name] = unit
    return unit


#: name -> Unit for every unit the lattice knows.
UNITS: dict[str, Unit] = {}

KELVIN = _mk("K", Dim.TEMPERATURE)
CELSIUS = _mk("degC", Dim.TEMPERATURE)
DELTA_K = _mk("deltaK", Dim.TEMPERATURE_DELTA)
VOLT = _mk("V", Dim.VOLTAGE)
MILLIVOLT = _mk("mV", Dim.VOLTAGE)
HERTZ = _mk("Hz", Dim.FREQUENCY)
KILOHERTZ = _mk("kHz", Dim.FREQUENCY)
MEGAHERTZ = _mk("MHz", Dim.FREQUENCY)
GIGAHERTZ = _mk("GHz", Dim.FREQUENCY)
WATT = _mk("W", Dim.POWER)
MILLIWATT = _mk("mW", Dim.POWER)
JOULE = _mk("J", Dim.ENERGY)
ELECTRONVOLT = _mk("eV", Dim.ENERGY)
FIT = _mk("FIT", Dim.RATE)
HOURS = _mk("hours", Dim.TIME)
YEARS = _mk("years", Dim.TIME)
SECONDS = _mk("s", Dim.TIME)
MILLISECONDS = _mk("ms", Dim.TIME)
MM2 = _mk("mm2", Dim.AREA)
M2 = _mk("m2", Dim.AREA)
UM2 = _mk("um2", Dim.AREA)
DEVICE_HOURS = _mk("device_hours", Dim.DEVICE_HOURS)
DIMENSIONLESS = _mk("1", Dim.DIMENSIONLESS)


def unit_by_name(name: str) -> Unit | None:
    """Look up a unit by its lattice name; compound spellings are None."""
    return UNITS.get(name)


#: final name token -> unit, the RPR001 suffix convention read backwards.
SUFFIX_UNITS: dict[str, Unit] = {
    "k": KELVIN,
    "kelvin": KELVIN,
    "c": CELSIUS,
    "celsius": CELSIUS,
    "v": VOLT,
    "volts": VOLT,
    "mv": MILLIVOLT,
    "hz": HERTZ,
    "khz": KILOHERTZ,
    "mhz": MEGAHERTZ,
    "ghz": GIGAHERTZ,
    "w": WATT,
    "watts": WATT,
    "mw": MILLIWATT,
    "j": JOULE,
    "ev": ELECTRONVOLT,
    "fit": FIT,
    "hours": HOURS,
    "h": HOURS,
    "years": YEARS,
    "s": SECONDS,
    "ms": MILLISECONDS,
    "mm2": MM2,
    "m2": M2,
    "um2": UM2,
}

#: final tokens that mark a name as a pure number (ratios, counts, ...).
DIMENSIONLESS_TOKENS = frozenset(
    {
        "ratio", "scale", "factor", "fraction", "exponent", "index",
        "steps", "count", "density", "band", "rel", "activity",
        "weight", "bias", "probability", "share", "shares", "margin",
        "ipc", "cpi",
    }
)

#: qualifier tokens that carry no unit of their own; inference retries
#: on the preceding token (``fit_target`` -> FIT, ``vdd_nominal`` -> ?).
META_TOKENS = frozenset(
    {
        "target", "budget", "limit", "total", "nominal", "qual",
        "avg", "mean", "max", "min", "peak", "base", "cold", "hot",
        "budgets",
    }
)

#: leading tokens that mark a relative (hence dimensionless) quantity.
RELATIVE_TOKENS = frozenset({"rel", "relative"})


def unit_from_name(name: str) -> Unit | None:
    """Infer a unit from an identifier, or None when inconclusive.

    Mirrors RPR001's suffix convention: the *final* token names the
    unit; qualifier tokens (``_target``, ``_nominal``) defer to the
    token before them; ``by_<key>`` container suffixes are stripped
    (``power_w_by_block`` carries watts); ``per`` marks a compound
    (``BOLTZMANN_EV_PER_K``) the lattice deliberately does not track.
    """
    tokens = [t for t in name.lower().split("_") if t]
    if not tokens:
        return None
    if tokens[0] in RELATIVE_TOKENS:
        return DIMENSIONLESS
    if "per" in tokens:
        return None
    if "by" in tokens:
        tokens = tokens[: tokens.index("by")]
    while tokens:
        last = tokens[-1]
        if last in SUFFIX_UNITS:
            return SUFFIX_UNITS[last]
        if last in DIMENSIONLESS_TOKENS:
            return DIMENSIONLESS
        if last in META_TOKENS:
            tokens = tokens[:-1]
            continue
        return None
    return None


# ---------------------------------------------------------------------------
# Signature harvesting.
#
# A harvest is one file's contribution to the project-wide unit
# signature table, as plain JSON-able dicts:
#
#   {"functions": {"pkg.mod.func":      {"params": [["t_k", "K"], ...],
#                                        "return": "hours" | None},
#                  "pkg.mod.Class":     ...   (constructor)
#                  "pkg.mod.Class.fn":  ...},
#    "constants": {"TARGET_FIT": "FIT", ...}}
# ---------------------------------------------------------------------------

#: Name of the explicit-annotation table read from constants.py.
CONSTANT_UNITS_NAME = "CONSTANT_UNITS"

#: Name of the declared physical-envelope table read from constants.py.
PHYSICAL_RANGES_NAME = "PHYSICAL_RANGES"

_SKIP_PARAMS = frozenset({"self", "cls"})


def _param_entries(args: ast.arguments) -> list[list[str | None]]:
    entries: list[list[str | None]] = []
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg in _SKIP_PARAMS:
            continue
        unit = unit_from_name(arg.arg)
        entries.append([arg.arg, unit.name if unit else None])
    return entries


def _function_signature(node: ast.FunctionDef | ast.AsyncFunctionDef) -> dict:
    ret = unit_from_name(node.name)
    return {
        "params": _param_entries(node.args),
        "return": ret.name if ret else None,
    }


def _dataclass_constructor(node: ast.ClassDef) -> dict | None:
    """Constructor signature from a class body's annotated fields.

    Good enough for the frozen dataclasses this repo uses as specs; a
    class with an explicit ``__init__`` is harvested from that instead.
    """
    params: list[list[str | None]] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            unit = unit_from_name(stmt.target.id)
            params.append([stmt.target.id, unit.name if unit else None])
    if not params:
        return None
    return {"params": params, "return": None}


def _constant_units_literal(node: ast.expr) -> dict[str, str]:
    """Parse an explicit ``CONSTANT_UNITS = {...}`` dict literal."""
    out: dict[str, str] = {}
    if not isinstance(node, ast.Dict):
        return out
    for key, value in zip(node.keys, node.values):
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            out[key.value] = value.value
    return out


def _numeric_literal(node: ast.expr) -> float | None:
    """The numeric value of a literal expression, or None.

    Accepts plain int/float constants and a leading unary minus; bools
    are rejected (they are ints to Python but not physical values).
    """
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _numeric_literal(node.operand)
        return None if inner is None else -inner
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return float(node.value)
    return None


def _physical_ranges_literal(
    node: ast.expr, values: dict[str, float]
) -> dict[str, list]:
    """Parse a ``PHYSICAL_RANGES = {...}`` dict literal.

    Each value is normalised to ``[lo, hi, strict_lo]`` with numeric or
    null bounds.  Bound entries that are bare UPPER_CASE names resolve
    against the same file's numeric constants (``values``); entries
    that cannot be resolved drop the whole range rather than inventing
    a bound.
    """
    out: dict[str, list] = {}
    if not isinstance(node, ast.Dict):
        return out
    for key, value in zip(node.keys, node.values):
        if not (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(value, (ast.List, ast.Tuple))
            and len(value.elts) in (2, 3)
        ):
            continue
        bounds: list = []
        ok = True
        for elt in value.elts[:2]:
            if isinstance(elt, ast.Constant) and elt.value is None:
                bounds.append(None)
                continue
            num = _numeric_literal(elt)
            if num is None and isinstance(elt, ast.Name) and elt.id.isupper():
                num = values.get(elt.id)
            if num is None and not (
                isinstance(elt, ast.Constant) and elt.value is None
            ):
                ok = False
                break
            bounds.append(num)
        if not ok:
            continue
        strict_lo = False
        if len(value.elts) == 3:
            flag = value.elts[2]
            if isinstance(flag, ast.Constant) and isinstance(flag.value, bool):
                strict_lo = flag.value
            else:
                continue
        out[key.value] = [bounds[0], bounds[1], strict_lo]
    return out


def harvest_signatures(tree: ast.Module, module: str | None) -> dict:
    """One file's unit signatures, constant units/values, and ranges.

    Args:
        tree: the parsed file.
        module: its dotted module name (qualnames are skipped when
            None — a non-importable path contributes only constants).
    """
    functions: dict[str, dict] = {}
    constants: dict[str, str] = {}
    values: dict[str, float] = {}
    ranges_node: ast.expr | None = None

    def record(qual: str, sig: dict) -> None:
        if module is not None:
            functions[f"{module}.{qual}"] = sig

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            record(stmt.name, _function_signature(stmt))
        elif isinstance(stmt, ast.ClassDef):
            ctor = None
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    sig = _function_signature(sub)
                    record(f"{stmt.name}.{sub.name}", sig)
                    if sub.name == "__init__":
                        ctor = sig
            if ctor is None:
                ctor = _dataclass_constructor(stmt)
            if ctor is not None:
                record(stmt.name, ctor)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == CONSTANT_UNITS_NAME and stmt.value is not None:
                    constants.update(_constant_units_literal(stmt.value))
                elif target.id == PHYSICAL_RANGES_NAME and stmt.value is not None:
                    ranges_node = stmt.value
                elif target.id.isupper():
                    unit = unit_from_name(target.id)
                    if unit is not None:
                        constants.setdefault(target.id, unit.name)
                    if stmt.value is not None:
                        num = _numeric_literal(stmt.value)
                        if num is not None:
                            values.setdefault(target.id, num)
    # Ranges resolve last so bound names may reference constants defined
    # anywhere in the same file.
    ranges = (
        _physical_ranges_literal(ranges_node, values)
        if ranges_node is not None
        else {}
    )
    return {
        "functions": functions,
        "constants": constants,
        "values": values,
        "ranges": ranges,
    }


@dataclass(frozen=True)
class SignatureTable:
    """The merged, project-wide unit-signature table.

    Attributes:
        functions: dotted qualname -> ``{"params": ..., "return": ...}``.
        constants: UPPER_CASE constant name -> unit name (collisions
            across modules with *different* units are dropped).
        methods: final attribute name -> qualname, only for method
            names that resolve uniquely across the project.
        values: UPPER_CASE constant name -> numeric literal value
            (collisions with *different* values are dropped).
        ranges: unit or name-token -> ``[lo, hi, strict_lo]`` declared
            physical envelope (from ``PHYSICAL_RANGES``).
    """

    functions: dict[str, dict]
    constants: dict[str, str]
    methods: dict[str, str]
    values: dict[str, float]
    ranges: dict[str, list]

    @classmethod
    def merge(cls, harvests: list[dict]) -> "SignatureTable":
        functions: dict[str, dict] = {}
        constants: dict[str, str] = {}
        values: dict[str, float] = {}
        ranges: dict[str, list] = {}
        dropped: set[str] = set()
        dropped_values: set[str] = set()
        for harvest in harvests:
            functions.update(harvest.get("functions", {}))
            ranges.update(harvest.get("ranges", {}))
            for name, unit in harvest.get("constants", {}).items():
                if name in dropped:
                    continue
                if name in constants and constants[name] != unit:
                    del constants[name]
                    dropped.add(name)
                else:
                    constants[name] = unit
            for name, value in harvest.get("values", {}).items():
                if name in dropped_values:
                    continue
                if name in values and values[name] != value:
                    del values[name]
                    dropped_values.add(name)
                else:
                    values[name] = value
        by_method: dict[str, list[str]] = {}
        for qual in functions:
            by_method.setdefault(qual.rsplit(".", 1)[-1], []).append(qual)
        methods = {
            name: quals[0] for name, quals in by_method.items() if len(quals) == 1
        }
        return cls(
            functions=functions,
            constants=constants,
            methods=methods,
            values=values,
            ranges=ranges,
        )

    def as_payload(self) -> dict:
        """JSON-able form (for cache keys and worker transport)."""
        return {
            "functions": self.functions,
            "constants": self.constants,
            "methods": self.methods,
            "values": self.values,
            "ranges": self.ranges,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SignatureTable":
        return cls(
            functions=payload.get("functions", {}),
            constants=payload.get("constants", {}),
            methods=payload.get("methods", {}),
            values=payload.get("values", {}),
            ranges=payload.get("ranges", {}),
        )

    def constant_unit(self, name: str) -> Unit | None:
        spelled = self.constants.get(name)
        if spelled is None:
            return None
        return unit_by_name(spelled)

    def range_for_unit(self, unit_name: str) -> list | None:
        """The declared ``[lo, hi, strict_lo]`` envelope, or None."""
        return self.ranges.get(unit_name)

    def range_for_name(self, identifier: str) -> list | None:
        """Declared envelope for an identifier, via its unit or token.

        Tries the suffix-inferred unit's lattice name first, then the
        identifier's final token (so ``fault_probability`` resolves via
        the "probability" token even though the lattice folds it into
        plain dimensionless).
        """
        unit = unit_from_name(identifier)
        if unit is not None and unit.name in self.ranges:
            return self.ranges[unit.name]
        tokens = [t for t in identifier.lower().split("_") if t]
        while tokens:
            last = tokens[-1]
            if last in self.ranges:
                return self.ranges[last]
            if last in META_TOKENS:
                tokens = tokens[:-1]
                continue
            return None
        return None


EMPTY_TABLE = SignatureTable(
    functions={}, constants={}, methods={}, values={}, ranges={}
)
