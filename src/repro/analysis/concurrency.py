"""Escape analysis and lock-domain tracking over the call graph.

Built on :mod:`repro.analysis.callgraph`, this module answers the
questions the RPR2xx rules ask:

- **Coloring** — which functions can run on the event loop (every
  ``async def`` plus everything reachable from one through plain calls,
  closures, ``partial``, ``create_task``, and loop callbacks) and which
  can run on a worker thread (the targets of ``run_in_executor`` /
  ``Thread(target=...)`` / thread-pool ``submit`` edges plus everything
  they reach).  A function can carry both colors; that is exactly the
  shared-state hazard surface.

- **Per-thread classes** — a class whose instances are only ever stored
  behind a ``threading.local`` attribute (``self._local.bundle =
  _Bundle(...)``) is *thread-confined*: each thread sees its own
  instance, so its unlocked internal caches are safe.  Confinement is
  transitive through construction: classes instantiated in a per-thread
  class's ``__init__`` and kept on ``self`` inherit it.

- **Attribute classification** — every ``self.<attr>`` write in the
  project, grouped by (class, attribute), each site carrying its
  operation, the lock domain held at the write (the stack of ``with
  <lock>`` scopes), and the writing function's colors.  In-place
  mutator calls (``self._memo.pop(...)``) count as writes.

The lattice a (class, attribute) lands in:

    per-thread-confined  <  loop-confined  <  shared-with-locks  <  shared-unlocked

Only the last is a finding (RPR201); the rules in
:mod:`repro.analysis.rules.concurrency_rules` walk this model rather
than ASTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.callgraph import MUTATOR_METHODS, CallGraph
from repro.analysis.findings import Finding

#: Resolved attribute types that can never be a data race by themselves.
_EXEMPT_ATTR_TYPES = {"lock", "asynclock", "local", "threadpool",
                      "processpool"}

#: Functions where writes are construction, not mutation.
_INIT_METHODS = {"__init__", "__post_init__", "__set_name__"}

#: Resolved types counted as known-non-thread-safe containers (RPR203).
_CONTAINER_KINDS = {"dict", "list", "set"}


@dataclass(frozen=True)
class WriteSite:
    """One write to a (class, attribute) or module global."""

    func: str          # writing function's qualname
    rel_path: str
    line: int
    col: int
    op: str            # assign | aug | item | mutcall
    locks: tuple[str, ...]
    vtype: str | None  # harvested value-type expression (assign only)
    in_init: bool


@dataclass
class ConcurrencyModel:
    """The derived concurrency facts for one project (see module doc)."""

    graph: CallGraph
    loop_colored: set[str] = field(default_factory=set)
    thread_colored: set[str] = field(default_factory=set)
    thread_entries: set[str] = field(default_factory=set)
    per_thread_classes: set[str] = field(default_factory=set)
    class_locks: dict[str, set[str]] = field(default_factory=dict)
    #: (class qualname, attr) -> write sites;  ("", "module.NAME") for
    #: module globals.
    writes: dict[tuple[str, str], list[WriteSite]] = field(
        default_factory=dict
    )

    #: Classes whose instances are reachable from a shared root.
    shared_classes: set[str] = field(default_factory=set)

    @classmethod
    def build(cls, graph: CallGraph) -> "ConcurrencyModel":
        model = cls(graph=graph)
        model._color()
        model._find_per_thread_classes()
        model._find_shared_classes()
        model._collect_writes()
        return model

    # ---- coloring ------------------------------------------------------

    def _color(self) -> None:
        self.loop_colored = self.graph.reachable_from(
            self.graph.async_functions(),
            kinds=("call", "closure", "partial", "task", "callback"),
        )
        self.thread_entries = {
            e.callee for e in self.graph.boundary_edges(("thread", "executor"))
        }
        self.thread_colored = self.graph.reachable_from(
            self.thread_entries, kinds=("call", "closure", "partial")
        )

    def chain_for(self, func: str) -> str:
        """`entry -> ... -> func`, the thread-side path for messages."""
        chain = self.graph.chain_to(func, self.thread_entries)
        names = [q.rsplit(".", 2)[-1] if q.count(".") < 2
                 else ".".join(q.rsplit(".", 2)[-2:]) for q in chain]
        return " -> ".join(names)

    # ---- per-thread confinement ---------------------------------------

    def _find_per_thread_classes(self) -> None:
        confined: set[str] = set()
        for node in self.graph.nodes.values():
            owner = node.owner_class
            if owner is None:
                continue
            for write in node.raw.get("writes", []):
                if write.get("sub") is None:
                    continue
                if self.graph.attr_type(owner, write["attr"]) != "local":
                    continue
                vtype = self.graph._resolve_var_type(node, write.get("type"))
                if vtype is not None and vtype in self.graph.classes:
                    confined.add(vtype)
        # Transitive: what a per-thread class *constructs* and keeps in
        # ``__init__`` is per-thread too.  Param-passed objects are
        # deliberately excluded — ``self.platform = platform or
        # Platform(...)`` may bind the one shared platform every bundle
        # receives, so confinement must not leak through it.
        frontier = list(confined)
        while frontier:
            cqual = frontier.pop()
            for init in _INIT_METHODS:
                node = self.graph.nodes.get(f"{cqual}.{init}")
                if node is None:
                    continue
                for write in node.raw.get("writes", []):
                    if write["op"] != "assign" or write.get("sub") is not None:
                        continue
                    if not write["target"].startswith("self."):
                        continue
                    if not str(write.get("type") or "").startswith("call:"):
                        continue
                    vtype = self.graph._resolve_var_type(
                        node, write.get("type")
                    )
                    if (
                        vtype in self.graph.classes
                        and vtype not in confined
                    ):
                        confined.add(vtype)
                        frontier.append(vtype)
        self.per_thread_classes = confined

    # ---- instance sharing ---------------------------------------------

    def _find_shared_classes(self) -> None:
        """Classes whose *instances* can be visible to several threads.

        Roots: classes whose bound methods cross a thread boundary
        (their whole instance ships with the method) and classes
        instantiated at module level (import-time singletons).  Sharing
        then propagates through attribute types — ``service.platform``
        makes Platform shared — but never *into* a per-thread class:
        its constructed attrs are per-thread by definition, and its
        param-passed attrs alias objects the root already reaches
        directly.

        A class outside this set (``PipelineEngine`` built fresh inside
        every simulation call) may well run on a worker thread, but
        each call owns its instance, so its unlocked writes are not
        races.
        """
        graph = self.graph
        roots: set[str] = set()
        for edge in graph.boundary_edges(("thread", "executor")):
            callee = graph.nodes.get(edge.callee)
            if callee is not None and callee.owner_class is not None:
                roots.add(callee.owner_class)
        for module, global_types in graph.global_types.items():
            for texpr in global_types.values():
                resolved = graph._resolve_type(module, None, texpr)
                if resolved in graph.classes:
                    roots.add(resolved)
        roots -= self.per_thread_classes
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            cqual = frontier.pop()
            for atype in graph.classes.get(cqual, {}).get(
                "attr_types", {}
            ).values():
                if (
                    atype in graph.classes
                    and atype not in seen
                    and atype not in self.per_thread_classes
                ):
                    seen.add(atype)
                    frontier.append(atype)
        self.shared_classes = seen

    # ---- write collection ---------------------------------------------

    def _collect_writes(self) -> None:
        for qual, node in self.graph.nodes.items():
            owner = node.owner_class
            in_init = qual.rsplit(".", 1)[-1] in _INIT_METHODS
            for write in node.raw.get("writes", []):
                target = write["target"]
                if target.startswith("global:"):
                    key = ("", f"{node.module}.{write['attr']}")
                elif owner is not None and target.startswith("self."):
                    key = (owner, write["attr"])
                else:
                    continue
                self.writes.setdefault(key, []).append(
                    WriteSite(
                        func=qual,
                        rel_path=node.rel_path,
                        line=write["line"],
                        col=write["col"],
                        op=write["op"],
                        locks=tuple(write.get("locks", ())),
                        vtype=write.get("type"),
                        in_init=in_init,
                    )
                )
            # ``self._memo.pop(...)`` — in-place mutator calls are writes.
            for rec in node.raw.get("calls", []):
                name = rec.get("name")
                if name is None:
                    continue
                parts = name.split(".")
                if len(parts) < 3 or parts[0] != "self":
                    continue
                if parts[-1] not in MUTATOR_METHODS:
                    continue
                if owner is None:
                    continue
                self.writes.setdefault((owner, parts[1]), []).append(
                    WriteSite(
                        func=qual,
                        rel_path=node.rel_path,
                        line=rec["line"],
                        col=rec["col"],
                        op="mutcall",
                        locks=tuple(rec.get("locks", ())),
                        vtype=None,
                        in_init=in_init,
                    )
                )
        # Lock-typed attributes per class, for RPR203's "has any lock
        # at all" test and RPR201's exemptions.
        for cqual, cinfo in self.graph.classes.items():
            locks = {
                attr
                for attr, atype in cinfo.get("attr_types", {}).items()
                if atype in ("lock", "asynclock")
            }
            self.class_locks[cqual] = locks

    # ---- classification queries ---------------------------------------

    def attr_exempt(self, cqual: str, attr: str) -> bool:
        """Attr types that can never race (locks, locals, pools)."""
        atype = self.graph.attr_type(cqual, attr)
        return atype in _EXEMPT_ATTR_TYPES

    def interesting_sites(self, sites: list[WriteSite]) -> list[WriteSite]:
        """Post-construction writes that actually mutate shared state.

        Plain flag assignments (``self._closed = True``) are excluded —
        a torn bool is not the bug class RPR201 hunts; object/container
        (re)construction, augmented ops, item stores, and mutator calls
        are.
        """
        out = []
        for site in sites:
            if site.in_init:
                continue
            if site.op == "assign":
                if site.vtype is None or site.vtype.startswith("var:"):
                    continue
            out.append(site)
        return out

    def common_lock_domain(self, sites: list[WriteSite]) -> set[str]:
        """Locks held at *every* given site (empty = no consistent domain)."""
        domain: set[str] | None = None
        for site in sites:
            held = set(site.locks)
            domain = held if domain is None else domain & held
        return domain or set()

    def class_is_thread_unsafe(self, cqual: str) -> str | None:
        """The attr making ``cqual`` unsafe to share across threads.

        A class is flagged when it mutates a container-typed attribute
        outside construction with no lock held at some site *and* owns
        no lock attribute at all (owning one implies a discipline the
        flow-insensitive check should not second-guess).
        """
        if self.class_locks.get(cqual):
            return None
        for (owner, attr), sites in self.writes.items():
            if owner != cqual:
                continue
            atype = self.graph.attr_type(cqual, attr)
            if atype not in _CONTAINER_KINDS:
                continue
            for site in self.interesting_sites(sites):
                if not site.locks:
                    return attr
        return None


# ---------------------------------------------------------------------------
# The project snapshot and runner shared by both drivers.
# ---------------------------------------------------------------------------


@dataclass
class ProjectSnapshot:
    """Everything a project-scoped rule sees for one run.

    Built once per analysis (from live ASTs in the in-process driver,
    from cached harvests in the incremental one).  Test files are
    excluded at construction: fixtures deliberately violate concurrency
    discipline, and their fake threads would poison the coloring.
    """

    graph: CallGraph
    model: ConcurrencyModel
    #: rel paths included in the model (non-test, parsed OK).
    rel_paths: set[str]
    #: rel -> physical source lines, for finding snippets.
    lines: dict[str, list[str]]
    #: rel -> {line -> suppressed rule ids}.
    suppress: dict[str, dict[int, set[str]]]

    @classmethod
    def build(
        cls,
        harvests: dict[str, tuple[str | None, dict]],
        lines: dict[str, list[str]],
        suppress: dict[str, dict[int, set[str]]],
    ) -> "ProjectSnapshot":
        graph = CallGraph.build(harvests)
        return cls(
            graph=graph,
            model=ConcurrencyModel.build(graph),
            rel_paths=set(harvests),
            lines=lines,
            suppress=suppress,
        )

    def snippet(self, rel_path: str, line: int) -> str:
        file_lines = self.lines.get(rel_path, [])
        if 1 <= line <= len(file_lines):
            return file_lines[line - 1].strip()
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppress.get(finding.path, {}).get(finding.line)
        return rules is not None and finding.rule in rules


def suppress_payload(index) -> dict[str, list[str]]:
    """Serialize a :class:`SuppressionIndex` for the harvest cache."""
    return {
        str(line): sorted(rules)
        for line, rules in index._by_line.items()
    }


def suppress_from_payload(payload: dict) -> dict[int, set[str]]:
    return {int(line): set(rules) for line, rules in payload.items()}


def run_project_rules(
    rules, snapshot: ProjectSnapshot
) -> tuple[list[Finding], list[Finding]]:
    """Run project-scoped rules over one snapshot.

    Returns:
        ``(findings, suppressed)`` — raw, unsorted; the caller merges
        them into its :class:`AnalysisResult`.
    """
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in rules:
        for finding in rule.check_project(snapshot):
            if finding.path not in snapshot.rel_paths:
                continue
            if snapshot.is_suppressed(finding):
                suppressed.append(finding)
            else:
                findings.append(finding)
    return findings, suppressed
