"""Finding and severity model for the static-analysis suite.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`~Finding.fingerprint` deliberately excludes the line *number* —
it hashes the rule id, the file path, and either the rule-supplied
``context`` (a semantic anchor like ``call:qualname:param``) or, when
none is given, the normalised source line — so a finding keeps its
identity (and stays matched against the committed baseline) when
unrelated edits shift code up or down a file, and for project-scope
rules even when the anchoring line itself is reformatted or reordered.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """Finding severity, ordered from most to least severe."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def sarif_level(self) -> str:
        """The SARIF ``level`` string for this severity."""
        return {"error": "error", "warning": "warning", "note": "note"}[self.value]

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "note": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: rule identifier (``RPR001`` ...).
        path: file path relative to the analysis root, POSIX separators.
        line: 1-based source line.
        col: 1-based source column.
        message: human-readable description of the violation.
        severity: finding severity.
        snippet: the stripped source line (fingerprint fallback basis).
        context: optional semantic anchor supplied by the rule (e.g.
            ``attr:ClassName.field`` or ``call:qualname:param``); when
            set it replaces the snippet in the fingerprint so identity
            survives reformatting of the anchoring line.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    snippet: str = ""
    context: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        anchor = self.context or " ".join(self.snippet.split())
        basis = f"{self.rule}|{self.path}|{anchor}"
        return hashlib.sha256(basis.encode()).hexdigest()[:16]

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        """One-line ``path:line:col RULE message`` form."""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"


@dataclass
class AnalysisResult:
    """Everything one analysis run produced.

    Attributes:
        findings: unsuppressed, unbaselined findings (the ones that gate).
        baselined: findings matched by the committed baseline.
        suppressed: findings silenced by inline ``# repro: ignore[...]``.
        stale_baseline: baseline fingerprints that matched nothing (fixed
            debt that should be ratcheted out of the baseline file).
        files_scanned: number of files analyzed.
        parse_errors: files that could not be parsed (also findings).
        stats: driver statistics (cache hits, worker count, ...); shape
            depends on which driver produced the result.
    """

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when nothing gates: no new findings, no stale baseline."""
        return not self.findings and not self.stale_baseline

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))
