"""Inline ``# repro: ignore[RULE, ...]`` suppression parsing.

A suppression comment silences the named rules on its own line; a
comment-only line additionally covers the first non-comment line after
its comment block, so a justification can run to several lines:

    x == 0.0  # repro: ignore[RPR004] exact-zero sentinel: set by reset()

    # repro: ignore[RPR003] registered at import time, picklable by
    # name, so the pool can resolve it in the worker process.
    pool.submit(worker, job)

``# repro: ignore` without a rule list is deliberately NOT supported:
blanket suppressions hide new rules' findings, which defeats the
ratchet.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

_SUPPRESSION = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]")
_COMMENT_ONLY = re.compile(r"^\s*#")


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment.

    Attributes:
        line: the line the comment sits on (1-based).
        rules: rule ids it silences.
        covers_next: True for comment-only lines, which also silence
            the first non-comment line after their comment block.
    """

    line: int
    rules: frozenset[str]
    covers_next: bool


@dataclass
class SuppressionIndex:
    """All suppressions of one file, with match bookkeeping."""

    suppressions: list[Suppression] = field(default_factory=list)
    _by_line: dict[int, set[str]] = field(default_factory=dict)

    def covers(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by an inline suppression."""
        rules = self._by_line.get(finding.line)
        return rules is not None and finding.rule in rules

    def lines_for(self, rule_id: str) -> set[int]:
        """Source lines on which ``rule_id`` is suppressed."""
        return {ln for ln, rules in self._by_line.items() if rule_id in rules}


def parse_suppressions(source_lines: list[str]) -> SuppressionIndex:
    """Scan physical source lines for suppression comments.

    This is a line-level scan, not a tokenizer: a ``# repro: ignore``
    inside a string literal would count.  That false positive is
    harmless (it can only ever silence, and only on its own line) and
    keeps parsing robust on files the AST cannot digest.
    """
    index = SuppressionIndex()
    for i, text in enumerate(source_lines, start=1):
        match = _SUPPRESSION.search(text)
        if match is None:
            continue
        rules = frozenset(
            token.strip() for token in match.group(1).split(",") if token.strip()
        )
        if not rules:
            continue
        covers_next = bool(_COMMENT_ONLY.match(text))
        index.suppressions.append(
            Suppression(line=i, rules=rules, covers_next=covers_next)
        )
        index._by_line.setdefault(i, set()).update(rules)
        if covers_next:
            # Skip the rest of the comment block: the suppression
            # attaches to the code line it is documenting.
            target = i + 1
            while target <= len(source_lines) and _COMMENT_ONLY.match(
                source_lines[target - 1]
            ):
                target += 1
            index._by_line.setdefault(target, set()).update(rules)
    return index
