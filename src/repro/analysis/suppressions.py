"""Inline ``# repro: ignore[RULE, ...]`` suppression parsing.

A suppression comment silences the named rules on its own line; a
comment-only line additionally covers the first non-comment line after
its comment block, so a justification can run to several lines:

    x == 0.0  # repro: ignore[RPR004] exact-zero sentinel: set by reset()

    # repro: ignore[RPR003] registered at import time, picklable by
    # name, so the pool can resolve it in the worker process.
    pool.submit(worker, job)

When the file's AST is available, a suppression attaches to the *whole
statement* whose line span contains it, so it also works on decorator
lines and anywhere inside a multi-line call expression:

    @dataclass(frozen=True)  # repro: ignore[RPR003] registered dynamically
    class OddJob(Job): ...

    total = combine(
        fit_budget,
        mttf_hours,  # repro: ignore[RPR103] unit mix is the point here
    )

``# repro: ignore`` without a rule list is deliberately NOT supported:
blanket suppressions hide new rules' findings, which defeats the
ratchet.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

_SUPPRESSION = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]")
_COMMENT_ONLY = re.compile(r"^\s*#")


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment.

    Attributes:
        line: the line the comment sits on (1-based).
        rules: rule ids it silences.
        covers_next: True for comment-only lines, which also silence
            the first non-comment line after their comment block.
    """

    line: int
    rules: frozenset[str]
    covers_next: bool


@dataclass
class SuppressionIndex:
    """All suppressions of one file, with match bookkeeping."""

    suppressions: list[Suppression] = field(default_factory=list)
    _by_line: dict[int, set[str]] = field(default_factory=dict)

    def covers(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by an inline suppression."""
        rules = self._by_line.get(finding.line)
        return rules is not None and finding.rule in rules

    def lines_for(self, rule_id: str) -> set[int]:
        """Source lines on which ``rule_id`` is suppressed."""
        return {ln for ln, rules in self._by_line.items() if rule_id in rules}


def _statement_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """(start, end) line span of every statement, 1-based inclusive.

    For a compound statement the span is the *header only* — decorators
    through the line before the first body statement — so a suppression
    on a decorator or inside a multi-line ``def`` signature covers the
    whole header without swallowing the entire body.  Simple statements
    span all their physical lines (multi-line calls included).
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        decorators = getattr(node, "decorator_list", None)
        if decorators:
            start = min(start, *(d.lineno for d in decorators))
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        else:
            end = node.end_lineno or node.lineno
        spans.append((start, end))
    return spans


def _smallest_span(
    spans: list[tuple[int, int]], line: int
) -> tuple[int, int] | None:
    best: tuple[int, int] | None = None
    for start, end in spans:
        if start <= line <= end:
            if best is None or end - start < best[1] - best[0]:
                best = (start, end)
    return best


def parse_suppressions(
    source_lines: list[str], tree: ast.Module | None = None
) -> SuppressionIndex:
    """Scan physical source lines for suppression comments.

    This is a line-level scan, not a tokenizer: a ``# repro: ignore``
    inside a string literal would count.  That false positive is
    harmless (it can only ever silence, and only within its own
    statement) and keeps parsing robust on files the AST cannot digest.

    Args:
        source_lines: the file's physical lines.
        tree: optional parsed module; when given, each suppression
            covers the full line span of the smallest statement it sits
            in (decorator lines, multi-line calls), not just its own
            physical line.
    """
    index = SuppressionIndex()
    spans = _statement_spans(tree) if tree is not None else []

    def cover(anchor: int, rules: frozenset[str]) -> None:
        span = _smallest_span(spans, anchor)
        first, last = span if span is not None else (anchor, anchor)
        for line in range(first, last + 1):
            index._by_line.setdefault(line, set()).update(rules)

    for i, text in enumerate(source_lines, start=1):
        match = _SUPPRESSION.search(text)
        if match is None:
            continue
        rules = frozenset(
            token.strip() for token in match.group(1).split(",") if token.strip()
        )
        if not rules:
            continue
        covers_next = bool(_COMMENT_ONLY.match(text))
        index.suppressions.append(
            Suppression(line=i, rules=rules, covers_next=covers_next)
        )
        cover(i, rules)
        if covers_next:
            # Skip the rest of the comment block: the suppression
            # attaches to the code line it is documenting.
            target = i + 1
            while target <= len(source_lines) and _COMMENT_ONLY.match(
                source_lines[target - 1]
            ):
                target += 1
            cover(target, rules)
    return index
