"""Committed-baseline ratchet.

The baseline file records accepted debt as finding fingerprints (rule +
path + normalised line text) with occurrence counts.  The ratchet is
two-sided:

- a finding whose fingerprint is NOT in the baseline **fails** the run
  (debt cannot grow);
- a baseline entry that matches nothing is **stale** and also fails the
  run until ``--update-baseline`` removes it (debt cannot silently
  linger after it is fixed — the ratchet clicks down).

Fingerprints ignore line numbers, so unrelated edits that shift code do
not churn the file; moving or editing the offending line itself does
invalidate its entry, which is exactly when a human should re-look.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import AnalysisResult, Finding
from repro.analysis.registry import AnalysisError

BASELINE_VERSION = 1
DEFAULT_BASELINE = "analysis-baseline.json"


@dataclass
class Baseline:
    """Accepted findings, keyed by fingerprint with occurrence counts."""

    entries: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file.

        Raises:
            AnalysisError: on unreadable or structurally invalid files.
        """
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("version") != BASELINE_VERSION
            or not isinstance(payload.get("findings"), dict)
        ):
            raise AnalysisError(
                f"baseline {path} has an unexpected shape "
                f"(want version {BASELINE_VERSION} with a findings map)"
            )
        return cls(entries=payload["findings"])

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        entries: dict[str, dict] = {}
        for f in sorted(findings, key=Finding.sort_key):
            entry = entries.setdefault(
                f.fingerprint,
                {"rule": f.rule, "path": f.path, "message": f.message, "count": 0},
            )
            entry["count"] += 1
        return cls(entries=entries)

    def write(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "tool": "repro-analyze",
            "findings": {k: self.entries[k] for k in sorted(self.entries)},
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def partition(self, result: AnalysisResult) -> None:
        """Split ``result.findings`` into new vs baselined, in place.

        Each baseline entry absorbs up to ``count`` matching findings;
        anything beyond that is new debt.  Any unconsumed allowance
        (an entry that matched fewer findings than its count) is stale:
        debt was fixed, and the baseline must ratchet down to match.
        """
        remaining = {k: int(v.get("count", 1)) for k, v in self.entries.items()}
        new: list[Finding] = []
        matched: list[Finding] = []
        for finding in result.findings:
            fp = finding.fingerprint
            if remaining.get(fp, 0) > 0:
                remaining[fp] -= 1
                matched.append(finding)
            else:
                new.append(finding)
        result.findings = new
        result.baselined = matched
        result.stale_baseline = sorted(
            fp for fp, left in remaining.items() if left > 0
        )

    def describe_stale(self, fingerprints: list[str]) -> list[str]:
        out = []
        for fp in fingerprints:
            entry = self.entries.get(fp, {})
            out.append(
                f"{fp} {entry.get('rule', '?')} {entry.get('path', '?')}: "
                f"{entry.get('message', '?')}"
            )
        return out
