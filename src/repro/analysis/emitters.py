"""Finding emitters: human text, machine JSON, and SARIF 2.1.0.

SARIF output targets the subset GitHub code scanning ingests: tool
driver metadata with per-rule descriptions, one ``result`` per finding
with a physical location, and a stable ``partialFingerprints`` entry so
re-runs update rather than duplicate alerts.
"""

from __future__ import annotations

from repro.analysis.findings import AnalysisResult, Finding
from repro.analysis.registry import Rule

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-analyze"
TOOL_URI = "https://github.com/anthropics/repro"  # placeholder project URI


def _finding_dict(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "severity": finding.severity.value,
        "message": finding.message,
        "fingerprint": finding.fingerprint,
    }


def to_json(result: AnalysisResult) -> dict:
    """JSON-ready dict of one analysis run."""
    return {
        "version": 1,
        "tool": TOOL_NAME,
        "summary": {
            "files_scanned": result.files_scanned,
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "stale_baseline": len(result.stale_baseline),
            "parse_errors": result.parse_errors,
            "by_rule": result.counts_by_rule(),
            "clean": result.clean,
        },
        "findings": [_finding_dict(f) for f in result.findings],
        "baselined": [_finding_dict(f) for f in result.baselined],
        "stale_baseline": list(result.stale_baseline),
    }


def to_sarif(result: AnalysisResult, rules: tuple[Rule, ...]) -> dict:
    """SARIF 2.1.0 log of one analysis run (new findings only)."""
    rule_meta = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": rule.severity.sarif_level},
        }
        for rule in rules
    ]
    rule_index = {rule.id: i for i, rule in enumerate(rules)}
    results = []
    for finding in result.findings:
        entry = {
            "ruleId": finding.rule,
            "level": finding.severity.sarif_level,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproAnalyze/v1": finding.fingerprint},
        }
        if finding.rule in rule_index:
            entry["ruleIndex"] = rule_index[finding.rule]
        results.append(entry)
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rule_meta,
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }


def to_text(result: AnalysisResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.render() for f in result.findings]
    if result.stale_baseline:
        lines.append("")
        lines.append(
            f"{len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
            "(fixed findings still in the baseline; run --update-baseline)"
        )
    if verbose and result.baselined:
        lines.append("")
        lines.append("baselined (accepted debt):")
        lines.extend(f"  {f.render()}" for f in result.baselined)
    summary = (
        f"{result.files_scanned} files scanned: "
        f"{len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed"
    )
    if result.counts_by_rule():
        per_rule = ", ".join(
            f"{rule}={n}" for rule, n in result.counts_by_rule().items()
        )
        summary += f" [{per_rule}]"
    lines.append("")
    lines.append(summary)
    return "\n".join(lines).lstrip("\n")
