"""The analysis driver: file collection, parsing, rule dispatch.

One :class:`Analyzer` run parses every target file once, builds the
project-wide import graph (for reachability-scoped rules), then hands
each file to each applicable rule and filters the raw findings through
inline suppressions.  Baseline filtering happens one layer up, in
:mod:`repro.analysis.baseline`, so library callers can see the full
finding set.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import AnalysisResult, Finding, Severity
from repro.analysis.imports import (
    ImportGraph,
    build_import_graph,
    module_name_for,
    rel_posix,
)
from repro.analysis.registry import Rule, select_rules
from repro.analysis.suppressions import SuppressionIndex, parse_suppressions
from repro.analysis.unitsig import (
    EMPTY_TABLE,
    SignatureTable,
    harvest_signatures,
)

#: Modules whose import closure the determinism rule polices: everything
#: that can influence a job spec's content hash or its worker-side
#: recomputation.
DETERMINISM_ROOTS = ("repro.engine.jobs",)

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "build", "dist", ".eggs"}


@dataclass
class ProjectContext:
    """Whole-run state shared by every file's analysis."""

    root: Path
    import_graph: ImportGraph
    determinism_scope: set[str] = field(default_factory=set)
    #: True when none of DETERMINISM_ROOTS exist among the analyzed
    #: files; reachability is then unknowable and reachability-scoped
    #: rules fall back to checking everything (fixture/sandbox mode).
    determinism_scope_is_global: bool = False
    #: Cross-module unit signatures for the dataflow rules (RPR101-103).
    unit_signatures: SignatureTable = field(default=EMPTY_TABLE)


@dataclass
class FileContext:
    """One parsed file plus everything a rule needs to inspect it."""

    path: Path
    rel_path: str
    source: str
    lines: list[str]
    tree: ast.Module
    module: str | None
    project: ProjectContext
    suppressions: SuppressionIndex

    @property
    def is_test(self) -> bool:
        """Heuristic: test files get looser treatment from src-only rules."""
        return is_test_path(self.rel_path)

    @property
    def in_determinism_scope(self) -> bool:
        if self.project.determinism_scope_is_global:
            return not self.is_test
        return (
            self.module is not None
            and self.module in self.project.determinism_scope
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def unit_diagnostics(self):
        """Unit-dataflow diagnostics for this file, computed once.

        All three flow rules (RPR101-103) consume the same pass; the
        first caller pays for the interpretation, the rest filter.
        """
        if self._unit_diags is None:
            from repro.analysis.dataflow import analyze_units

            self._unit_diags = analyze_units(
                self.tree, self.project.unit_signatures, self.module
            )
        return self._unit_diags

    def interval_diagnostics(self):
        """Interval-domain diagnostics for this file, computed once.

        The numeric-safety and loop rules (RPR301/303/310) share one
        interpretation the same way the unit rules share theirs.
        """
        if self._interval_diags is None:
            from repro.analysis.intervals import analyze_intervals

            self._interval_diags = analyze_intervals(
                self.tree, self.project.unit_signatures, self.module
            )
        return self._interval_diags

    _unit_diags: list | None = field(default=None, repr=False)
    _interval_diags: list | None = field(default=None, repr=False)


class PathPartsCache:
    """Tiny helper so ``is_test`` stays allocation-light on big runs."""

    _cache: dict[str, tuple[str, ...]] = {}

    @classmethod
    def parts(cls, rel_path: str) -> tuple[str, ...]:
        parts = cls._cache.get(rel_path)
        if parts is None:
            parts = tuple(rel_path.split("/"))
            cls._cache[rel_path] = parts
        return parts


def is_test_path(rel_path: str) -> bool:
    """Whether a repo-relative posix path names a test/bench file.

    Shared by :attr:`FileContext.is_test` and the project snapshot
    (test files never enter the call graph — their fixtures break
    concurrency discipline on purpose).
    """
    parts = PathPartsCache.parts(rel_path)
    return (
        "tests" in parts
        or "test" in parts
        or parts[-1].startswith(("test_", "bench_"))
        or parts[-1].endswith("_test.py")
    )


def collect_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    out.add(candidate)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def range_findings(rules: tuple[Rule, ...], payloads: list[dict]) -> list[Finding]:
    """Turn range-pass payloads into RPR302 findings.

    Shared by both drivers: the in-process path computes payloads
    directly, the incremental driver replays them from its cache.
    """
    rule = next((r for r in rules if r.id == "RPR302"), None)
    if rule is None:
        return []
    return [
        Finding(
            rule=rule.id,
            path=p["path"],
            line=p["line"],
            col=p["col"],
            message=p["message"],
            severity=rule.severity,
            snippet=p.get("snippet", ""),
            context=p.get("context", ""),
        )
        for p in payloads
    ]


class Analyzer:
    """Runs a rule set over a file tree.

    Args:
        root: directory findings' paths are reported relative to
            (normally the repo root).
        select: optional rule-id allowlist.
        ignore: optional rule-id denylist.
        rules: explicit rule instances (overrides select/ignore).
        report_only: optional set of repo-relative posix paths; when
            given, the whole tree is still analyzed (project passes need
            global facts) but only findings anchored in these files are
            reported.  This is the ``--changed`` mode.
    """

    def __init__(
        self,
        root: Path | str = ".",
        select: list[str] | None = None,
        ignore: list[str] | None = None,
        rules: tuple[Rule, ...] | None = None,
        cache_dir: Path | str | None = None,
        workers: int | None = None,
        report_only: set[str] | None = None,
    ) -> None:
        self.root = Path(root)
        self._custom_rules = rules is not None
        self.rules = rules if rules is not None else select_rules(select, ignore)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.workers = workers
        self.report_only = report_only

    def analyze_paths(self, paths: list[Path | str]) -> AnalysisResult:
        """Analyze files and directories; returns all raw findings.

        With ``cache_dir`` set (and rules taken from the registry), the
        run goes through the incremental driver: per-file results are
        cached by content in the engine's result store and cold work is
        fanned out over a process pool.  Explicit ``rules=`` instances
        force the in-process path — workers rebuild rules from the
        registry by id, which ad-hoc instances may not be in.

        Files that fail to parse produce an ``RPR000`` syntax-error
        finding rather than aborting the run.
        """
        files = collect_files([Path(p) for p in paths])
        if self.cache_dir is not None and not self._custom_rules:
            from repro.analysis.incremental import IncrementalDriver

            driver = IncrementalDriver(
                root=self.root,
                rules=self.rules,
                cache_dir=self.cache_dir,
                workers=self.workers,
            )
            return self._filter_report(driver.analyze_files(files))
        result = AnalysisResult(files_scanned=len(files))

        parsed: dict[str, tuple[Path, str, ast.Module]] = {}
        trees_by_rel: dict[str, ast.AST] = {}
        for path in files:
            rel = rel_posix(path, self.root)
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError, ValueError) as exc:
                result.parse_errors += 1
                line = getattr(exc, "lineno", None) or 1
                result.findings.append(
                    Finding(
                        rule="RPR000",
                        path=rel,
                        line=line,
                        col=1,
                        message=f"file could not be parsed: {exc}",
                        severity=Severity.ERROR,
                    )
                )
                continue
            parsed[rel] = (path, source, tree)
            trees_by_rel[rel] = tree

        graph = build_import_graph(trees_by_rel)
        scope = graph.reachable_from(DETERMINISM_ROOTS)
        harvests = [
            harvest_signatures(tree, module_name_for(rel))
            for rel, (_, _, tree) in parsed.items()
        ]
        project = ProjectContext(
            root=self.root,
            import_graph=graph,
            determinism_scope=scope,
            determinism_scope_is_global=not scope,
            unit_signatures=SignatureTable.merge(harvests),
        )

        file_rules = tuple(r for r in self.rules if r.scope == "file")
        project_rules = tuple(r for r in self.rules if r.scope == "project")
        interval_rules = tuple(r for r in self.rules if r.scope == "intervals")

        suppress_maps: dict[str, dict[int, set[str]]] = {}
        lines_by_rel: dict[str, list[str]] = {}
        for rel, (path, source, tree) in parsed.items():
            lines = source.splitlines()
            suppressions = parse_suppressions(lines, tree)
            suppress_maps[rel] = suppressions._by_line
            lines_by_rel[rel] = lines
            ctx = FileContext(
                path=path,
                rel_path=rel,
                source=source,
                lines=lines,
                tree=tree,
                module=module_name_for(rel),
                project=project,
                suppressions=suppressions,
            )
            for rule in file_rules:
                if not rule.applies_to(ctx):
                    continue
                for finding in rule.check(ctx):
                    if ctx.suppressions.covers(finding):
                        result.suppressed.append(finding)
                    else:
                        result.findings.append(finding)

        callgraph_pass_s = 0.0
        if project_rules:
            from repro.analysis.callgraph import harvest_callgraph
            from repro.analysis.concurrency import (
                ProjectSnapshot,
                run_project_rules,
            )

            start = time.perf_counter()
            cg_harvests = {
                rel: (module_name_for(rel), harvest_callgraph(tree, module_name_for(rel)))
                for rel, (_, _, tree) in parsed.items()
                if not is_test_path(rel)
            }
            snapshot = ProjectSnapshot.build(
                cg_harvests, lines_by_rel, suppress_maps
            )
            proj_findings, proj_suppressed = run_project_rules(
                project_rules, snapshot
            )
            result.findings.extend(proj_findings)
            result.suppressed.extend(proj_suppressed)
            callgraph_pass_s = time.perf_counter() - start

        range_pass_s = 0.0
        if interval_rules:
            from repro.analysis.intervals import (
                harvest_interval_facts,
                run_range_pass,
            )

            start = time.perf_counter()
            facts = {
                rel: harvest_interval_facts(
                    tree, module_name_for(rel), lines_by_rel[rel]
                )
                for rel, (_, _, tree) in parsed.items()
                if not is_test_path(rel)
            }
            payloads = run_range_pass(facts, project.unit_signatures)
            for finding in range_findings(interval_rules, payloads):
                covered = finding.rule in suppress_maps.get(
                    finding.path, {}
                ).get(finding.line, set())
                if covered:
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)
            range_pass_s = time.perf_counter() - start

        result.findings.sort(key=Finding.sort_key)
        result.suppressed.sort(key=Finding.sort_key)
        result.stats = {
            "driver": "in-process",
            "files": len(files),
            "analyzed": len(parsed),
            "cached": 0,
            "callgraph_rules": len(project_rules),
            "callgraph_pass": "computed" if project_rules else "skipped",
            "callgraph_pass_s": round(callgraph_pass_s, 4),
            "range_rules": len(interval_rules),
            "range_pass": "computed" if interval_rules else "skipped",
            "range_pass_s": round(range_pass_s, 4),
        }
        return self._filter_report(result)

    def _filter_report(self, result: AnalysisResult) -> AnalysisResult:
        """Drop findings outside ``report_only``, when set (--changed)."""
        if self.report_only is None:
            return result
        result.findings = [
            f for f in result.findings if f.path in self.report_only
        ]
        result.suppressed = [
            f for f in result.suppressed if f.path in self.report_only
        ]
        return result
