"""Physics-aware static analysis for the repro codebase.

An AST-based rule suite that enforces the invariants the type system
cannot see: unit-suffix naming (RPR001), cache-key determinism
(RPR002), process-pool picklability (RPR003), no raw float equality
(RPR004), single-spelling paper constants (RPR005), and no broad
excepts (RPR006).  Run it as ``python -m repro analyze``; accepted debt
lives in a committed baseline file with a two-sided ratchet.

Library entry points::

    from repro.analysis import Analyzer, Baseline

    result = Analyzer(root=".").analyze_paths(["src", "tests"])
    for finding in result.findings:
        print(finding.render())
"""

from repro.analysis.baseline import Baseline
from repro.analysis.emitters import to_json, to_sarif, to_text
from repro.analysis.engine import Analyzer, FileContext
from repro.analysis.findings import AnalysisResult, Finding, Severity
from repro.analysis.registry import (
    AnalysisError,
    Rule,
    all_rules,
    get_rule,
    register,
    select_rules,
)
from repro.analysis.suppressions import parse_suppressions

__all__ = [
    "AnalysisError",
    "AnalysisResult",
    "Analyzer",
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "parse_suppressions",
    "register",
    "select_rules",
    "to_json",
    "to_sarif",
    "to_text",
]
