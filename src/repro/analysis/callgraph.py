"""Interprocedural call-graph construction over the ``repro`` tree.

The concurrency rules (RPR201–205) are reachability problems: a dict
write is only a race if the writing function can *run on a worker
thread*, and that fact lives two or three calls away from the write.
This module supplies the reachability substrate in two stages:

1. :func:`harvest_callgraph` — one file's contribution, extracted from
   its AST as plain JSON-able data (and therefore cacheable by content
   hash, exactly like the unit-signature harvest): every function's
   calls, attribute writes, lock acquisitions (``with`` / ``async
   with`` scopes), resource acquisitions, async coloring, local
   variable types, plus the file's classes, attribute types, and import
   aliases.

2. :meth:`CallGraph.build` — the merged, project-wide graph.  Raw call
   expressions are resolved against the harvested definitions:

   - bare names against the module's own functions and import aliases;
   - ``self.method(...)`` against the owner class (and project bases);
   - ``self.attr.method(...)`` via the attr's assigned type
     (``self.batcher = MicroBatcher(...)`` binds
     ``self.batcher.submit`` to ``MicroBatcher.submit``);
   - ``var.method(...)`` via local-variable and parameter annotations;
   - ``self.helper().method(...)`` via the helper's inferred return
     type;
   - ``functools.partial(f, ...)`` and nested ``def`` closures as
     dedicated edge kinds;
   - thread-boundary wrappers — ``loop.run_in_executor``,
     ``threading.Thread(target=...)``, ``pool.submit`` on a
     thread-pool-typed receiver, ``asyncio.create_task`` — as typed
     edges the escape analysis colors from.

Resolution is deliberately best-effort: an unresolved call simply adds
no edge, which under-approximates reachability and therefore
under-reports (never invents) concurrency findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Bump when the harvest payload shape or the resolution semantics
#: change; part of the incremental driver's call-graph-pass cache key.
CALLGRAPH_VERSION = 1

#: Container constructors that produce known non-thread-safe mutable
#: values (the types RPR201/RPR203 reason about).
_CONTAINER_TYPES = {
    "dict": "dict",
    "list": "list",
    "set": "set",
    "OrderedDict": "dict",
    "collections.OrderedDict": "dict",
    "defaultdict": "dict",
    "collections.defaultdict": "dict",
    "deque": "list",
    "collections.deque": "list",
}

#: Lock constructors, by resolved dotted name.
_LOCK_TYPES = {
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "asyncio.Lock": "asynclock",
    "asyncio.Semaphore": "asynclock",
    "threading.Condition": "lock",
    "threading.Semaphore": "lock",
}

#: threading.local — attributes behind it are per-thread by definition.
_THREAD_LOCAL_TYPES = {"threading.local"}

#: Executor constructors, by resolved dotted name.
_POOL_TYPES = {
    "concurrent.futures.ThreadPoolExecutor": "threadpool",
    "ThreadPoolExecutor": "threadpool",
    "concurrent.futures.ProcessPoolExecutor": "processpool",
    "ProcessPoolExecutor": "processpool",
}

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "add", "update", "setdefault", "pop",
        "popitem", "popleft", "clear", "discard", "remove", "extend",
        "insert", "move_to_end", "__setitem__",
    }
)

#: Resource-acquiring callables RPR205 tracks, by resolved dotted name.
RESOURCE_TYPES = {
    "open": "file",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "ThreadPoolExecutor": "executor",
    "ProcessPoolExecutor": "executor",
    "concurrent.futures.ThreadPoolExecutor": "executor",
    "concurrent.futures.ProcessPoolExecutor": "executor",
}

#: Methods that release a tracked resource.
RESOURCE_RELEASERS = frozenset({"close", "shutdown", "terminate"})

#: Method names too generic for the unique-name fallback: binding
#: ``pending.add(...)`` to the one project class that happens to define
#: ``add`` invents edges (and with them, false thread coloring).
_FALLBACK_DENY = MUTATOR_METHODS | frozenset(
    {
        "get", "put", "run", "close", "shutdown", "submit", "start",
        "join", "items", "keys", "values", "copy", "read", "write",
        "send", "recv", "acquire", "release", "set", "done", "result",
        "cancel", "wait", "next", "open", "stop", "reset", "flush",
    }
)


def dotted_expr(node: ast.expr) -> str | None:
    """``a.b.c`` for a plain name/attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_expr(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _import_aliases(tree: ast.Module, module: str | None) -> dict[str, str]:
    """Local name -> fully dotted target for every import in the file."""
    package_parts = module.split(".")[:-1] if module else []
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                out[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(
                    anchor + ([node.module] if node.module else [])
                )
            for alias in node.names:
                local = alias.asname or alias.name
                out[local] = f"{base}.{alias.name}" if base else alias.name
    return out


def _value_type_expr(node: ast.expr | None) -> str | None:
    """A resolvable "type expression" for an assigned value.

    ``call:<name>`` for constructor calls, ``var:<name>`` for aliases,
    ``attr:<name>`` for ``self.<name>``, literal container kinds
    directly.  Resolved against the project in :meth:`CallGraph.build`.
    """
    if node is None:
        return None
    if isinstance(node, ast.Dict) or isinstance(node, ast.DictComp):
        return "dict"
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
        # The default-fallback idiom: ``platform or Platform(...)``.
        for value in node.values:
            vtype = _value_type_expr(value)
            if vtype is not None:
                return vtype
        return None
    if isinstance(node, ast.IfExp):
        return _value_type_expr(node.body) or _value_type_expr(node.orelse)
    if isinstance(node, ast.Call):
        name = dotted_expr(node.func)
        return f"call:{name}" if name else None
    if isinstance(node, ast.Name):
        return f"var:{node.id}"
    if isinstance(node, ast.Attribute):
        dotted = dotted_expr(node)
        if dotted and dotted.startswith("self.") and dotted.count(".") == 1:
            return f"attr:{dotted.split('.', 1)[1]}"
    return None


def _annotation_type(node: ast.expr | None) -> str | None:
    """``ann:<dotted>`` for a plain annotation, unwrapping Optional."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``T | None`` — take the non-None side.
        for side in (node.left, node.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                return _annotation_type(side)
    if isinstance(node, ast.Subscript):
        return _annotation_type(node.value)
    dotted = dotted_expr(node)
    return f"ann:{dotted}" if dotted else None


class _FunctionHarvester:
    """Walks one function body, tracking the active lock scopes."""

    def __init__(self, qualname: str, node: ast.FunctionDef | ast.AsyncFunctionDef,
                 module_globals: set[str]) -> None:
        self.qualname = qualname
        self.node = node
        self.module_globals = module_globals
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        self.calls: list[dict] = []
        self.writes: list[dict] = []
        self.withs: list[dict] = []
        self.resources: list[dict] = []
        self.nested: list[str] = []
        self.vartypes: dict[str, str] = {}
        self.returns: list[str] = []
        self.global_decls: set[str] = set()
        self.closes: set[str] = set()
        self.with_vars: set[str] = set()
        self.joined: set[str] = set()
        self.escaped: set[str] = set()
        self.awaits: list[int] = []
        self.self_reads: set[str] = set()
        self.decorators: list[str] = []
        for dec in node.decorator_list:
            dotted = dotted_expr(dec.func if isinstance(dec, ast.Call) else dec)
            if dotted is not None:
                self.decorators.append(dotted)
        for arg in [*node.args.posonlyargs, *node.args.args,
                    *node.args.kwonlyargs]:
            ann = _annotation_type(arg.annotation)
            if ann is not None:
                self.vartypes.setdefault(arg.arg, ann)

    # ---- helpers -------------------------------------------------------

    def _record_call(self, call: ast.Call, locks: list[str],
                     awaited: bool, dropped: bool) -> None:
        func = call.func
        name = dotted_expr(func)
        recv_call = None
        attr = None
        if name is None and isinstance(func, ast.Attribute):
            attr = func.attr
            if isinstance(func.value, ast.Call):
                recv_call = dotted_expr(func.value.func)
        rec: dict = {
            "name": name,
            "line": call.lineno,
            "col": call.col_offset + 1,
            "await": awaited,
            "dropped": dropped,
            "locks": list(locks),
        }
        if recv_call is not None:
            rec["recv_call"] = recv_call
            rec["attr"] = attr
        target, tkind, recv = self._wrapper_target(call, name)
        if target is not None:
            rec["target"] = target
            rec["tkind"] = tkind
            if recv is not None:
                rec["recv"] = recv
        self.calls.append(rec)

    def _wrapper_target(
        self, call: ast.Call, name: str | None
    ) -> tuple[str | None, str | None, str | None]:
        """(target expr, edge kind, receiver expr) for boundary wrappers."""
        if name is None:
            return None, None, None

        def arg_expr(node: ast.expr) -> str | None:
            if isinstance(node, ast.Call):
                return dotted_expr(node.func)
            return dotted_expr(node)

        last = name.rsplit(".", 1)[-1]
        if last == "run_in_executor" and len(call.args) >= 2:
            return arg_expr(call.args[1]), "executor", None
        if name in ("Thread", "threading.Thread"):
            for kw in call.keywords:
                if kw.arg == "target":
                    return arg_expr(kw.value), "thread", None
            return None, None, None
        if last == "submit" and "." in name and call.args:
            recv = name.rsplit(".", 1)[0]
            return arg_expr(call.args[0]), "submit", recv
        if last in ("create_task", "ensure_future") and call.args:
            return arg_expr(call.args[0]), "task", None
        if name in ("partial", "functools.partial") and call.args:
            return arg_expr(call.args[0]), "partial", None
        if last in ("call_soon", "call_later", "call_soon_threadsafe"):
            idx = 1 if last == "call_later" else 0
            if len(call.args) > idx:
                return arg_expr(call.args[idx]), "callback", None
        if last == "add_done_callback" and call.args:
            return arg_expr(call.args[0]), "callback", None
        return None, None, None

    def _record_write(self, target: ast.expr, op: str, locks: list[str],
                      value: ast.expr | None, line: int, col: int) -> None:
        """Record a write to ``self.<attr>[...]`` or a module global."""
        vtype = _value_type_expr(value)
        if isinstance(target, ast.Subscript):
            base = dotted_expr(target.value)
            if base is None:
                return
            self._record_dotted_write(base, "item", locks, vtype, line, col)
            return
        dotted = dotted_expr(target)
        if dotted is None:
            return
        if isinstance(target, ast.Name):
            if op == "assign" and vtype is not None:
                self.vartypes[dotted] = vtype
            if dotted in self.global_decls or (
                op != "assign" and dotted in self.module_globals
            ):
                self.writes.append({
                    "target": f"global:{dotted}", "attr": dotted, "sub": None,
                    "op": op, "locks": list(locks), "type": vtype,
                    "line": line, "col": col,
                })
            return
        self._record_dotted_write(dotted, op, locks, vtype, line, col)

    def _record_dotted_write(self, dotted: str, op: str, locks: list[str],
                             vtype: str | None, line: int, col: int) -> None:
        parts = dotted.split(".")
        if parts[0] == "self" and len(parts) >= 2:
            self.writes.append({
                "target": dotted,
                "attr": parts[1],
                "sub": parts[2] if len(parts) > 2 else None,
                "op": op, "locks": list(locks), "type": vtype,
                "line": line, "col": col,
            })
        elif parts[0] in self.module_globals:
            self.writes.append({
                "target": f"global:{dotted}", "attr": parts[0], "sub": None,
                "op": op, "locks": list(locks), "type": vtype,
                "line": line, "col": col,
            })

    def _record_resource(self, call: ast.Call, assigned: str | None,
                         in_with: bool) -> None:
        name = dotted_expr(call.func)
        if name is None:
            return
        rec_type = RESOURCE_TYPES.get(name)
        if rec_type is None:
            return
        self.resources.append({
            "type": rec_type, "ctor": name, "line": call.lineno,
            "col": call.col_offset + 1, "assigned": assigned,
            "in_with": in_with,
        })

    # ---- the walk ------------------------------------------------------

    def harvest(self) -> dict:
        for stmt in self.node.body:
            self._walk_stmt(stmt, [])
        # Whole-body sweep for self-attribute *reads* (property edges)
        # and generator escapes; nested defs share ``self``, so charging
        # their reads to the outer function only widens reachability.
        for sub in ast.walk(self.node):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
                and isinstance(sub.ctx, ast.Load)
            ):
                self.self_reads.add(sub.attr)
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)) and \
                    sub.value is not None:
                yielded = dotted_expr(sub.value)
                if yielded is not None:
                    self.escaped.add(yielded)
        return {
            "async": self.is_async,
            "line": self.node.lineno,
            "calls": self.calls,
            "writes": self.writes,
            "withs": self.withs,
            "resources": self.resources,
            "nested": self.nested,
            "vartypes": self.vartypes,
            "returns": self.returns,
            "closes": sorted(self.closes),
            "with_vars": sorted(self.with_vars),
            "joined": sorted(self.joined),
            "escaped": sorted(self.escaped),
            "self_reads": sorted(self.self_reads),
            "decorators": self.decorators,
        }

    def _walk_stmt(self, stmt: ast.stmt, locks: list[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested.append(stmt.name)
            return  # harvested as its own function by the caller
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_with(stmt, locks)
            return
        self._scan_exprs(stmt, locks)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._record_write(target, "assign", locks, stmt.value,
                                   stmt.lineno, stmt.col_offset + 1)
            resource = stmt.value if isinstance(stmt.value, ast.Call) else None
            if resource is not None and len(stmt.targets) == 1:
                assigned = dotted_expr(stmt.targets[0])
                self._record_resource(resource, assigned, in_with=False)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._record_write(stmt.target, "assign", locks, stmt.value,
                               stmt.lineno, stmt.col_offset + 1)
            if isinstance(stmt.target, ast.Name):
                ann = _annotation_type(stmt.annotation)
                if ann is not None:
                    self.vartypes.setdefault(stmt.target.id, ann)
            if isinstance(stmt.value, ast.Call):
                self._record_resource(stmt.value, dotted_expr(stmt.target),
                                      in_with=False)
        elif isinstance(stmt, ast.AugAssign):
            self._record_write(stmt.target, "aug", locks, None,
                               stmt.lineno, stmt.col_offset + 1)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    self._record_write(target, "item", locks, None,
                                       stmt.lineno, stmt.col_offset + 1)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            rtype = _value_type_expr(stmt.value)
            if rtype is not None:
                self.returns.append(rtype)
            returned = dotted_expr(stmt.value)
            if returned is not None:
                self.escaped.add(returned)
        elif isinstance(stmt, ast.Global):
            self.global_decls.update(stmt.names)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._walk_stmt(child, locks)
            elif isinstance(child, (ast.ExceptHandler, ast.match_case)):
                for sub in child.body:
                    self._walk_stmt(sub, locks)

    def _walk_with(self, stmt: ast.With | ast.AsyncWith,
                   locks: list[str]) -> None:
        is_async = isinstance(stmt, ast.AsyncWith)
        held = list(locks)
        wrecs: list[dict] = []
        for item in stmt.items:
            ctx = item.context_expr
            if isinstance(ctx, ast.Call):
                self._scan_call_tree(ctx, locks)
                self._record_resource(ctx, dotted_expr(item.optional_vars)
                                      if item.optional_vars else None,
                                      in_with=True)
                expr = dotted_expr(ctx.func)
            else:
                expr = dotted_expr(ctx)
                if expr is not None:
                    self.with_vars.add(expr)
            if expr is not None:
                wrec = {"expr": expr, "line": stmt.lineno,
                        "async": is_async, "awaits": []}
                wrecs.append(wrec)
                self.withs.append(wrec)
                held.append(expr)
        awaits_before = len(self.awaits)
        for sub in stmt.body:
            self._walk_stmt(sub, held)
        inner_awaits = self.awaits[awaits_before:]
        for wrec in wrecs:
            wrec["awaits"] = list(inner_awaits)

    def _scan_exprs(self, stmt: ast.stmt, locks: list[str]) -> None:
        """Record calls/awaits in the statement's own expressions."""
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_call_tree(child, locks,
                                     top_stmt=stmt if isinstance(stmt, ast.Expr)
                                     else None)

    def _scan_call_tree(self, expr: ast.expr, locks: list[str],
                        top_stmt: ast.Expr | None = None) -> None:
        awaited_calls: set[int] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Await):
                self.awaits.append(node.lineno)
                if isinstance(node.value, ast.Call):
                    awaited_calls.add(id(node.value))
            elif isinstance(node, ast.Lambda):
                continue
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            awaited = id(node) in awaited_calls
            dropped = (
                top_stmt is not None
                and top_stmt.value is node
                and not awaited
            )
            self._record_call(node, locks, awaited, dropped)
            func = node.func
            if isinstance(func, ast.Attribute):
                recv = dotted_expr(func.value)
                if recv is not None:
                    if func.attr in RESOURCE_RELEASERS:
                        self.closes.add(recv)
                    elif func.attr == "join":
                        self.joined.add(recv)
            for arg in [*node.args, *[k.value for k in node.keywords]]:
                passed = dotted_expr(arg)
                if passed is not None:
                    self.escaped.add(passed)


def harvest_callgraph(tree: ast.Module, module: str | None) -> dict:
    """One file's call-graph facts, JSON-ready (see module docstring)."""
    functions: dict[str, dict] = {}
    classes: dict[str, dict] = {}
    module_globals: set[str] = set()
    global_types: dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    module_globals.add(target.id)
                    vtype = _value_type_expr(stmt.value)
                    if vtype is not None:
                        global_types.setdefault(target.id, vtype)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            module_globals.add(stmt.target.id)
            vtype = _annotation_type(stmt.annotation) or _value_type_expr(
                stmt.value
            )
            if vtype is not None:
                global_types.setdefault(stmt.target.id, vtype)

    def harvest_function(node, qualname: str) -> None:
        harvester = _FunctionHarvester(qualname, node, module_globals)
        functions[qualname] = harvester.harvest()
        for sub in ast.walk(node):
            if sub is node:
                continue
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                harvest_function(sub, f"{qualname}.{sub.name}")

    def harvest_class(node: ast.ClassDef, prefix: str) -> None:
        fields: dict[str, str] = {}
        for sub in node.body:
            if isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                ann = _annotation_type(sub.annotation)
                if ann is None and sub.value is not None:
                    ann = _value_type_expr(sub.value)
                if ann is not None:
                    fields[sub.target.id] = ann
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1 and \
                    isinstance(sub.targets[0], ast.Name):
                vtype = _value_type_expr(sub.value)
                if vtype is not None:
                    fields.setdefault(sub.targets[0].id, vtype)
        classes[f"{prefix}{node.name}"] = {
            "line": node.lineno,
            "bases": [b for b in (dotted_expr(base) for base in node.bases)
                      if b is not None],
            "fields": fields,
        }
        for sub in node.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                harvest_function(sub, f"{prefix}{node.name}.{sub.name}")
            elif isinstance(sub, ast.ClassDef):
                harvest_class(sub, f"{prefix}{node.name}.")

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            harvest_function(stmt, stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            harvest_class(stmt, "")

    return {
        "functions": functions,
        "classes": classes,
        "imports": _import_aliases(tree, module),
        "globals": sorted(module_globals),
        "global_types": global_types,
    }


# ---------------------------------------------------------------------------
# The merged graph.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Edge:
    """One resolved call edge.

    Attributes:
        caller / callee: fully dotted function qualnames.
        line: call-site line in the caller's file.
        kind: ``call`` (plain), ``task`` (``create_task``), ``thread``
            (``Thread(target=...)``), ``executor``
            (``run_in_executor`` / thread-pool ``submit``), ``partial``,
            ``closure``, or ``callback`` (``call_soon`` family).
        awaited: whether the call site awaits the result.
    """

    caller: str
    callee: str
    line: int
    kind: str
    awaited: bool = False


@dataclass
class FunctionNode:
    """One project function in the merged graph."""

    qualname: str
    module: str
    rel_path: str
    is_async: bool
    line: int
    owner_class: str | None
    raw: dict = field(repr=False, default_factory=dict)


class CallGraph:
    """The merged project call graph (see module docstring)."""

    def __init__(self) -> None:
        self.nodes: dict[str, FunctionNode] = {}
        self.classes: dict[str, dict] = {}
        self.edges: list[Edge] = []
        self.out: dict[str, list[Edge]] = {}
        self.into: dict[str, list[Edge]] = {}
        self._imports: dict[str, dict[str, str]] = {}
        self._unique_methods: dict[str, str] = {}
        #: module -> {global name -> harvested type expression}.
        self.global_types: dict[str, dict[str, str]] = {}

    # ---- construction --------------------------------------------------

    @classmethod
    def build(cls, harvests: dict[str, tuple[str | None, dict]]) -> "CallGraph":
        """Merge per-file harvests into one resolved graph.

        Args:
            harvests: ``rel_path -> (module, harvest payload)``.
        """
        graph = cls()
        for rel, (module, payload) in harvests.items():
            if module is None:
                continue
            graph._imports[module] = payload.get("imports", {})
            graph.global_types[module] = payload.get("global_types", {})
            for cname, cinfo in payload.get("classes", {}).items():
                graph.classes[f"{module}.{cname}"] = dict(cinfo)
            for qual, finfo in payload.get("functions", {}).items():
                owner = None
                parts = qual.split(".")
                if len(parts) >= 2:
                    candidate = f"{module}." + ".".join(parts[:-1])
                    if candidate in graph.classes or \
                            f"{module}.{parts[0]}" in graph.classes:
                        owner = f"{module}." + ".".join(parts[:-1])
                graph.nodes[f"{module}.{qual}"] = FunctionNode(
                    qualname=f"{module}.{qual}",
                    module=module,
                    rel_path=rel,
                    is_async=bool(finfo.get("async")),
                    line=finfo.get("line", 1),
                    owner_class=owner,
                    raw=finfo,
                )
        by_name: dict[str, list[str]] = {}
        for qual in graph.nodes:
            by_name.setdefault(qual.rsplit(".", 1)[-1], []).append(qual)
        graph._unique_methods = {
            name: quals[0] for name, quals in by_name.items()
            if len(quals) == 1
        }
        graph._resolve_class_attrs()
        graph._resolve_edges()
        return graph

    # ---- type resolution ----------------------------------------------

    def resolve_symbol(self, module: str, name: str) -> str:
        """A dotted name as written -> a project-or-external qualname."""
        parts = name.split(".")
        aliases = self._imports.get(module, {})
        head = parts[0]
        if head in aliases:
            parts = aliases[head].split(".") + parts[1:]
            return ".".join(parts)
        if f"{module}.{name}" in self.nodes or f"{module}.{name}" in self.classes:
            return f"{module}.{name}"
        if f"{module}.{head}" in self.classes:
            return f"{module}." + name
        return name

    def _resolve_type(self, module: str, owner: str | None,
                      texpr: str | None, depth: int = 0) -> str | None:
        """A harvested type expression -> class qualname or builtin kind."""
        if texpr is None or depth > 4:
            return None
        if texpr in ("dict", "list", "set"):
            return texpr
        scheme, _, rest = texpr.partition(":")
        if scheme == "call" or scheme == "ann":
            resolved = self.resolve_symbol(module, rest)
            if resolved in self.classes:
                return resolved
            if resolved in _CONTAINER_TYPES:
                return _CONTAINER_TYPES[resolved]
            if resolved in _LOCK_TYPES:
                return _LOCK_TYPES[resolved]
            if resolved in _THREAD_LOCAL_TYPES:
                return "local"
            if resolved in _POOL_TYPES:
                return _POOL_TYPES[resolved]
            tail = resolved.rsplit(".", 1)[-1]
            if tail in _CONTAINER_TYPES:
                return _CONTAINER_TYPES[tail]
            return None
        if scheme == "attr" and owner is not None:
            return self.attr_type(owner, rest)
        return None

    def _resolve_class_attrs(self) -> None:
        """Attach resolved attribute types to every class record.

        An attribute's type comes from class-body annotations plus every
        ``self.<attr> = ...`` assignment in the class's methods; multiple
        distinct class types collapse to the first seen (stable because
        harvests iterate in sorted-file order).
        """
        for cqual, cinfo in self.classes.items():
            module = cqual.rsplit(".", 1)[0]
            while module not in self._imports and "." in module:
                module = module.rsplit(".", 1)[0]
            attrs: dict[str, str] = {}
            for fname, texpr in cinfo.get("fields", {}).items():
                resolved = self._resolve_type(module, None, texpr)
                if resolved is not None:
                    attrs[fname] = resolved
            cinfo["attr_types"] = attrs
        # Second pass: method-body assignments (may reference other
        # classes resolved above).
        for qual, node in self.nodes.items():
            owner = node.owner_class
            if owner is None or owner not in self.classes:
                continue
            attrs = self.classes[owner]["attr_types"]
            for write in node.raw.get("writes", []):
                if write["op"] != "assign" or write.get("sub") is not None:
                    continue
                if not write["target"].startswith("self."):
                    continue
                resolved = self._resolve_var_type(node, write.get("type"))
                if resolved is not None:
                    attrs.setdefault(write["attr"], resolved)

    def _resolve_var_type(self, node: FunctionNode,
                          texpr: str | None, depth: int = 0) -> str | None:
        """Resolve a type expression in a function's local scope."""
        if texpr is None or depth > 4:
            return None
        scheme, _, rest = texpr.partition(":")
        if scheme == "var":
            local = node.raw.get("vartypes", {}).get(rest)
            if local == texpr:
                return None
            return self._resolve_var_type(node, local, depth + 1)
        if scheme == "call":
            # A constructor call types the var as its class; any other
            # project call yields that function's return type.
            resolved = self.resolve_symbol(node.module, rest)
            if resolved in self.classes:
                return resolved
            target = self._resolve_callable(node, rest, depth + 1)
            if target is not None and target in self.nodes and \
                    not target.endswith(".__init__"):
                rtype = self.return_type(target, depth + 1)
                if rtype is not None:
                    return rtype
        return self._resolve_type(node.module, node.owner_class, texpr, depth)

    def attr_type(self, class_qual: str, attr: str) -> str | None:
        """Resolved type of ``class_qual.attr``, following project bases."""
        seen: set[str] = set()
        queue = [class_qual]
        while queue:
            cqual = queue.pop(0)
            if cqual in seen or cqual not in self.classes:
                continue
            seen.add(cqual)
            hit = self.classes[cqual].get("attr_types", {}).get(attr)
            if hit is not None:
                return hit
            module = cqual.rsplit(".", 1)[0]
            for base in self.classes[cqual].get("bases", []):
                queue.append(self.resolve_symbol(module, base))
        return None

    def return_type(self, qual: str, depth: int = 0) -> str | None:
        """Inferred return type (class qualname / builtin kind) of ``qual``."""
        node = self.nodes.get(qual)
        if node is None or depth > 3:
            return None
        for texpr in node.raw.get("returns", []):
            resolved = self._resolve_var_type(node, texpr, depth + 1)
            if resolved is not None:
                return resolved
        return None

    # ---- call resolution ----------------------------------------------

    def _resolve_callable(self, node: FunctionNode,
                          name: str, depth: int = 0) -> str | None:
        """Resolve one call expression from inside ``node``."""
        if depth > 4:
            return None
        parts = name.split(".")
        module = node.module
        if parts[0] == "self":
            owner = node.owner_class
            if owner is None:
                return None
            if len(parts) == 2:
                resolved = self._method_on(owner, parts[1])
                if resolved is not None:
                    return resolved
                # ``self.attr(...)`` — a callable attribute: bind to the
                # attr type's __call__ if it is a project class.
                atype = self.attr_type(owner, parts[1])
                if atype is not None and f"{atype}.__call__" in self.nodes:
                    return f"{atype}.__call__"
                return None
            atype = self.attr_type(owner, parts[1])
            if atype is not None and atype in self.classes and len(parts) >= 3:
                return self._method_on(atype, parts[2])
            return None
        if len(parts) == 1:
            resolved = self.resolve_symbol(module, name)
            if resolved in self.nodes:
                return resolved
            if resolved in self.classes:
                init = f"{resolved}.__init__"
                return init if init in self.nodes else None
            return None
        # ``var.method(...)`` / ``mod.func(...)`` / ``Class.method(...)``.
        resolved = self.resolve_symbol(module, name)
        if resolved in self.nodes:
            return resolved
        vtype = self._resolve_var_type(node, f"var:{parts[0]}", depth + 1)
        if vtype is not None and vtype in self.classes:
            return self._method_on(vtype, parts[1])
        if (
            len(parts) == 2
            and parts[1] not in _FALLBACK_DENY
            and parts[1] in self._unique_methods
        ):
            # Unique-name fallback: bind only when the (non-generic)
            # method name resolves to exactly one project function.
            return self._unique_methods[parts[1]]
        return None

    def _method_on(self, class_qual: str, method: str) -> str | None:
        """``class_qual.method`` following project bases."""
        seen: set[str] = set()
        queue = [class_qual]
        while queue:
            cqual = queue.pop(0)
            if cqual in seen:
                continue
            seen.add(cqual)
            if f"{cqual}.{method}" in self.nodes:
                return f"{cqual}.{method}"
            if cqual in self.classes:
                module = cqual.rsplit(".", 1)[0]
                for base in self.classes[cqual].get("bases", []):
                    queue.append(self.resolve_symbol(module, base))
        return None

    def is_property(self, qual: str) -> bool:
        """Whether ``qual`` is a ``@property``/``cached_property`` (or
        setter) — invoked by attribute access, invisible to call syntax."""
        node = self.nodes.get(qual)
        if node is None:
            return False
        for dec in node.raw.get("decorators", []):
            if dec in ("property", "cached_property",
                       "functools.cached_property"):
                return True
            if dec.endswith(".setter") or dec.endswith(".deleter"):
                return True
        return False

    def _resolve_edges(self) -> None:
        for qual, node in self.nodes.items():
            for rec in node.raw.get("calls", []):
                self._resolve_call_rec(qual, node, rec)
            for nested in node.raw.get("nested", []):
                nested_qual = f"{qual}.{nested}"
                if nested_qual in self.nodes:
                    self._add_edge(Edge(qual, nested_qual,
                                        self.nodes[nested_qual].line,
                                        "closure"))
            # ``self.kernel`` reading a @property runs the property
            # body; surface that as a call edge so coloring crosses it.
            owner = node.owner_class
            if owner is not None:
                for attr in node.raw.get("self_reads", []):
                    target = self._method_on(owner, attr)
                    if target is not None and target != qual and \
                            self.is_property(target):
                        self._add_edge(Edge(qual, target, node.line, "call"))
        for edge in list(self.edges):
            self.out.setdefault(edge.caller, []).append(edge)
            self.into.setdefault(edge.callee, []).append(edge)

    def _resolve_call_rec(self, qual: str, node: FunctionNode,
                          rec: dict) -> None:
        name = rec.get("name")
        target = None
        if name is not None:
            target = self._resolve_callable(node, name)
        elif rec.get("recv_call") is not None:
            # ``self.helper().method(...)`` — via the helper's return type.
            helper = self._resolve_callable(node, rec["recv_call"])
            if helper is not None:
                rtype = self.return_type(helper)
                if rtype is not None and rtype in self.classes:
                    target = self._method_on(rtype, rec["attr"])
        if target is not None:
            self.edges.append(Edge(qual, target, rec["line"], "call",
                                   awaited=rec.get("await", False)))
        wrapped = rec.get("target")
        if wrapped is not None:
            kind = rec["tkind"]
            if kind == "submit":
                kind = self._submit_kind(node, rec)
                if kind is None:
                    return
            resolved = self._resolve_callable(node, wrapped)
            if resolved is not None:
                self.edges.append(Edge(qual, resolved, rec["line"], kind))

    def _submit_kind(self, node: FunctionNode, rec: dict) -> str | None:
        """``executor`` for thread-pool submit receivers, else ``None``.

        A ``.submit`` on a process pool crosses a *process* boundary —
        no shared memory, so the concurrency rules must not color its
        target as thread-reachable.  Unknown receivers are skipped too:
        under-approximate, never invent.
        """
        recv = rec.get("recv")
        if recv is None:
            return None
        rtype = self._resolve_var_type(node, f"var:{recv.split('.')[0]}")
        if recv.startswith("self.") and node.owner_class is not None:
            rtype = self.attr_type(node.owner_class, recv.split(".")[1])
        if rtype == "threadpool":
            return "executor"
        return None

    def _add_edge(self, edge: Edge) -> None:
        self.edges.append(edge)

    # ---- queries -------------------------------------------------------

    def async_functions(self) -> set[str]:
        """Every ``async def`` in the project (the loop-color seeds)."""
        return {q for q, n in self.nodes.items() if n.is_async}

    def boundary_edges(self, kinds: tuple[str, ...] = ("thread", "executor")
                       ) -> list[Edge]:
        """Edges that move their callee onto another thread."""
        return [e for e in self.edges if e.kind in kinds]

    def reachable_from(self, seeds: set[str],
                       kinds: tuple[str, ...] = ("call", "closure", "partial",
                                                 "task", "callback"),
                       ) -> set[str]:
        """Transitive closure over edges of the given kinds."""
        seen: set[str] = set()
        frontier = [s for s in seeds if s in self.nodes]
        while frontier:
            qual = frontier.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for edge in self.out.get(qual, ()):
                if edge.kind in kinds and edge.callee not in seen:
                    frontier.append(edge.callee)
        return seen

    def chain_to(self, target: str, seeds: set[str],
                 kinds: tuple[str, ...] = ("call", "closure", "partial"),
                 ) -> list[str]:
        """Shortest seed -> ... -> target path, for finding messages."""
        parents: dict[str, str | None] = {s: None for s in seeds
                                          if s in self.nodes}
        frontier = list(parents)
        while frontier:
            nxt: list[str] = []
            for qual in frontier:
                if qual == target:
                    chain = [qual]
                    while parents[chain[-1]] is not None:
                        chain.append(parents[chain[-1]])
                    return list(reversed(chain))
                for edge in self.out.get(qual, ()):
                    if edge.kind in kinds and edge.callee not in parents:
                        parents[edge.callee] = qual
                        nxt.append(edge.callee)
            frontier = nxt
        return [target] if target in self.nodes else []
