"""Interval-domain abstract interpretation for numeric safety.

The second abstract interpreter layered on the dataflow machinery: where
:mod:`repro.analysis.dataflow` tracks *units*, this pass tracks *value
ranges*.  Each local is bound to an :class:`Interval` over the extended
reals (or ``None`` when unknown) and intervals propagate through
assignments, arithmetic, ``min``/``max``/``clip``, branch conditions
(``if x <= 0.0: raise`` narrows ``x`` to ``(0, inf)`` afterwards), and
cross-module calls via the harvested signature table.  Parameters seed
from the declared physical envelopes in ``constants.PHYSICAL_RANGES``:
``temperature_k`` enters as ``[200, 500]`` kelvin, ``activity`` as
``[0, 1]``, ``dt_s`` as ``(0, inf)``.

The arithmetic is *float-honest*, not real-valued: ``exp`` of an
unbounded argument is ``[0, inf]`` with both ends **closed**, because
IEEE underflow and overflow make exactly 0.0 and ``inf`` concretely
reachable.  That is what lets the pass prove that
``1.0 / (base ** e * np.exp(a))`` can divide by zero — the Arrhenius
shape every RAMP failure model computes.

Three diagnostic kinds feed the RPR30x rules:

- ``domain`` (RPR301): a division whose denominator interval provably
  contains zero, ``log`` of a possibly-nonpositive value, ``sqrt`` of a
  possibly-negative one.  Statements under ``with np.errstate(...)`` or
  inside ``np.where(...)`` arguments are exempt — that is this
  codebase's documented guarded-reciprocal idiom.
- ``nanflow`` (RPR303): in the hot modules only, a division by a value
  not provably nonzero or an ``exp`` of an unbounded argument inside a
  function with *no* guards at all (no raise/assert, no
  ``isfinite``/``nan_to_num``/``where``/``errstate``/``clip``, no
  ``validate_*`` call).
- ``loop`` (RPR310): in the hot modules only, a Python ``for`` loop
  whose iterable is an array (directly, or via ``zip``/``enumerate``/
  ``range(len(...))``/``range(x.shape[...])``).

The module also implements the fourth cached analysis layer:
:func:`harvest_interval_facts` extracts one file's boundary-crossing
numeric values (call arguments, parameter defaults, module constants)
as plain JSON — cacheable by content hash — and :func:`run_range_pass`
checks them against the declared envelopes project-wide (RPR302).
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass

from repro.analysis.dataflow import build_import_map
from repro.analysis.unitsig import SignatureTable, unit_from_name

#: Bump when the interval-facts payload shape or the interpretation
#: semantics change; cached harvests and range passes then read as
#: misses.
INTERVALS_VERSION = 1

#: Module prefixes whose code is performance- and NaN-critical.
HOT_MODULE_PREFIXES = (
    "repro.kernels",
    "repro.thermal",
    "repro.power",
    "repro.core.failure",
)

_INF = float("inf")


def is_hot_module(module: str | None) -> bool:
    """Whether a dotted module name is in the hot set."""
    if module is None:
        return False
    return any(
        module == p or module.startswith(p + ".") for p in HOT_MODULE_PREFIXES
    )


# ---------------------------------------------------------------------------
# The interval domain.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A closed/open interval over the extended reals.

    ``lo_open``/``hi_open`` mark strict bounds: ``(0, inf)`` is a
    strictly positive value.  An infinite bound with its flag *closed*
    means the infinity is attained (float overflow); open means merely
    unbounded.  ``None`` (outside this class) is the unknown value.
    """

    lo: float
    hi: float
    lo_open: bool = False
    hi_open: bool = False

    # ---- queries -------------------------------------------------------

    def contains(self, x: float, rel_tol: float = 0.0) -> bool:
        """Whether concrete ``x`` lies in this interval.

        NaN is vacuously contained (the domain makes claims about real
        results only).  ``rel_tol`` pads both bounds proportionally and
        ignores openness — for soundness tests where libm and numpy may
        round the same expression to different ULPs.
        """
        if math.isnan(x):
            return True
        lo, hi = self.lo, self.hi
        if rel_tol:
            if math.isfinite(lo):
                lo -= abs(lo) * rel_tol + rel_tol
            if math.isfinite(hi):
                hi += abs(hi) * rel_tol + rel_tol
            return lo <= x <= hi
        if x < lo or (x == lo and self.lo_open):
            return False
        if x > hi or (x == hi and self.hi_open):
            return False
        return True

    def contains_zero(self) -> bool:
        return self.contains(0.0)

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi and not self.lo_open and not self.hi_open

    # ---- constructors --------------------------------------------------

    @classmethod
    def point(cls, value: float) -> "Interval":
        return cls(value, value)

    @classmethod
    def top(cls) -> "Interval":
        return cls(-_INF, _INF, True, True)

    # ---- lattice -------------------------------------------------------

    def union(self, other: "Interval") -> "Interval":
        """Hull of both intervals (the join)."""
        if self.lo < other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo < self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open and other.lo_open
        if self.hi > other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi > self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open and other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def intersect(self, other: "Interval") -> "Interval":
        """Meet of both intervals; an empty meet yields ``other``.

        (An empty intersection means the narrowing branch is dead; the
        constraint is returned so downstream checks stay quiet.)
        """
        if self.lo > other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo > self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open or other.lo_open
        if self.hi < other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi < self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open or other.hi_open
        if lo > hi or (lo == hi and (lo_open or hi_open)):
            return other
        return Interval(lo, hi, lo_open, hi_open)

    # ---- arithmetic ----------------------------------------------------

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo, self.hi_open, self.lo_open)

    def add(self, other: "Interval") -> "Interval":
        lo = _ext_add(self.lo, other.lo, -_INF)
        hi = _ext_add(self.hi, other.hi, _INF)
        return Interval(
            lo, hi, self.lo_open or other.lo_open, self.hi_open or other.hi_open
        )

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def mul(self, other: "Interval") -> "Interval":
        corners = []
        for a, ao in ((self.lo, self.lo_open), (self.hi, self.hi_open)):
            for b, bo in ((other.lo, other.lo_open), (other.hi, other.hi_open)):
                corners.append((_ext_mul(a, b), ao or bo))
        # At equal corner values prefer the closed bound (the superset).
        lo, lo_open = min(corners, key=lambda c: (c[0], c[1]))
        hi, hi_open = max(corners, key=lambda c: (c[0], not c[1]))
        return Interval(lo, hi, lo_open, hi_open)

    def reciprocal(self) -> "Interval | None":
        """``1/x`` for an interval excluding zero; None otherwise."""
        if self.contains_zero():
            return None
        if self.lo >= 0.0:
            lo = 0.0 if self.hi == _INF else _recip(self.hi)
            if lo == _INF:
                # 1/hi overflowed past the float range.  The lower
                # bound must round DOWN to stay a superset of the true
                # reciprocals, so clamp it to the largest finite float.
                lo = math.nextafter(_INF, 0.0)
            # repro: ignore[RPR004] exact IEEE sentinel bound, not data
            hi = _INF if self.lo == 0.0 else _recip(self.lo)
            return Interval(lo, hi, self.hi_open, self.lo_open)
        if self.hi <= 0.0:
            flipped = self.neg().reciprocal()
            return flipped.neg() if flipped is not None else None
        return None

    def div(self, other: "Interval") -> "Interval | None":
        recip = other.reciprocal()
        return self.mul(recip) if recip is not None else None

    def abs(self) -> "Interval":
        if self.lo >= 0.0:
            return self
        if self.hi <= 0.0:
            return self.neg()
        mirrored = self.neg()
        hi, hi_open = max(
            ((self.hi, self.hi_open), (mirrored.hi, mirrored.hi_open)),
            key=lambda c: (c[0], not c[1]),
        )
        return Interval(0.0, hi, False, hi_open)

    def min(self, other: "Interval") -> "Interval":
        if self.lo < other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo < self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open and other.lo_open
        if self.hi < other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi < self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open and other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def max(self, other: "Interval") -> "Interval":
        return self.neg().min(other.neg()).neg()

    def clip(self, lo_bound: "Interval", hi_bound: "Interval") -> "Interval":
        return self.max(lo_bound).min(hi_bound)


def _ext_add(a: float, b: float, default: float) -> float:
    total = a + b
    return default if math.isnan(total) else total


def _ext_mul(a: float, b: float) -> float:
    # Bound arithmetic uses the 0 * inf = 0 convention: the products of
    # interior points approach 0 from one side and the other corners
    # cover the unbounded side.
    if a == 0.0 or b == 0.0:  # repro: ignore[RPR004] exact-zero bound
        return 0.0
    return a * b


def _recip(x: float) -> float:
    try:
        return 1.0 / x
    except (ZeroDivisionError, OverflowError):  # pragma: no cover - guarded
        return _INF if x >= 0 else -_INF


def exp_interval(x: Interval | None) -> Interval:
    """Float-honest ``exp``: closed at 0 and inf (under/overflow)."""
    if x is None:
        return Interval(0.0, _INF)
    lo = _safe_exp(x.lo)
    hi = _safe_exp(x.hi)
    return Interval(lo, hi, x.lo_open and lo > 0.0, x.hi_open and hi < _INF)


def _safe_exp(v: float) -> float:
    if v == _INF:
        return _INF
    if v == -_INF:
        return 0.0
    try:
        return math.exp(v)
    except OverflowError:
        return _INF


def log_interval(x: Interval | None) -> Interval | None:
    """``log`` over the positive part of ``x``; domain errors are the
    caller's diagnostic, not ours."""
    if x is None:
        return None
    lo = -_INF if x.lo <= 0.0 else math.log(x.lo)
    if x.hi <= 0.0:
        return None
    hi = _INF if x.hi == _INF else math.log(x.hi)
    return Interval(lo, hi, x.lo_open and lo > -_INF, x.hi_open and hi < _INF)


def sqrt_interval(x: Interval | None) -> Interval | None:
    if x is None:
        return None
    if x.hi < 0.0:
        return None
    lo = math.sqrt(max(x.lo, 0.0))
    hi = _INF if x.hi == _INF else math.sqrt(x.hi)
    # Unlike exp, sqrt cannot underflow a positive value to zero, so a
    # strict lower bound stays strict (clamping from negatives closes it).
    lo_open = x.lo_open if x.lo >= 0.0 else False
    return Interval(lo, hi, lo_open, x.hi_open and hi < _INF)


def pow_interval(
    base: Interval | None, exponent: Interval | None
) -> Interval | None:
    """``base ** exponent`` for nonnegative bases; None when the base
    may be negative (complex/NaN territory)."""
    if base is None:
        return None
    if base.lo < 0.0:
        return None
    if exponent is None:
        # exp(e * log b) for unconstrained e: anything in [0, inf],
        # both ends attained via float under/overflow.
        return Interval(0.0, _INF)
    corners = []
    for b, bo in ((base.lo, base.lo_open), (base.hi, base.hi_open)):
        for e, eo in ((exponent.lo, exponent.lo_open), (exponent.hi, exponent.hi_open)):
            p = _safe_pow(b, e)
            if p is None:
                return Interval(0.0, _INF)
            corners.append((p, bo or eo))
    lo, lo_open = min(corners, key=lambda c: (c[0], c[1]))
    hi, hi_open = max(corners, key=lambda c: (c[0], not c[1]))
    return Interval(lo, hi, lo_open, hi_open)


def _safe_pow(b: float, e: float) -> float | None:
    try:
        result = b**e
    except OverflowError:
        return _INF
    except ZeroDivisionError:
        return _INF
    if isinstance(result, complex):  # pragma: no cover - nonneg base
        return None
    if math.isnan(result):
        return None
    return float(result)


def range_to_interval(rng: list | None) -> Interval | None:
    """A harvested ``[lo, hi, strict_lo]`` envelope as an interval."""
    if rng is None:
        return None
    lo, hi = rng[0], rng[1]
    strict = bool(rng[2]) if len(rng) > 2 else False
    return Interval(
        -_INF if lo is None else float(lo),
        _INF if hi is None else float(hi),
        lo_open=strict or lo is None,
        hi_open=hi is None,
    )


# ---------------------------------------------------------------------------
# The interpreter.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NumericDiagnostic:
    """One numeric-safety diagnostic from the interval pass.

    Attributes:
        kind: ``domain`` (RPR301), ``nanflow`` (RPR303), or ``loop``
            (RPR310).
        line / col: 1-based anchor of the offending expression.
        message: human-readable description with the computed interval.
    """

    kind: str
    line: int
    col: int
    message: str


@dataclass(frozen=True)
class AbsVal:
    """One abstract value: interval bounds plus an is-array flag."""

    iv: Interval | None = None
    array: bool = False


UNKNOWN = AbsVal()

#: Call names whose presence marks a function as numerically guarded.
_GUARD_CALLS = frozenset(
    {"isfinite", "isnan", "nan_to_num", "where", "errstate", "clip"}
)

#: numpy attribute accesses that keep array-ness.
_ARRAY_ATTRS = frozenset({"T", "real", "imag", "flat"})

#: math/numpy ufunc-ish call tails handled algebraically.
_MIN_NAMES = frozenset({"min", "minimum", "fmin"})
_MAX_NAMES = frozenset({"max", "maximum", "fmax"})
_LOG_NAMES = frozenset({"log", "log2", "log10"})
_ABS_NAMES = frozenset({"abs", "absolute", "fabs"})


def _tail_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _call_root(func: ast.expr) -> str | None:
    """The leftmost name of a dotted call target (``np`` in ``np.exp``)."""
    base = func
    while isinstance(base, ast.Attribute):
        base = base.value
    return base.id if isinstance(base, ast.Name) else None


def _terminates(stmts: list[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Raise, ast.Return, ast.Continue, ast.Break)
    )


def _assigned_names(node: ast.stmt) -> set[str]:
    """Every name (re)bound anywhere inside ``node``."""
    names: set[str] = set()

    def collect(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                collect(elt)
        elif isinstance(target, ast.Starred):
            collect(target.value)

    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for t in sub.targets:
                collect(t)
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            collect(sub.target)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            collect(sub.target)
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    collect(item.optional_vars)
    return names


class IntervalInterpreter:
    """Runs the interval pass over one parsed file.

    Args:
        table: the project-wide signature table (with ranges/values).
        module: the file's dotted module name (or None).
    """

    def __init__(self, table: SignatureTable, module: str | None) -> None:
        self.table = table
        self.module = module
        self.hot = is_hot_module(module)
        self.diagnostics: list[NumericDiagnostic] = []
        self._imports: dict[str, str] = {}
        #: >0 inside np.errstate bodies / np.where arguments: the
        #: guarded-reciprocal idiom, exempt from domain diagnostics.
        self._suppress = 0
        #: whether the function being executed has any numeric guard.
        self._guarded = True

    # ---- entry point ---------------------------------------------------

    def run(self, tree: ast.Module) -> list[NumericDiagnostic]:
        self._imports = build_import_map(tree, self.module)
        self._guarded = True  # module bodies are not nanflow targets
        self._exec_block(tree.body, {})
        self._analyze_functions(tree, inherited=False)
        self.diagnostics.sort(key=lambda d: (d.line, d.col))
        return self.diagnostics

    def _analyze_functions(self, node: ast.AST, inherited: bool) -> None:
        """Interpret every function; closures inherit enclosing guards.

        A nested helper participates in its enclosing function's logic,
        so a guard anywhere in the outer function (``span = max(..,
        eps)`` followed by a raise, say) covers the closure too.
        """
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                guarded = inherited or self._function_guarded(child)
                self._guarded = guarded
                self._exec_block(child.body, self._seed_env(child))
                self._analyze_functions(child, guarded)
            else:
                self._analyze_functions(child, inherited)

    def _function_guarded(self, node) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Raise, ast.Assert)):
                return True
            if isinstance(sub, ast.Call):
                tail = _tail_name(sub.func)
                if tail is not None and (
                    tail in _GUARD_CALLS or tail.startswith("validate")
                ):
                    return True
        return False

    def _seed_env(self, node) -> dict[str, AbsVal]:
        env: dict[str, AbsVal] = {}
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            iv = range_to_interval(self.table.range_for_name(arg.arg))
            env[arg.arg] = AbsVal(iv, False)
        return env

    # ---- statements ----------------------------------------------------

    def _exec_block(self, stmts: list[ast.stmt], env: dict) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env)

    @staticmethod
    def _join_val(a: AbsVal, b: AbsVal) -> AbsVal:
        iv = a.iv.union(b.iv) if a.iv is not None and b.iv is not None else None
        return AbsVal(iv, a.array if a.array == b.array else False)

    @classmethod
    def _merge_into(cls, base: dict, *branches: dict) -> None:
        names = set(base)
        for branch in branches:
            names |= set(branch)
        for name in names:
            vals = [br.get(name, UNKNOWN) for br in branches]
            joined = vals[0]
            for val in vals[1:]:
                joined = cls._join_val(joined, val)
            base[name] = joined

    def _exec_stmt(self, stmt: ast.stmt, env: dict) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            if (
                len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Tuple)
                and isinstance(stmt.value, ast.Call)
                and value.array
            ):
                # Tuple unpack of an array-returning call (e.g.
                # np.broadcast_arrays): every target is an array.
                for elt in stmt.targets[0].elts:
                    self._bind(elt, AbsVal(None, True), env)
                return
            for target in stmt.targets:
                self._bind(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            value = (
                self._eval(stmt.value, env)
                if stmt.value is not None
                else UNKNOWN
            )
            self._bind(stmt.target, value, env)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(
                ast.copy_location(
                    ast.BinOp(left=stmt.target, op=stmt.op, right=stmt.value),
                    stmt,
                ),
                env,
            )
            self._bind(stmt.target, value, env)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self._eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env, else_env = dict(env), dict(env)
            self._narrow(stmt.test, then_env, True)
            self._narrow(stmt.test, else_env, False)
            self._exec_block(stmt.body, then_env)
            self._exec_block(stmt.orelse, else_env)
            body_exits = _terminates(stmt.body)
            else_exits = stmt.orelse and _terminates(stmt.orelse)
            if body_exits and not else_exits:
                # The guard idiom: `if bad: raise` — the narrowed else
                # environment IS the post-state.
                env.clear()
                env.update(else_env)
            elif else_exits and not body_exits:
                env.clear()
                env.update(then_env)
            else:
                self._merge_into(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_val = self._eval(stmt.iter, env)
            self._check_loop(stmt, env, iter_val)
            # Loop soundness: anything assigned in the body (or the
            # target) is unknown both inside (later iterations) and
            # after the loop.
            for name in _assigned_names(stmt):
                env[name] = UNKNOWN
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, body_env)
            self._merge_into(env, env.copy(), body_env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            for name in _assigned_names(stmt):
                env[name] = UNKNOWN
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, body_env)
            self._merge_into(env, env.copy(), body_env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            errstate = any(
                isinstance(item.context_expr, ast.Call)
                and _tail_name(item.context_expr.func) == "errstate"
                for item in stmt.items
            )
            for item in stmt.items:
                self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, UNKNOWN, env)
            if errstate:
                self._suppress += 1
            self._exec_block(stmt.body, env)
            if errstate:
                self._suppress -= 1
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env)
            handler_envs = []
            for handler in stmt.handlers:
                handler_env = dict(env)
                self._exec_block(handler.body, handler_env)
                handler_envs.append(handler_env)
            self._merge_into(env, env.copy(), *handler_envs)
            self._exec_block(stmt.orelse, env)
            self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
            self._narrow(stmt.test, env, True)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # FunctionDef / ClassDef bodies are analyzed separately by run().

    def _bind(self, target: ast.expr, value: AbsVal, env: dict) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, UNKNOWN, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, UNKNOWN, env)
        # attribute/subscript targets: not tracked.

    # ---- branch narrowing ----------------------------------------------

    def _narrow(self, test: ast.expr, env: dict, positive: bool) -> None:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._narrow(test.operand, env, not positive)
            return
        if isinstance(test, ast.BoolOp):
            if isinstance(test.op, ast.And) and positive:
                for value in test.values:
                    self._narrow(value, env, True)
            elif isinstance(test.op, ast.Or) and not positive:
                for value in test.values:
                    self._narrow(value, env, False)
            return
        if isinstance(test, ast.Call):
            # np.all(elementwise comparison): holds pointwise when true.
            if _tail_name(test.func) == "all" and len(test.args) == 1 and positive:
                self._narrow(test.args[0], env, True)
            return
        if not isinstance(test, ast.Compare):
            return
        if len(test.ops) > 1:
            if not positive:
                return  # negated chain is a disjunction: no information
            for i, op in enumerate(test.ops):
                left = test.left if i == 0 else test.comparators[i - 1]
                self._narrow_compare(left, op, test.comparators[i], env, True)
            return
        self._narrow_compare(
            test.left, test.ops[0], test.comparators[0], env, positive
        )

    _FLIP = {
        ast.Lt: ast.GtE,
        ast.LtE: ast.Gt,
        ast.Gt: ast.LtE,
        ast.GtE: ast.Lt,
    }

    def _narrow_compare(
        self,
        left: ast.expr,
        op: ast.cmpop,
        right: ast.expr,
        env: dict,
        positive: bool,
    ) -> None:
        if not positive:
            flipped = self._FLIP.get(type(op))
            if flipped is None:
                if isinstance(op, ast.NotEq):
                    op = ast.Eq()
                else:
                    return
            else:
                op = flipped()
        if isinstance(left, ast.Name):
            bound = self._eval(right, dict(env)).iv
            if bound is not None:
                self._apply_constraint(left.id, op, bound, env)
        if isinstance(right, ast.Name):
            mirrored = {
                ast.Lt: ast.Gt,
                ast.LtE: ast.GtE,
                ast.Gt: ast.Lt,
                ast.GtE: ast.LtE,
                ast.Eq: ast.Eq,
            }.get(type(op))
            if mirrored is not None:
                bound = self._eval(left, dict(env)).iv
                if bound is not None:
                    self._apply_constraint(right.id, mirrored(), bound, env)

    def _apply_constraint(
        self, name: str, op: ast.cmpop, bound: Interval, env: dict
    ) -> None:
        if isinstance(op, ast.Lt):
            constraint = Interval(-_INF, bound.hi, True, True)
        elif isinstance(op, ast.LtE):
            constraint = Interval(-_INF, bound.hi, True, bound.hi_open)
        elif isinstance(op, ast.Gt):
            constraint = Interval(bound.lo, _INF, True, True)
        elif isinstance(op, ast.GtE):
            constraint = Interval(bound.lo, _INF, bound.lo_open, True)
        elif isinstance(op, ast.Eq):
            constraint = bound
        else:
            return
        current = env.get(name, UNKNOWN)
        iv = constraint if current.iv is None else current.iv.intersect(constraint)
        env[name] = AbsVal(iv, current.array)

    # ---- expressions ---------------------------------------------------

    def _eval(self, node: ast.expr, env: dict) -> AbsVal:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return AbsVal(Interval.point(float(node.value)), False)
            if isinstance(node.value, (int, float)):
                return AbsVal(Interval.point(float(node.value)), False)
            return UNKNOWN
        if isinstance(node, ast.Name):
            return self._name_val(node.id, env)
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value, env)
            if node.attr.isupper():
                value = self.table.values.get(node.attr)
                if value is not None:
                    return AbsVal(Interval.point(value), False)
            iv = range_to_interval(self.table.range_for_name(node.attr))
            return AbsVal(iv, base.array and node.attr in _ARRAY_ATTRS)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            inner = self._eval(node.operand, env)
            if isinstance(node.op, ast.USub):
                return AbsVal(
                    inner.iv.neg() if inner.iv is not None else None,
                    inner.array,
                )
            if isinstance(node.op, ast.UAdd):
                return inner
            if isinstance(node.op, ast.Not):
                return AbsVal(Interval(0.0, 1.0), False)
            return UNKNOWN
        if isinstance(node, ast.Compare):
            for operand in [node.left, *node.comparators]:
                self._eval(operand, env)
            return AbsVal(Interval(0.0, 1.0), False)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            a = self._eval(node.body, env)
            b = self._eval(node.orelse, env)
            return self._join_val(a, b)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value, env)
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value, env)
            self._eval(node.slice, env)
            # Element/row of a bounded container keeps the elementwise
            # bounds; a row of a 2D+ array is still an array.
            return AbsVal(base.iv, base.array)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._eval(elt, env)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key, env)
            for value in node.values:
                self._eval(value, env)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._eval_comprehension(node.elt, node.generators, env)
            return UNKNOWN
        if isinstance(node, ast.DictComp):
            self._eval_comprehension(node.key, node.generators, env)
            self._eval(node.value, dict(env))
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value, env)
            return UNKNOWN
        return UNKNOWN

    def _eval_comprehension(self, elt, generators, env: dict) -> None:
        inner = dict(env)
        for gen in generators:
            self._eval(gen.iter, inner)
            self._bind(gen.target, UNKNOWN, inner)
            for cond in gen.ifs:
                self._eval(cond, inner)
        self._eval(elt, inner)

    def _name_val(self, name: str, env: dict) -> AbsVal:
        if name in env:
            return env[name]
        if name.isupper():
            value = self.table.values.get(name)
            if value is not None:
                return AbsVal(Interval.point(value), False)
        return AbsVal(range_to_interval(self.table.range_for_name(name)), False)

    # ---- arithmetic + domain checks ------------------------------------

    def _eval_binop(self, node: ast.BinOp, env: dict) -> AbsVal:
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        array = left.array or right.array
        if isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            self._check_division(node, right)
            iv = (
                left.iv.div(right.iv)
                if left.iv is not None and right.iv is not None
                else None
            )
            if not isinstance(node.op, ast.Div):
                iv = None  # floor/mod: bounds not tracked
            return AbsVal(iv, array)
        if left.iv is None or right.iv is None:
            if isinstance(node.op, ast.Pow):
                return AbsVal(pow_interval(left.iv, right.iv), array)
            return AbsVal(None, array)
        if isinstance(node.op, ast.Add):
            return AbsVal(left.iv.add(right.iv), array)
        if isinstance(node.op, ast.Sub):
            return AbsVal(left.iv.sub(right.iv), array)
        if isinstance(node.op, ast.Mult):
            return AbsVal(left.iv.mul(right.iv), array)
        if isinstance(node.op, ast.Pow):
            return AbsVal(pow_interval(left.iv, right.iv), array)
        return AbsVal(None, array)

    def _check_division(self, node: ast.BinOp, denom: AbsVal) -> None:
        if self._suppress:
            return
        if denom.iv is not None:
            if denom.iv.contains_zero():
                self._diag(
                    "domain",
                    node,
                    "division by a value whose interval "
                    f"{_fmt(denom.iv)} contains zero",
                )
            return
        if self.hot and not self._guarded:
            self._diag(
                "nanflow",
                node,
                "division by a value not provably nonzero in a hot "
                "function with no finite-check or guard",
            )

    def _diag(self, kind: str, node: ast.AST, message: str) -> None:
        self.diagnostics.append(
            NumericDiagnostic(
                kind=kind,
                line=node.lineno,
                col=node.col_offset + 1,
                message=message,
            )
        )

    # ---- calls ---------------------------------------------------------

    def _resolve_signature(self, func: ast.expr) -> tuple[str, dict] | None:
        """(qualname, signature) for a call target, if the table knows it."""
        if isinstance(func, ast.Name):
            target = self._imports.get(func.id)
            candidates = [target] if target else []
            if self.module is not None:
                candidates.append(f"{self.module}.{func.id}")
            for cand in candidates:
                if cand and cand in self.table.functions:
                    return cand, self.table.functions[cand]
            return None
        if isinstance(func, ast.Attribute):
            parts: list[str] = []
            base = func
            while isinstance(base, ast.Attribute):
                parts.append(base.attr)
                base = base.value
            if isinstance(base, ast.Name):
                root = self._imports.get(base.id, base.id)
                dotted = ".".join([root, *reversed(parts)])
                if dotted in self.table.functions:
                    return dotted, self.table.functions[dotted]
            qual = self.table.methods.get(func.attr)
            if qual is not None:
                return qual, self.table.functions[qual]
        return None

    def _eval_call(self, node: ast.Call, env: dict) -> AbsVal:
        tail = _tail_name(node.func)
        root = _call_root(node.func)
        root_target = self._imports.get(root, root) if root else None
        is_numpy = root_target == "numpy"
        is_math = root_target == "math"

        if tail == "where" and is_numpy and len(node.args) == 3:
            # The guarded-select idiom: the unselected branch's domain
            # errors are exactly what np.where is there to mask.
            self._eval(node.args[0], env)
            self._suppress += 1
            a = self._eval(node.args[1], env)
            b = self._eval(node.args[2], env)
            self._suppress -= 1
            return AbsVal(self._join_val(a, b).iv, True)

        args = [
            self._eval(a.value if isinstance(a, ast.Starred) else a, env)
            for a in node.args
        ]
        for kw in node.keywords:
            self._eval(kw.value, env)

        obj = (
            self._eval(node.func.value, dict(env))
            if isinstance(node.func, ast.Attribute)
            else UNKNOWN
        )
        any_array = any(a.array for a in args)

        if tail == "exp" and (is_numpy or is_math) and len(args) == 1:
            self._check_exp(node, args[0])
            return AbsVal(exp_interval(args[0].iv), args[0].array)
        if tail in ("expm1",) and (is_numpy or is_math) and len(args) == 1:
            ev = exp_interval(args[0].iv)
            return AbsVal(ev.sub(Interval.point(1.0)), args[0].array)
        if tail in _LOG_NAMES and (is_numpy or is_math) and len(args) == 1:
            self._check_log(node, args[0])
            return AbsVal(log_interval(args[0].iv), args[0].array)
        if tail == "log1p" and (is_numpy or is_math) and len(args) == 1:
            shifted = (
                args[0].iv.add(Interval.point(1.0))
                if args[0].iv is not None
                else None
            )
            self._check_log(node, AbsVal(shifted, args[0].array))
            return AbsVal(log_interval(shifted), args[0].array)
        if tail == "sqrt" and (is_numpy or is_math) and len(args) == 1:
            self._check_sqrt(node, args[0])
            return AbsVal(sqrt_interval(args[0].iv), args[0].array)
        if tail in _ABS_NAMES and len(args) == 1:
            iv = args[0].iv.abs() if args[0].iv is not None else None
            return AbsVal(iv, args[0].array)
        if tail in _MIN_NAMES and len(args) >= 2:
            return AbsVal(self._fold(args, Interval.min), any_array)
        if tail in _MAX_NAMES and len(args) >= 2:
            return AbsVal(self._fold(args, Interval.max), any_array)
        if tail in ("min", "max") and len(args) == 1:
            # min(xs)/max(xs) over one container: elementwise bounds hold.
            return AbsVal(args[0].iv, False)
        if tail == "clip":
            if len(args) == 3:  # np.clip(x, lo, hi)
                x, lo, hi = args
            elif len(args) == 2 and isinstance(node.func, ast.Attribute):
                x, (lo, hi) = obj, args  # x.clip(lo, hi)
            else:
                x = lo = hi = UNKNOWN
            if x.iv is not None and lo.iv is not None and hi.iv is not None:
                return AbsVal(x.iv.clip(lo.iv, hi.iv), x.array or any_array)
            return AbsVal(None, x.array or any_array)
        if tail in ("float", "int") and len(args) == 1:
            return AbsVal(args[0].iv, False)
        if tail in ("asarray", "array", "ascontiguousarray", "atleast_1d"):
            iv = args[0].iv if args else None
            return AbsVal(iv, True)
        if tail in ("reshape", "ravel", "flatten", "astype", "copy", "squeeze"):
            if isinstance(node.func, ast.Attribute):
                return AbsVal(obj.iv, obj.array)

        resolved = self._resolve_signature(node.func)
        if resolved is not None and resolved[1].get("return"):
            iv = range_to_interval(
                self.table.range_for_unit(resolved[1]["return"])
            )
            if iv is not None:
                return AbsVal(iv, False)

        if is_numpy:
            return AbsVal(None, True)
        if isinstance(node.func, ast.Attribute) and obj.array:
            return AbsVal(None, True)
        if tail:
            # Fall back to the callee's own name: mttf_hours() > 0.
            iv = range_to_interval(self.table.range_for_name(tail))
            if iv is not None:
                return AbsVal(iv, False)
        return UNKNOWN

    @staticmethod
    def _fold(args: list[AbsVal], op) -> Interval | None:
        iv = args[0].iv
        for other in args[1:]:
            if iv is None or other.iv is None:
                return None
            iv = op(iv, other.iv)
        return iv

    def _check_exp(self, node: ast.Call, arg: AbsVal) -> None:
        if self._suppress or not self.hot or self._guarded:
            return
        if arg.iv is None or arg.iv.hi == _INF:
            self._diag(
                "nanflow",
                node,
                "exp of an unbounded value can overflow to inf in a hot "
                "function with no finite-check or guard",
            )

    def _check_log(self, node: ast.Call, arg: AbsVal) -> None:
        if self._suppress:
            return
        if arg.iv is not None and (
            # repro: ignore[RPR004] exact-zero lattice bound, not data
            arg.iv.lo < 0.0 or (arg.iv.lo == 0.0 and not arg.iv.lo_open)
        ):
            self._diag(
                "domain",
                node,
                f"log of a value whose interval {_fmt(arg.iv)} reaches "
                "zero or below",
            )

    def _check_sqrt(self, node: ast.Call, arg: AbsVal) -> None:
        if self._suppress:
            return
        if arg.iv is not None and arg.iv.lo < 0.0:
            self._diag(
                "domain",
                node,
                f"sqrt of a value whose interval {_fmt(arg.iv)} reaches "
                "below zero",
            )

    # ---- loops ---------------------------------------------------------

    def _check_loop(self, stmt, env: dict, iter_val: AbsVal) -> None:
        if not self.hot or not isinstance(stmt, ast.For):
            return
        if self._iterates_array(stmt.iter, env, iter_val):
            self._diag(
                "loop",
                stmt,
                "Python-level loop over array rows in a hot module; "
                "vectorize with numpy operations",
            )

    def _iterates_array(
        self, node: ast.expr, env: dict, value: AbsVal
    ) -> bool:
        if value.array:
            return True
        if not isinstance(node, ast.Call):
            return False
        tail = _tail_name(node.func)
        if tail == "zip":
            return any(
                self._eval(a, dict(env)).array
                for a in node.args
                if not isinstance(a, ast.Starred)
            )
        if tail == "enumerate" and node.args:
            inner = node.args[0]
            return self._iterates_array(
                inner, env, self._eval(inner, dict(env))
            )
        if tail == "range" and node.args:
            first = node.args[0] if len(node.args) == 1 else node.args[1]
            if isinstance(first, ast.Call) and _tail_name(first.func) == "len":
                if first.args:
                    return self._eval(first.args[0], dict(env)).array
            # range(x.shape[0]) — iterating an array dimension.
            probe = first
            while isinstance(probe, ast.Subscript):
                probe = probe.value
            if isinstance(probe, ast.Attribute) and probe.attr == "shape":
                return self._eval(probe.value, dict(env)).array
        return False


def _fmt(iv: Interval) -> str:
    lo = "(" if iv.lo_open else "["
    hi = ")" if iv.hi_open else "]"
    return f"{lo}{iv.lo:g}, {iv.hi:g}{hi}"


def analyze_intervals(
    tree: ast.Module, table: SignatureTable, module: str | None
) -> list[NumericDiagnostic]:
    """Run the interval pass over one parsed file."""
    return IntervalInterpreter(table, module).run(tree)


# ---------------------------------------------------------------------------
# Interval facts: the fourth cached layer (feeds RPR302).
# ---------------------------------------------------------------------------


def _fact_value(node: ast.expr) -> dict | None:
    """A JSON-able locally-known value: literal or constant reference."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _fact_value(node.operand)
        if inner is not None and "value" in inner:
            return {"value": -inner["value"]}
        return None
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return {"value": float(node.value)}
    if isinstance(node, ast.Name) and node.id.isupper():
        return {"ref": node.id}
    if isinstance(node, ast.Attribute) and node.attr.isupper():
        return {"ref": node.attr}
    return None


def harvest_interval_facts(
    tree: ast.Module, module: str | None, lines: list[str]
) -> dict:
    """One file's boundary-crossing numeric values, JSON-ready.

    Pure function of the file's content (plus its path-derived module
    name), which is what lets the incremental driver cache it by
    content hash.  Resolution against the signature/range tables
    happens later, in :func:`run_range_pass`.
    """
    imports = build_import_map(tree, module)

    def snippet(line: int) -> str:
        return lines[line - 1].strip() if 1 <= line <= len(lines) else ""

    consts: list[dict] = []
    defaults: list[dict] = []
    calls: list[dict] = []

    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if not (isinstance(target, ast.Name) and target.id.isupper()):
                    continue
                if stmt.value is None:
                    continue
                fact = _fact_value(stmt.value)
                if fact is not None and "value" in fact:
                    consts.append(
                        {
                            "name": target.id,
                            "value": fact["value"],
                            "line": stmt.lineno,
                            "col": stmt.col_offset + 1,
                            "snippet": snippet(stmt.lineno),
                        }
                    )

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            a = node.args
            positional = [*a.posonlyargs, *a.args]
            for arg, default in zip(
                positional[len(positional) - len(a.defaults) :], a.defaults
            ):
                fact = _fact_value(default)
                if fact is not None:
                    defaults.append(
                        {
                            "func": node.name,
                            "param": arg.arg,
                            **fact,
                            "line": default.lineno,
                            "col": default.col_offset + 1,
                            "snippet": snippet(default.lineno),
                        }
                    )
            for arg, default in zip(a.kwonlyargs, a.kw_defaults):
                if default is None:
                    continue
                fact = _fact_value(default)
                if fact is not None:
                    defaults.append(
                        {
                            "func": node.name,
                            "param": arg.arg,
                            **fact,
                            "line": default.lineno,
                            "col": default.col_offset + 1,
                            "snippet": snippet(default.lineno),
                        }
                    )
        elif isinstance(node, ast.Call):
            targets: list[str] = []
            method: str | None = None
            func = node.func
            if isinstance(func, ast.Name):
                imported = imports.get(func.id)
                if imported:
                    targets.append(imported)
                if module:
                    targets.append(f"{module}.{func.id}")
            elif isinstance(func, ast.Attribute):
                parts: list[str] = []
                base = func
                while isinstance(base, ast.Attribute):
                    parts.append(base.attr)
                    base = base.value
                if isinstance(base, ast.Name):
                    root = imports.get(base.id, base.id)
                    targets.append(".".join([root, *reversed(parts)]))
                method = func.attr
            args: list[dict] = []
            for i, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred):
                    continue
                fact = _fact_value(arg)
                if fact is not None:
                    args.append(
                        {
                            "pos": i,
                            **fact,
                            "line": arg.lineno,
                            "col": arg.col_offset + 1,
                            "snippet": snippet(arg.lineno),
                        }
                    )
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                fact = _fact_value(kw.value)
                if fact is not None:
                    args.append(
                        {
                            "kw": kw.arg,
                            **fact,
                            "line": kw.value.lineno,
                            "col": kw.value.col_offset + 1,
                            "snippet": snippet(kw.value.lineno),
                        }
                    )
            if args and (targets or method):
                calls.append(
                    {"targets": targets, "method": method, "args": args}
                )

    return {"consts": consts, "defaults": defaults, "calls": calls}


def _outside(value: float, rng: list) -> bool:
    lo, hi = rng[0], rng[1]
    strict = bool(rng[2]) if len(rng) > 2 else False
    if lo is not None and (value < lo or (strict and value == lo)):
        return True
    if hi is not None and value > hi:
        return True
    return False


def _fmt_range(rng: list) -> str:
    lo = "-inf" if rng[0] is None else f"{rng[0]:g}"
    hi = "inf" if rng[1] is None else f"{rng[1]:g}"
    strict = len(rng) > 2 and rng[2]
    return f"{'(' if strict else '['}{lo}, {hi}]"


def run_range_pass(
    facts_by_path: dict[str, dict], table: SignatureTable
) -> list[dict]:
    """Check harvested interval facts against the declared envelopes.

    Returns RPR302 finding payloads (plain dicts with ``path``/``line``
    /``col``/``message``/``snippet``/``context``), ready for either
    driver to turn into findings and filter through suppressions.
    """
    out: list[dict] = []

    def resolve_value(fact: dict) -> float | None:
        if "value" in fact:
            return fact["value"]
        return table.values.get(fact.get("ref", ""))

    def emit(
        fact: dict, path: str, rng: list, value: float, context: str, what: str
    ) -> None:
        spelled = (
            f"{value:g}"
            if "value" in fact
            else f"{fact['ref']} = {value:g}"
        )
        out.append(
            {
                "path": path,
                "line": fact["line"],
                "col": fact["col"],
                "snippet": fact.get("snippet", ""),
                "context": context,
                "message": (
                    f"{what} {spelled} is outside the declared physical "
                    f"range {_fmt_range(rng)}"
                ),
            }
        )

    for path, facts in sorted(facts_by_path.items()):
        for const in facts.get("consts", []):
            rng = table.range_for_name(const["name"])
            if rng is not None and _outside(const["value"], rng):
                emit(
                    const,
                    path,
                    rng,
                    const["value"],
                    f"const:{const['name']}",
                    f"constant {const['name']} =",
                )
        for dflt in facts.get("defaults", []):
            rng = table.range_for_name(dflt["param"])
            value = resolve_value(dflt)
            if rng is not None and value is not None and _outside(value, rng):
                emit(
                    dflt,
                    path,
                    rng,
                    value,
                    f"default:{dflt['func']}:{dflt['param']}",
                    f"default for {dflt['func']}({dflt['param']}=...)",
                )
        for call in facts.get("calls", []):
            qual: str | None = None
            sig: dict | None = None
            for target in call.get("targets", []):
                if target in table.functions:
                    qual, sig = target, table.functions[target]
                    break
            if sig is None and call.get("method"):
                mqual = table.methods.get(call["method"])
                if mqual is not None:
                    qual, sig = mqual, table.functions[mqual]
            if sig is None:
                continue
            params: list[list] = sig.get("params", [])
            by_name = {entry[0]: entry[1] for entry in params}
            for arg in call["args"]:
                if "pos" in arg:
                    if arg["pos"] >= len(params):
                        continue
                    param, unit = params[arg["pos"]][0], params[arg["pos"]][1]
                else:
                    param = arg["kw"]
                    if param not in by_name:
                        continue
                    unit = by_name[param]
                rng = (
                    table.range_for_unit(unit)
                    if unit is not None
                    else table.range_for_name(param)
                )
                value = resolve_value(arg)
                if rng is None or value is None or not _outside(value, rng):
                    continue
                emit(
                    arg,
                    path,
                    rng,
                    value,
                    f"call:{qual}:{param}",
                    f"argument {param!r} of {qual}() =",
                )
    out.sort(key=lambda f: (f["path"], f["line"], f["col"]))
    return out
