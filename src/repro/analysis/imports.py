"""Static import-graph reachability for scope-limited rules.

The determinism rule only cares about code that can influence
``repro.engine.jobs`` cache-key construction — anything a job spec
imports (eagerly *or* lazily inside a function body) can leak
nondeterminism into a content hash or a worker-side recomputation.
This module builds that reachable set from the files being analyzed,
without importing any of them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath


def module_name_for(rel_path: str) -> str | None:
    """Dotted module name for a repo-relative ``.py`` path, if importable.

    Strips a leading ``src/`` component (the layout this repo uses) and
    maps ``pkg/__init__.py`` to ``pkg``.  Returns ``None`` for paths
    that are not Python modules.
    """
    parts = list(PurePosixPath(rel_path).parts)
    if not parts or not parts[-1].endswith(".py"):
        return None
    if parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return None
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    if not all(p.isidentifier() for p in parts):
        return None
    return ".".join(parts)


def imported_modules(tree: ast.AST, module: str) -> set[str]:
    """Every module ``module``'s source imports, eager or lazy.

    Relative imports resolve against ``module``'s package.  ``from m
    import x`` contributes both ``m`` and ``m.x`` — ``x`` may be a
    submodule, and claiming both costs nothing because unknown names
    simply never match an analyzed file.
    """
    package_parts = module.split(".")[:-1]
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(anchor + ([node.module] if node.module else []))
            if base:
                out.add(base)
                for alias in node.names:
                    out.add(f"{base}.{alias.name}")
    return out


@dataclass
class ImportGraph:
    """Module-level import graph over the analyzed files."""

    edges: dict[str, set[str]] = field(default_factory=dict)

    def add_module(self, module: str, tree: ast.AST) -> None:
        self.edges[module] = imported_modules(tree, module)

    def reachable_from(self, roots: tuple[str, ...]) -> set[str]:
        """Transitive closure over modules present in the graph.

        Importing a submodule also imports its ancestor packages, so
        each known module's ancestors join the frontier too.
        """
        seen: set[str] = set()
        frontier = [r for r in roots if r in self.edges]
        while frontier:
            module = frontier.pop()
            if module in seen:
                continue
            seen.add(module)
            for target in self.edges.get(module, ()):
                candidates = [target]
                parts = target.split(".")
                candidates.extend(
                    ".".join(parts[:i]) for i in range(1, len(parts))
                )
                for cand in candidates:
                    if cand in self.edges and cand not in seen:
                        frontier.append(cand)
        return seen


def build_import_graph(files: dict[str, ast.AST]) -> ImportGraph:
    """Graph over ``{rel_path: tree}`` for every path that is a module."""
    graph = ImportGraph()
    for rel_path, tree in files.items():
        module = module_name_for(rel_path)
        if module is not None:
            graph.add_module(module, tree)
    return graph


def rel_posix(path: Path, root: Path) -> str:
    """``path`` relative to ``root`` with POSIX separators (best effort)."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return rel.as_posix()
