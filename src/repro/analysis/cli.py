"""The ``python -m repro analyze`` subcommand.

Exit codes follow the usual analyzer contract:

- ``0`` — clean: no unbaselined findings, no stale baseline entries;
- ``1`` — findings (or a stale baseline that must ratchet down);
- ``2`` — usage error (unknown rule id, unreadable baseline, bad args).

Defaults (paths and baseline location) can be configured in
``pyproject.toml`` under ``[tool.repro.analysis]``; command-line
arguments win over configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline
from repro.analysis.emitters import to_json, to_sarif, to_text
from repro.analysis.engine import Analyzer
from repro.analysis.incremental import DEFAULT_CACHE_DIR
from repro.analysis.registry import (
    AnalysisError,
    all_rules,
    expand_rule_patterns,
    get_rule,
)

_DEFAULT_PATHS = ["src", "tests"]


def load_config(root: Path) -> dict:
    """``[tool.repro.analysis]`` from ``pyproject.toml``, if readable."""
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return {}
    try:
        import tomllib
    except ImportError:  # pragma: no cover - python < 3.11
        return {}
    try:
        payload = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError):
        return {}
    section = payload.get("tool", {}).get("repro", {}).get("analysis", {})
    return section if isinstance(section, dict) else {}


def add_analyze_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``analyze`` subcommand on the repro CLI."""
    p = sub.add_parser(
        "analyze",
        help="run the physics-aware static-analysis suite",
        description=(
            "AST-based checks for the repo's silent invariants: unit "
            "suffixes, cache-key determinism, pool safety, float "
            "equality, paper-constant duplication, broad excepts."
        ),
    )
    p.add_argument("paths", nargs="*", default=None,
                   help="files/directories to analyze (default: src tests, "
                        "or [tool.repro.analysis].paths)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text", help="output format (default text)")
    p.add_argument("--output", default=None,
                   help="write the report to this file instead of stdout")
    p.add_argument("--baseline", default=None,
                   help=f"baseline file (default {DEFAULT_BASELINE} when it "
                        "exists)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline to exactly the current "
                        "findings (the ratchet click)")
    p.add_argument("--select", default=None,
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--ignore", default=None,
                   help="comma-separated rule ids to skip")
    p.add_argument("--rules", default=None, metavar="PATTERNS",
                   help="comma-separated rule-id globs to run (e.g. "
                        "RPR2xx, RPR10?, RPR*); x/X match any digit. "
                        "Combines with --select; exit codes unchanged")
    p.add_argument("--list-rules", action="store_true",
                   help="print the registered rules and exit")
    p.add_argument("--explain", default=None, metavar="RULE",
                   help="print one rule's rationale, example, and "
                        "suppression syntax, then exit")
    p.add_argument("--verbose", action="store_true",
                   help="also show baselined (accepted) findings")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for cold analysis (default: all "
                        "cores; 1 = serial)")
    p.add_argument("--cache-dir", default=None,
                   help="incremental result-cache directory (default "
                        f"{DEFAULT_CACHE_DIR}, or [tool.repro.analysis]"
                        ".cache_dir)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the incremental cache and analyze "
                        "everything in-process")
    p.add_argument("--stats", action="store_true",
                   help="print cache and timing statistics to stderr")
    p.add_argument("--stats-json", default=None, metavar="FILE",
                   help="also write driver statistics (cache layers, "
                        "timings, files/s) to FILE as JSON")
    p.add_argument("--changed", action="store_true",
                   help="report findings only for files changed vs git "
                        "HEAD (plus untracked); the whole tree is still "
                        "analyzed so project-wide passes stay correct, "
                        "but unchanged-file findings and stale-baseline "
                        "gating are skipped (pre-commit mode)")
    p.set_defaults(func=run_analyze)


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [token.strip() for token in raw.split(",") if token.strip()]


def changed_rel_paths(root: Path) -> set[str] | None:
    """Repo-relative ``.py`` paths changed vs HEAD, plus untracked.

    Returns None when git is unavailable or the root is not a work
    tree (callers fall back to a full run with a warning).
    """
    import subprocess

    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD", "--"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return {
        line.strip()
        for line in (diff.stdout + untracked.stdout).splitlines()
        if line.strip().endswith(".py")
    }


def run_analyze(args: argparse.Namespace) -> int:
    """Execute the analyze subcommand; returns the process exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name:16s} [{rule.severity.value}] "
                  f"{rule.description}")
        return 0
    if args.explain:
        try:
            rule = get_rule(args.explain.strip())
        except AnalysisError as exc:
            print(f"analyze: {exc}", file=sys.stderr)
            return 2
        print(rule.explain())
        return 0

    root = Path.cwd()
    config = load_config(root)
    paths = args.paths or config.get("paths") or _DEFAULT_PATHS
    paths = [Path(p) for p in paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"analyze: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2

    cache_dir: Path | None = None
    if not args.no_cache:
        cache_dir = root / (
            args.cache_dir or config.get("cache_dir") or DEFAULT_CACHE_DIR
        )

    report_only: set[str] | None = None
    if args.changed:
        report_only = changed_rel_paths(root)
        if report_only is None:
            print(
                "analyze: --changed needs a git work tree; running on "
                "everything",
                file=sys.stderr,
            )
        elif not report_only:
            print("analyze: no changed python files", file=sys.stderr)
            return 0

    started = time.monotonic()
    try:
        select = _split_ids(args.select)
        patterns = _split_ids(args.rules)
        if patterns is not None:
            # Globs expand to exact ids and union with --select, so
            # `--rules RPR2xx` runs the concurrency family standalone.
            select = sorted(set(select or []) | set(
                expand_rule_patterns(patterns)
            ))
        analyzer = Analyzer(
            root=root,
            select=select,
            ignore=_split_ids(args.ignore),
            cache_dir=cache_dir,
            workers=args.jobs,
            report_only=report_only,
        )
        result = analyzer.analyze_paths(paths)
    except AnalysisError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    duration_s = time.monotonic() - started

    baseline_path = Path(
        args.baseline or config.get("baseline") or DEFAULT_BASELINE
    )
    baseline: Baseline | None = None
    if args.update_baseline:
        Baseline.from_findings(result.findings).write(baseline_path)
        print(
            f"baseline updated: {len(result.findings)} finding(s) recorded "
            f"in {baseline_path}",
            file=sys.stderr,
        )
        result.baselined = result.findings
        result.findings = []
        result.stale_baseline = []
    elif not args.no_baseline and (args.baseline or baseline_path.is_file()):
        try:
            baseline = Baseline.load(baseline_path)
        except AnalysisError as exc:
            print(f"analyze: {exc}", file=sys.stderr)
            return 2
        baseline.partition(result)
        if args.changed:
            # A diff-scoped run sees only a slice of the findings, so
            # unmatched baseline entries prove nothing about staleness.
            result.stale_baseline = []

    if args.format == "json":
        report = json.dumps(to_json(result), indent=2)
    elif args.format == "sarif":
        report = json.dumps(to_sarif(result, analyzer.rules), indent=2)
    else:
        report = to_text(result, verbose=args.verbose)
        if baseline is not None and result.stale_baseline:
            stale = baseline.describe_stale(result.stale_baseline)
            report += "\n" + "\n".join(f"  stale: {line}" for line in stale)

    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(report)

    stats = dict(result.stats)
    files = stats.get("files", result.files_scanned) or 0
    if args.stats:
        line = (
            f"analyze: {stats.get('driver', '?')} driver, "
            f"{files} file(s), "
            f"{stats.get('analyzed', '?')} analyzed, "
            f"{stats.get('cached', 0)} cached, "
            f"{duration_s:.2f}s"
        )
        if "harvest_hits" in stats:
            line += (
                f" (harvest: {stats['harvest_hits']} hit(s), "
                f"{stats['harvest_misses']} miss(es))"
            )
        if duration_s > 0:
            line += f", {files / duration_s:.1f} files/s"
        if stats.get("callgraph_rules"):
            line += (
                f" [callgraph: {stats.get('callgraph_pass', '?')} in "
                f"{stats.get('callgraph_pass_s', 0.0):.3f}s]"
            )
        if stats.get("range_rules"):
            line += (
                f" [range: {stats.get('range_pass', '?')} in "
                f"{stats.get('range_pass_s', 0.0):.3f}s]"
            )
        print(line, file=sys.stderr)

    if args.stats_json:
        stats["duration_s"] = round(duration_s, 4)
        stats["files_per_s"] = (
            round(files / duration_s, 2) if duration_s > 0 else None
        )
        Path(args.stats_json).write_text(
            json.dumps(stats, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    return 0 if result.clean else 1
