"""Rule base class and registry.

Rules self-register at import time via the :func:`register` decorator;
:func:`all_rules` imports the bundled rule modules on first use so the
registry is populated without the caller having to know the module
names.
"""

from __future__ import annotations

import abc
import fnmatch
import re
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding, Severity
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.concurrency import ProjectSnapshot
    from repro.analysis.engine import FileContext

_RULE_ID = re.compile(r"^RPR\d{3}$")


class AnalysisError(ReproError):
    """Raised for analyzer misuse (unknown rule ids, bad configuration)."""


class Rule(abc.ABC):
    """One static-analysis rule.

    Class attributes:
        id: ``RPRnnn`` identifier used in findings, suppressions, and
            SARIF rule metadata.
        name: short kebab-case name (``unit-suffix``).
        severity: default severity for this rule's findings.
        description: one-line rationale shown in ``--list-rules`` and
            emitted as SARIF rule metadata.
        rationale: longer prose shown by ``--explain``: why the rule
            exists and what bug class it prevents.
        example: a short violating snippet (with a comment pointing at
            the problem) shown by ``--explain``.
    """

    id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    rationale: str = ""
    example: str = ""
    #: ``"file"`` rules see one :class:`FileContext` at a time;
    #: ``"project"`` rules (see :class:`ProjectRule`) see the merged
    #: call-graph snapshot and run once per analysis; ``"intervals"``
    #: rules are descriptors for the interval range pass (their findings
    #: come from :func:`repro.analysis.intervals.run_range_pass`, run by
    #: the engine, not from ``check``).
    scope: str = "file"

    @abc.abstractmethod
    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for one parsed file."""

    def applies_to(self, ctx: "FileContext") -> bool:
        """Whether this rule runs on ``ctx`` at all (path scoping)."""
        return True

    def finding(
        self,
        ctx: "FileContext",
        line: int,
        col: int,
        message: str,
        severity: Severity | None = None,
        context: str = "",
    ) -> Finding:
        """Build a finding anchored at ``line``/``col`` of ``ctx``."""
        return Finding(
            rule=self.id,
            path=ctx.rel_path,
            line=line,
            col=col,
            message=message,
            severity=severity or self.severity,
            snippet=ctx.line_text(line).strip(),
            context=context,
        )

    def explain(self) -> str:
        """Human-readable rule documentation for ``--explain``."""
        parts = [f"{self.id} ({self.name}) [{self.severity.value}]"]
        parts.append(f"  {self.description}")
        if self.rationale:
            parts.append("")
            for line in self.rationale.strip().splitlines():
                parts.append(f"  {line}".rstrip())
        if self.example:
            parts.append("")
            parts.append("  example:")
            for line in self.example.strip("\n").splitlines():
                parts.append(f"    {line}".rstrip())
        parts.append("")
        parts.append(
            f"  suppress with: # repro: ignore[{self.id}] <justification>"
        )
        parts.append(
            "  (on the offending line, or on its own line directly above)"
        )
        return "\n".join(parts)


class ProjectRule(Rule):
    """A rule that reasons over the whole project at once.

    Project rules run once per analysis against the merged call-graph
    snapshot (interprocedural facts: coloring, lock domains, escape
    classes) instead of once per file.  They still emit ordinary
    :class:`Finding` objects anchored in specific files, so emitters,
    suppressions, and the baseline ratchet treat them identically.
    """

    scope = "project"

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Project rules contribute nothing to the per-file pass."""
        return iter(())

    @abc.abstractmethod
    def check_project(self, snapshot: "ProjectSnapshot") -> Iterator[Finding]:
        """Yield findings for one project snapshot."""

    def finding_at(
        self,
        snapshot: "ProjectSnapshot",
        rel_path: str,
        line: int,
        col: int,
        message: str,
        severity: Severity | None = None,
        context: str = "",
    ) -> Finding:
        """Build a finding anchored at ``rel_path:line`` of the snapshot."""
        return Finding(
            rule=self.id,
            path=rel_path,
            line=line,
            col=col,
            message=message,
            severity=severity or self.severity,
            snippet=snapshot.snippet(rel_path, line),
            context=context,
        )


_REGISTRY: dict[str, Rule] = {}
_BUNDLED_LOADED = False


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule."""
    rule = cls()
    if not _RULE_ID.match(rule.id):
        raise AnalysisError(f"rule id {rule.id!r} does not match RPRnnn")
    if rule.id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def _load_bundled() -> None:
    global _BUNDLED_LOADED
    if _BUNDLED_LOADED:
        return
    _BUNDLED_LOADED = True
    import repro.analysis.rules  # noqa: F401  (registers on import)


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by id."""
    _load_bundled()
    return tuple(_REGISTRY[rid] for rid in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id.

    Raises:
        AnalysisError: if the id is not registered.
    """
    _load_bundled()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise AnalysisError(f"unknown rule id {rule_id!r}") from None


def select_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> tuple[Rule, ...]:
    """The active rule set after ``--select`` / ``--ignore`` filtering.

    Raises:
        AnalysisError: if any named rule id is unknown.
    """
    rules = all_rules()
    if select is not None:
        wanted = {get_rule(rid).id for rid in select}
        rules = tuple(r for r in rules if r.id in wanted)
    if ignore is not None:
        unwanted = {get_rule(rid).id for rid in ignore}
        rules = tuple(r for r in rules if r.id not in unwanted)
    return rules


def expand_rule_patterns(patterns: Iterable[str]) -> list[str]:
    """Expand ``--rules`` globs (``RPR2xx``, ``RPR20?``, ``RPR*``) to ids.

    ``x``/``X`` are wildcard digits (the conventional family spelling);
    since rule ids contain no letter beyond the ``RPR`` prefix, both are
    translated to ``?`` before fnmatch.  Exact ids pass through.

    Raises:
        AnalysisError: if a pattern matches no registered rule.
    """
    ids = [rule.id for rule in all_rules()]
    out: set[str] = set()
    for pattern in patterns:
        translated = pattern.replace("x", "?").replace("X", "?")
        matched = [rid for rid in ids if fnmatch.fnmatchcase(rid, translated)]
        if not matched:
            raise AnalysisError(
                f"rule pattern {pattern!r} matches no registered rule"
            )
        out.update(matched)
    return sorted(out)
