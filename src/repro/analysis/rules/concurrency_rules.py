"""RPR201–205 — interprocedural concurrency-safety rules.

These are the first *project-scoped* rules: instead of one file's AST
they walk the merged call graph and the concurrency model derived from
it (:mod:`repro.analysis.concurrency`), because none of the bugs they
hunt is visible at a single call site:

- RPR201: a write is only a race once the writing function is reachable
  from a thread boundary two calls away;
- RPR203: the object crossing ``run_in_executor`` is unsafe because of
  mutations in a *different* file;
- RPR205: whether a resource leaks depends on every exit of the
  call-graph region that owns it.

All five anchor their findings at concrete source lines, so inline
``# repro: ignore[RPR20x]`` suppressions and the baseline ratchet work
unchanged.  Test files never enter the snapshot: fixtures violate
concurrency discipline on purpose.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.concurrency import ProjectSnapshot
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import ProjectRule, register

#: Thread constructor spellings for the unjoined-thread check.
_THREAD_CTORS = {"Thread", "threading.Thread"}


def _short(qual: str) -> str:
    """``repro.serve.service.DecisionService._flush`` -> ``DecisionService._flush``."""
    parts = qual.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else qual


@register
class SharedStateWithoutLock(ProjectRule):
    id = "RPR201"
    name = "shared-write-unlocked"
    severity = Severity.ERROR
    description = (
        "shared mutable attribute written from thread-reachable code "
        "without a consistent lock domain"
    )
    rationale = """\
A function submitted to the worker pool (run_in_executor, pool.submit,
Thread(target=...)) runs concurrently with the event loop and with
other workers.  Any attribute it writes — directly or through callees —
must be protected by one lock held at every write site; a site outside
that common domain is a data race, even when each individual file looks
single-threaded.  Attributes confined to a thread (stored behind
threading.local, or owned by a class only ever built per-thread) are
exempt, as are plain flag assignments (a torn bool is not this bug
class)."""
    example = """\
class Platform:
    def evaluate(self, grid):
        if self._kernel is None:
            self._kernel = BatchKernel(self.spec)   # RPR201: worker
            # threads race the lazy build; hold a lock or build eagerly
        return self._kernel.run(grid)"""

    def check_project(self, snapshot: ProjectSnapshot) -> Iterator[Finding]:
        model = snapshot.model
        for (owner, attr), sites in sorted(model.writes.items()):
            if owner and owner in model.per_thread_classes:
                continue
            if owner and owner not in model.shared_classes:
                # Instances never visible to more than one thread at a
                # time (e.g. built fresh per call) cannot race.
                continue
            if owner and model.attr_exempt(owner, attr):
                continue
            interesting = model.interesting_sites(sites)
            if not interesting:
                continue
            threaded = [
                s for s in interesting if s.func in model.thread_colored
            ]
            if not threaded:
                continue
            if model.common_lock_domain(interesting):
                continue
            # Anchor at the first thread-reachable site whose own lock
            # set is empty; if every site holds *some* lock the domains
            # merely disagree — anchor at the first threaded site.
            unlocked = [s for s in threaded if not s.locks]
            site = (unlocked or threaded)[0]
            what = (
                f"module global '{attr.split('.')[-1]}'"
                if not owner
                else f"attribute '{attr}' of {owner.rsplit('.', 1)[-1]}"
            )
            chain = model.chain_for(site.func)
            others = len(interesting) - 1
            detail = (
                f"; {others} other write site(s) share no common lock"
                if others
                else ""
            )
            yield self.finding_at(
                snapshot,
                site.rel_path,
                site.line,
                site.col,
                f"{what} is written without a consistent lock domain on a "
                f"thread-reachable path ({chain}){detail}",
                context=f"write:{owner or '<module>'}:{attr}",
            )


@register
class LockHeldAcrossAwait(ProjectRule):
    id = "RPR202"
    name = "lock-across-await"
    severity = Severity.ERROR
    description = "threading lock held across an await point"
    rationale = """\
`with self._lock:` around an `await` keeps a *threading* lock held
while the coroutine is suspended — every worker thread that touches the
same lock then blocks for the full await latency (convoying), and a
worker that itself awaits the loop completes the deadlock cycle.  Use
`asyncio.Lock` with `async with` for loop-side exclusion, or release
the lock before awaiting."""
    example = """\
async def flush(self):
    with self._lock:              # RPR202: threading lock ...
        await self._drain()       # ... held across this await"""

    def check_project(self, snapshot: ProjectSnapshot) -> Iterator[Finding]:
        graph = snapshot.graph
        for qual, node in sorted(graph.nodes.items()):
            if not node.is_async:
                continue
            for wrec in node.raw.get("withs", []):
                if wrec.get("async") or not wrec.get("awaits"):
                    continue
                if not self._is_threading_lock(snapshot, node, wrec["expr"]):
                    continue
                yield self.finding_at(
                    snapshot,
                    node.rel_path,
                    wrec["line"],
                    1,
                    f"{_short(qual)} holds threading lock "
                    f"'{wrec['expr']}' across an await (first await at "
                    f"line {wrec['awaits'][0]}); use asyncio.Lock or "
                    f"release before awaiting",
                    context=f"lock-await:{qual}:{wrec['expr']}",
                )

    @staticmethod
    def _is_threading_lock(
        snapshot: ProjectSnapshot, node, expr: str
    ) -> bool:
        graph = snapshot.graph
        parts = expr.split(".")
        if parts[0] == "self" and node.owner_class is not None:
            return graph.attr_type(node.owner_class, parts[1]) == "lock"
        vtype = graph._resolve_var_type(node, f"var:{parts[0]}")
        if vtype == "lock":
            return True
        resolved = graph.resolve_symbol(node.module, expr)
        if resolved in ("threading.Lock", "threading.RLock"):
            return True
        # Name heuristic for module-level locks the types can't see.
        return parts[-1].lower().endswith("lock") and vtype != "asynclock"


@register
class UnsafeObjectCrossesThread(ProjectRule):
    id = "RPR203"
    name = "unsafe-cross-thread"
    severity = Severity.ERROR
    description = (
        "non-thread-safe object crosses a thread boundary "
        "(run_in_executor / Thread / pool submission)"
    )
    rationale = """\
Submitting a bound method to the worker pool ships its whole instance
across the thread boundary.  If that class mutates plain dict/list/set
attributes outside __init__ with no lock held — and owns no lock at
all — every such container is corruptible the moment two submissions
overlap.  Classes with any lock attribute are assumed to have a
discipline (RPR201 checks the discipline itself); thread-confined
(threading.local) instances are exempt."""
    example = """\
log = EventLog()          # mutates self.events with no lock
loop.run_in_executor(pool, log.emit, "tick")   # RPR203: EventLog
# is not thread-safe; give it a lock or keep it on the loop"""

    def check_project(self, snapshot: ProjectSnapshot) -> Iterator[Finding]:
        model = snapshot.model
        seen: set[tuple[str, int, str]] = set()
        for edge in snapshot.graph.boundary_edges(("thread", "executor")):
            callee = snapshot.graph.nodes.get(edge.callee)
            caller = snapshot.graph.nodes.get(edge.caller)
            if callee is None or caller is None:
                continue
            owner = callee.owner_class
            if owner is None or owner in model.per_thread_classes:
                continue
            unsafe_attr = model.class_is_thread_unsafe(owner)
            if unsafe_attr is None:
                continue
            key = (caller.rel_path, edge.line, owner)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding_at(
                snapshot,
                caller.rel_path,
                edge.line,
                1,
                f"{owner.rsplit('.', 1)[-1]}.{edge.callee.rsplit('.', 1)[-1]} "
                f"crosses a thread boundary but the class mutates "
                f"'{unsafe_attr}' without any lock; protect it or keep the "
                f"instance on one thread",
                context=f"cross-thread:{edge.caller}:{edge.callee}",
            )


@register
class FireAndForget(ProjectRule):
    id = "RPR204"
    name = "fire-and-forget"
    severity = Severity.ERROR
    description = (
        "task result dropped (no reference, await, or done-callback) "
        "or thread started without join/ownership"
    )
    rationale = """\
`create_task` keeps only a weak reference to its task: a dropped result
can be garbage-collected mid-flight, and its exceptions vanish instead
of failing the request.  Hold the task (and add a done-callback or
await it), as MicroBatcher does with its flush-task set.  Similarly a
`Thread(...).start()` whose instance is never stored or joined cannot
be waited for at shutdown — the process exits under it."""
    example = """\
async def shutdown(self):
    asyncio.create_task(self._drain())   # RPR204: dropped — GC may
    # cancel it mid-drain and its exceptions are never observed"""

    def check_project(self, snapshot: ProjectSnapshot) -> Iterator[Finding]:
        graph = snapshot.graph
        for qual, node in sorted(graph.nodes.items()):
            raw = node.raw
            for rec in raw.get("calls", []):
                if rec.get("tkind") == "task" and rec.get("dropped"):
                    yield self.finding_at(
                        snapshot, node.rel_path, rec["line"], rec["col"],
                        f"{_short(qual)} drops the result of "
                        f"{rec.get('name') or 'create_task'}(); keep a "
                        f"reference and add a done-callback or await it",
                        context=(
                            f"dropped-task:{qual}:"
                            f"{rec.get('name') or 'create_task'}"
                        ),
                    )
                if (
                    rec.get("recv_call") in _THREAD_CTORS
                    and rec.get("attr") == "start"
                ):
                    yield self.finding_at(
                        snapshot, node.rel_path, rec["line"], rec["col"],
                        f"{_short(qual)} starts a Thread on a temporary "
                        f"instance; store it so shutdown can join it",
                        context=f"temp-thread:{qual}",
                    )
            yield from self._unjoined_locals(snapshot, qual, node)

    def _unjoined_locals(
        self, snapshot: ProjectSnapshot, qual: str, node
    ) -> Iterator[Finding]:
        raw = node.raw
        graph = snapshot.graph
        escaped = set(raw.get("escaped", ()))
        joined = set(raw.get("joined", ()))
        stored = {
            w["type"][4:]
            for w in raw.get("writes", ())
            if w.get("type", "") and str(w.get("type")).startswith("var:")
            and w["target"].startswith("self.")
        }
        for var, vtype in raw.get("vartypes", {}).items():
            if not vtype.startswith("call:"):
                continue
            if graph.resolve_symbol(node.module, vtype[5:]) != "threading.Thread":
                continue
            start = next(
                (
                    rec
                    for rec in raw.get("calls", ())
                    if rec.get("name") == f"{var}.start"
                ),
                None,
            )
            if start is None:
                continue
            if var in joined or var in escaped or var in stored:
                continue
            yield self.finding_at(
                snapshot, node.rel_path, start["line"], start["col"],
                f"{_short(qual)} starts thread '{var}' but never joins, "
                f"stores, or returns it; it cannot be waited for at "
                f"shutdown",
                context=f"unjoined-thread:{qual}:{var}",
            )


@register
class ResourceLeak(ProjectRule):
    id = "RPR205"
    name = "resource-leak"
    severity = Severity.ERROR
    description = (
        "file/socket/executor acquired without close(), with-block, or "
        "ownership transfer on its exits"
    )
    rationale = """\
A file, socket, or executor acquired outside a `with` block must reach
a close()/shutdown() on every exit, escape to the caller (returned,
yielded, passed on), or be stored on self with some method of the class
closing it.  Anything else leaks a kernel handle per call — fatal for a
long-running service under fd limits."""
    example = """\
def warm(self, path):
    handle = open(path)        # RPR205: no close() on any exit and
    return handle.read()       # the handle itself never escapes"""

    def check_project(self, snapshot: ProjectSnapshot) -> Iterator[Finding]:
        graph = snapshot.graph
        for qual, node in sorted(graph.nodes.items()):
            raw = node.raw
            escaped = set(raw.get("escaped", ()))
            closes = set(raw.get("closes", ()))
            joined = set(raw.get("joined", ()))
            with_vars = set(raw.get("with_vars", ()))
            self_stored: dict[str, str] = {
                w["type"][4:]: w["target"]
                for w in raw.get("writes", ())
                if str(w.get("type") or "").startswith("var:")
                and w["target"].startswith("self.")
            }
            for res in raw.get("resources", ()):
                if res.get("in_with"):
                    continue
                assigned = res.get("assigned")
                if assigned is None:
                    yield self.finding_at(
                        snapshot, node.rel_path, res["line"], res["col"],
                        f"{_short(qual)} acquires a {res['type']} "
                        f"({res['ctor']}) and drops the handle; use a "
                        f"with-block",
                        context=f"leak-dropped:{qual}:{res['ctor']}",
                    )
                    continue
                if assigned.startswith("self."):
                    if self._class_closes(graph, node, assigned):
                        continue
                    yield self.finding_at(
                        snapshot, node.rel_path, res["line"], res["col"],
                        f"{_short(qual)} stores a {res['type']} on "
                        f"'{assigned}' but no method of the class ever "
                        f"closes it",
                        context=f"leak-unclosed:{qual}:{assigned}",
                    )
                    continue
                if (
                    assigned in escaped
                    or assigned in closes
                    or assigned in joined
                    or assigned in with_vars
                ):
                    continue
                if assigned in self_stored:
                    target = self_stored[assigned]
                    if self._class_closes(graph, node, target):
                        continue
                yield self.finding_at(
                    snapshot, node.rel_path, res["line"], res["col"],
                    f"{_short(qual)} acquires a {res['type']} "
                    f"({res['ctor']}) with no close()/with on its exits "
                    f"and the handle never escapes",
                    context=f"leak-local:{qual}:{assigned}",
                )

    @staticmethod
    def _class_closes(graph, node, self_attr: str) -> bool:
        """Some method of the owning class closes ``self.<attr>``."""
        owner = node.owner_class
        if owner is None:
            return False
        for other in graph.nodes.values():
            if other.owner_class != owner:
                continue
            if self_attr in other.raw.get("closes", ()):
                return True
        return False
