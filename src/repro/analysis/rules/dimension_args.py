"""RPR102 — wrong-dimension argument at a unit-annotated call site.

Backed by the same dataflow pass as RPR101: when a call target's
parameter units are known (from the cross-module signature harvest, or
from the keyword name at the call site), an argument whose inferred
unit has a different dimension is reported.  The failure models are the
high-value targets — Black's equation wants kelvin and eV, Coffin-
Manson wants a temperature *delta*, SOFR wants FIT — and a voltage or
frequency slipped into a temperature slot corrupts every MTTF
downstream without raising.
"""

from __future__ import annotations

from repro.analysis.findings import Severity
from repro.analysis.registry import register
from repro.analysis.rules.unit_flow import UnitFlowRuleBase


@register
class DimensionArgRule(UnitFlowRuleBase):
    id = "RPR102"
    name = "wrong-dimension-arg"
    severity = Severity.ERROR
    kind = "call"
    description = (
        "a call site passes a value whose inferred unit disagrees with "
        "the parameter's unit (wrong dimension or wrong scale)"
    )
    rationale = (
        "Every failure-model entry point (core/failure/*, ramp.py,\n"
        "lifetime.py, qualification.py) declares its units through RPR001\n"
        "parameter suffixes; the analyzer harvests those signatures\n"
        "across the import graph and checks what each call site actually\n"
        "passes.  Passing frequency_ghz where temperature_k is expected,\n"
        "or a raw Celsius reading into a kelvin slot, parameterises the\n"
        "Arrhenius exponentials with garbage while staying perfectly\n"
        "runnable."
    )
    example = (
        "def black_mttf(temperature_k: float) -> float: ...\n"
        "\n"
        "vdd_v = 1.2\n"
        "black_mttf(temperature_k=vdd_v)  # volts into a kelvin slot\n"
    )
