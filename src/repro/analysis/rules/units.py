"""RPR001 — physical quantities must carry unit suffixes.

The paper's models only compose because every quantity is in the agreed
unit (kelvin, volts, hertz, watts, mm² — see ``repro/constants.py``).
The type system cannot see units, so the convention is enforced by
name: a parameter, attribute, or module constant whose name mentions a
physical quantity must end in a unit suffix consistent with those
conventions.  A second heuristic catches the classic kelvin/Celsius
slip: a numeric literal below absolute-zero-plus-margin passed to a
``*_k`` keyword is almost certainly a Celsius value.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.constants import MIN_TEMPERATURE_K

#: quantity stem -> unit suffixes the convention allows for it.
STEM_SUFFIXES: dict[str, frozenset[str]] = {
    "temperature": frozenset({"k", "c"}),
    "temp": frozenset({"k", "c"}),
    "voltage": frozenset({"v", "mv"}),
    "vdd": frozenset({"v", "mv"}),
    "frequency": frozenset({"hz", "ghz", "mhz", "khz"}),
    "freq": frozenset({"hz", "ghz", "mhz", "khz"}),
    "power": frozenset({"w", "mw"}),
    "energy": frozenset({"j", "ev"}),
    "area": frozenset({"mm2", "m2", "um2"}),
    "mttf": frozenset({"hours", "years", "h"}),
    "duration": frozenset({"s", "ms", "hours", "years"}),
}

#: suffixes that mark a name as dimensionless (ratios of quantities) or
#: as metadata about the quantity rather than the quantity itself.
DIMENSIONLESS_SUFFIXES = frozenset(
    {
        "ratio", "scale", "factor", "fraction", "exponent", "index",
        "steps", "count", "name", "label", "id", "key", "density",
        "band", "rel",
    }
)

_SKIP_NAMES = frozenset({"self", "cls"})


def _annotation_is_numeric(annotation: ast.expr | None) -> bool:
    """Whether a type annotation describes a numeric quantity.

    ``float``/``int`` anywhere in the annotation (``dict[str, float]``,
    ``float | None``) counts; a bare class name (``PowerBreakdown``),
    ``bool``, or ``str`` does not — unit suffixes only apply to numbers.
    """
    if annotation is None:
        return True  # unannotated: assume a quantity, keep the check
    names = {
        node.id for node in ast.walk(annotation) if isinstance(node, ast.Name)
    }
    names |= {
        node.value
        for node in ast.walk(annotation)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }
    return bool(names & {"float", "int"})


def _value_is_numeric(value: ast.expr | None) -> bool:
    """Whether an assigned literal is a number (or tuple/list of them)."""
    if value is None:
        return False
    if isinstance(value, ast.Constant):
        return isinstance(value.value, (int, float)) and not isinstance(
            value.value, bool
        )
    if isinstance(value, (ast.Tuple, ast.List)) and value.elts:
        return all(_value_is_numeric(elt) for elt in value.elts)
    if isinstance(value, ast.UnaryOp) and isinstance(value.op, (ast.USub, ast.UAdd)):
        return _value_is_numeric(value.operand)
    return False


def _tokens(name: str) -> list[str]:
    return [t for t in name.lower().split("_") if t]


def name_violation(name: str) -> str | None:
    """The allowed-suffix list if ``name`` violates the convention.

    A stem is satisfied when an allowed unit suffix either directly
    follows it (``power_w_by_block``) or ends the name
    (``peak_temperature_k``), or when the name ends in a dimensionless
    marker (``frequency_ratio``).
    """
    tokens = _tokens(name)
    if not tokens or name.startswith("__"):
        return None
    last = tokens[-1]
    if last in DIMENSIONLESS_SUFFIXES:
        return None
    missing: set[str] = set()
    for i, token in enumerate(tokens):
        allowed = STEM_SUFFIXES.get(token)
        if allowed is None:
            continue
        following = tokens[i + 1] if i + 1 < len(tokens) else None
        if following in allowed or last in allowed:
            continue
        missing.update(allowed)
    if not missing:
        return None
    return "/".join(sorted(missing))


@register
class UnitSuffixRule(Rule):
    id = "RPR001"
    name = "unit-suffix"
    severity = Severity.ERROR
    description = (
        "physical-quantity names must end in a unit suffix matching the "
        "conventions in repro/constants.py (kelvin, volts, hertz, ...)"
    )

    def applies_to(self, ctx) -> bool:
        return not ctx.is_test

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_signature(ctx, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_class_body(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_kelvin_literals(ctx, node)
        yield from self._check_module_assigns(ctx)

    def _name_finding(self, ctx, node, name: str, what: str) -> Iterator[Finding]:
        if name in _SKIP_NAMES:
            return
        allowed = name_violation(name)
        if allowed is not None:
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset + 1,
                f"{what} {name!r} names a physical quantity but lacks a "
                f"unit suffix (expected one of: _{', _'.join(sorted(allowed.split('/')))})",
            )

    def _check_signature(self, ctx, node) -> Iterator[Finding]:
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_is_numeric(arg.annotation):
                yield from self._name_finding(ctx, arg, arg.arg, "parameter")

    def _check_assign_stmts(self, ctx, body, what: str) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if _annotation_is_numeric(stmt.annotation):
                    yield from self._name_finding(ctx, stmt, stmt.target.id, what)
            elif isinstance(stmt, ast.Assign) and _value_is_numeric(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        yield from self._name_finding(ctx, stmt, target.id, what)

    def _check_class_body(self, ctx, node) -> Iterator[Finding]:
        yield from self._check_assign_stmts(ctx, node.body, "attribute")

    def _check_module_assigns(self, ctx) -> Iterator[Finding]:
        yield from self._check_assign_stmts(ctx, ctx.tree.body, "module constant")

    def _check_kelvin_literals(self, ctx, node: ast.Call) -> Iterator[Finding]:
        for kw in node.keywords:
            if kw.arg is None:
                continue
            if not (kw.arg.endswith("_k") or kw.arg == "kelvin"):
                continue
            value = kw.value
            if (
                isinstance(value, ast.Constant)
                and isinstance(value.value, (int, float))
                and not isinstance(value.value, bool)
                and 0 < float(value.value) < MIN_TEMPERATURE_K
            ):
                yield self.finding(
                    ctx,
                    value.lineno,
                    value.col_offset + 1,
                    f"{value.value!r} passed to kelvin parameter {kw.arg!r} "
                    f"looks like a Celsius value (kelvin temperatures are "
                    f">= {MIN_TEMPERATURE_K:.0f} K here); use "
                    "celsius_to_kelvin() at the boundary",
                    severity=Severity.WARNING,
                )
