"""RPR103 — FIT rates and MTTF times used interchangeably.

FIT (failures per 10^9 device-hours) and MTTF (hours) are reciprocal
under the SOFR constant-rate assumption, and both are plain floats, so
handing one to a consumer of the other runs fine and is wrong by many
orders of magnitude.  The dataflow pass tags any time/rate collision —
in arithmetic, comparisons, or at call sites — with its own diagnostic
kind so the fix (insert ``mttf_hours_to_fit()`` / ``fit_to_mttf_hours()``)
is named explicitly.
"""

from __future__ import annotations

from repro.analysis.findings import Severity
from repro.analysis.registry import register
from repro.analysis.rules.unit_flow import UnitFlowRuleBase


@register
class FitMttfRule(UnitFlowRuleBase):
    id = "RPR103"
    name = "fit-mttf-confusion"
    severity = Severity.ERROR
    kind = "fit_mttf"
    description = (
        "an hours-valued (MTTF) expression flows where a FIT rate is "
        "consumed, or vice versa"
    )
    rationale = (
        "FIT = 1e9 / MTTF_hours under SOFR, so the two are easy to mix\n"
        "up and catastrophic when mixed: a 30-year MTTF is ~262800 hours\n"
        "but ~3805 FIT, and both are unremarkable floats.  Budget\n"
        "comparisons (total_fit < qualified MTTF) and call sites\n"
        "(mttf_hours= given a FIT sum) are the observed failure shapes.\n"
        "Convert explicitly at the boundary with mttf_hours_to_fit() or\n"
        "fit_to_mttf_hours() from repro.constants."
    )
    example = (
        "budget_fit = TARGET_FIT / n_mechanisms\n"
        "mttf_hours = black_mttf_hours(temperature_k=360.0)\n"
        "if mttf_hours < budget_fit:  # hours compared against FIT\n"
        "    derate()\n"
    )
