"""Bundled rules; importing this package registers them all."""

from repro.analysis.rules import (  # noqa: F401
    broad_except,
    constants_audit,
    determinism,
    float_eq,
    pool_safety,
    units,
)
