"""Bundled rules; importing this package registers them all."""

from repro.analysis.rules import (  # noqa: F401
    async_blocking,
    broad_except,
    concurrency_rules,
    constants_audit,
    determinism,
    dimension_args,
    fit_mttf,
    float_eq,
    hotpath,
    numeric_safety,
    pool_safety,
    swallowed_interrupt,
    unit_flow,
    units,
)
