"""RPR301–303 — numeric-safety rules backed by the interval pass.

The interval-domain interpreter (:mod:`repro.analysis.intervals`) binds
every local to a range over the extended reals, seeded from the
declared physical envelopes in ``constants.PHYSICAL_RANGES`` and
narrowed by branch conditions.  These rules report its diagnostics:

- RPR301: an arithmetic domain violation that is *provable* from the
  intervals — a division whose denominator contains zero, ``log`` of a
  possibly-nonpositive value, ``sqrt`` of a possibly-negative one.
- RPR302: a literal (or named constant) crossing a module boundary —
  call argument, parameter default, or module constant — outside its
  declared physical envelope.  This one is a project-scope pass over
  the harvested interval facts, not a per-file check.
- RPR303: a possibly NaN/inf-producing operation in the hot modules
  (kernels, thermal, power, failure models) inside a function with no
  guard of any kind — no raise/assert, no ``isfinite``/``nan_to_num``/
  ``where``/``errstate``/``clip``, no ``validate_*`` call.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register


class IntervalRuleBase(Rule):
    """Shared plumbing for the interval-diagnostic-backed rules.

    Subclasses set :attr:`kind` to the diagnostic kind they report; the
    interpretation runs once per file and is shared via
    ``ctx.interval_diagnostics()``.
    """

    kind: str = ""

    def applies_to(self, ctx) -> bool:
        return not ctx.is_test

    def check(self, ctx) -> Iterator[Finding]:
        for diag in ctx.interval_diagnostics():
            if diag.kind == self.kind:
                yield self.finding(ctx, diag.line, diag.col, diag.message)


@register
class ReachableDomainErrorRule(IntervalRuleBase):
    id = "RPR301"
    name = "reachable-domain-error"
    severity = Severity.ERROR
    kind = "domain"
    description = (
        "division, log, or sqrt whose argument interval provably reaches "
        "the operation's domain boundary (zero or negative)"
    )
    rationale = (
        "The RAMP models are chains of Arrhenius exponentials and\n"
        "FIT/MTTF reciprocals.  exp underflows to exactly 0.0 for\n"
        "arguments below about -745, so `1.0 / exp(...)` of an\n"
        "unconstrained operating point is a concrete ZeroDivisionError\n"
        "(scalar) or silent inf (numpy).  The interval pass propagates\n"
        "the declared physical envelopes through the arithmetic; this\n"
        "rule fires only when the computed interval actually contains\n"
        "the bad point, so every finding is a reachable failure, not a\n"
        "style complaint.  Guard with a raising check (which narrows\n"
        "the interval) or the errstate+where idiom (which is exempt)."
    )
    example = (
        "def relative_mttf(temperature_k: float) -> float:\n"
        "    a = math.exp(-EA / (K_B * temperature_k))\n"
        "    return 1.0 / a  # a underflows to 0.0 for cold corners\n"
    )


@register
class DeclaredRangeRule(IntervalRuleBase):
    id = "RPR302"
    name = "out-of-declared-range"
    severity = Severity.ERROR
    #: Findings come from the project-wide range pass over harvested
    #: interval facts (the fourth cached layer), not from per-file
    #: interpretation.
    scope = "intervals"
    description = (
        "numeric value crossing a module boundary (call argument, "
        "parameter default, module constant) outside its declared "
        "physical range"
    )
    rationale = (
        "constants.PHYSICAL_RANGES declares the physical envelope for\n"
        "each unit in the analyzer's lattice: temperatures in\n"
        "[MIN_TEMPERATURE_K, MAX_TEMPERATURE_K], probabilities in\n"
        "[0, 1], durations strictly positive, voltages and frequencies\n"
        "in their qualified DVS envelopes.  A literal 85.0 passed as\n"
        "`temperature_k` is a Celsius value that slipped through a\n"
        "kelvin boundary; a negative FIT budget or an activity of 1.2\n"
        "is corrupt configuration.  The check runs project-wide over\n"
        "harvested call/default/constant facts, so it catches the\n"
        "mistake at whichever module boundary it crosses."
    )
    example = (
        "model.relative_mttf(temperature_k=85.0)  # 85 K is -188 C;\n"
        "                                         # meant celsius_to_kelvin(85)\n"
    )

    def check(self, ctx) -> Iterator[Finding]:
        """Range findings come from the project pass, not per-file."""
        return iter(())


@register
class UncheckedNanFlowRule(IntervalRuleBase):
    id = "RPR303"
    name = "unchecked-nan-flow"
    severity = Severity.WARNING
    kind = "nanflow"
    description = (
        "possibly NaN/inf-producing operation (unbounded exp, division "
        "by an unconstrained value) in a hot module with no downstream "
        "finite-check or guard"
    )
    rationale = (
        "In repro.kernels / repro.thermal / repro.power /\n"
        "repro.core.failure, a NaN born in one element of a batch\n"
        "survives every subsequent ufunc and poisons the aggregate.\n"
        "RPR301 needs a provable domain violation; this rule covers the\n"
        "residual risk: an exp of an unbounded argument or a division\n"
        "by a value the intervals cannot bound, inside a function that\n"
        "has no guard at all.  Any raise/assert, isfinite/nan_to_num/\n"
        "where/errstate/clip call, or validate_* call in the function\n"
        "counts as a guard and silences the rule — the point is that\n"
        "*somebody* checks, not where."
    )
    example = (
        "def leakage_w(scale):            # hot module, no guards\n"
        "    return BASE_W * np.exp(scale)  # scale unbounded -> inf\n"
    )
