"""RPR004 — no raw ``==`` / ``!=`` against float values.

Reliability math composes exponentials and powers; two routes to "the
same" number routinely differ in the last ulp, so raw float equality is
either dead code or a latent heisenbug.  The rule flags comparisons
where either side is literally a float: a float constant, ``-1.5``,
``float("inf")``, or ``math.inf``-style attribute constants.  Use
``math.isclose``/``math.isinf`` in library code and ``pytest.approx``
in tests; exact-zero/sentinel semantics need an inline suppression
with a justification.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules.determinism import dotted_name

_FLOAT_ATTRS = frozenset(
    {
        "math.inf", "math.nan", "math.pi", "math.e", "math.tau",
        "np.inf", "np.nan", "numpy.inf", "numpy.nan",
    }
)


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    if isinstance(node, ast.Call):
        return (
            isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and len(node.args) == 1
        )
    dotted = dotted_name(node)
    return dotted in _FLOAT_ATTRS


def _suggestion(node: ast.expr) -> str:
    if isinstance(node, ast.Call) or dotted_name(node) in {
        "math.inf", "np.inf", "numpy.inf",
    }:
        return "use math.isinf()"
    if dotted_name(node) in {"math.nan", "np.nan", "numpy.nan"}:
        return "use math.isnan() (NaN never equals anything)"
    return "use math.isclose() (or pytest.approx in tests)"


@register
class FloatEqualityRule(Rule):
    id = "RPR004"
    name = "float-equality"
    severity = Severity.ERROR
    description = (
        "raw ==/!= against float values is banned; use math.isclose, "
        "math.isinf, or pytest.approx"
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[i], operands[i + 1]):
                    if _is_float_literal(side):
                        sym = "==" if isinstance(op, ast.Eq) else "!="
                        yield self.finding(
                            ctx,
                            side.lineno,
                            side.col_offset + 1,
                            f"raw float {sym} comparison against "
                            f"{ast.unparse(side)}; {_suggestion(side)}",
                        )
                        break
