"""RPR002 — no nondeterminism reachable from job cache-key construction.

``repro.engine`` deduplicates and persists results by a SHA-256 over
job inputs.  That is only sound if everything a job spec hashes — and
everything a worker recomputes from the spec — is a pure function of
the spec.  Wall-clock reads, unseeded RNGs, salted ``hash()``, and
set-iteration order all make "the same job" produce different bytes in
different processes, which silently poisons the store.

The rule's scope is the static import closure of ``repro.engine.jobs``
(eager *and* lazy imports).  When that root module is not among the
analyzed files (fixture trees, other projects), the rule falls back to
checking every non-test file.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

#: fully-dotted calls that read ambient state.
BANNED_CALLS: dict[str, str] = {
    "time.time": "wall-clock time; use an explicit timestamp input",
    "time.time_ns": "wall-clock time; use an explicit timestamp input",
    "datetime.now": "wall-clock time; pass the timestamp in",
    "datetime.utcnow": "wall-clock time; pass the timestamp in",
    "datetime.today": "wall-clock time; pass the timestamp in",
    "datetime.datetime.now": "wall-clock time; pass the timestamp in",
    "datetime.datetime.utcnow": "wall-clock time; pass the timestamp in",
    "datetime.datetime.today": "wall-clock time; pass the timestamp in",
    "date.today": "wall-clock date; pass the date in",
    "os.urandom": "OS entropy; derive bytes from the job seed",
    "uuid.uuid1": "host/time-dependent UUID; derive ids from content",
    "uuid.uuid4": "random UUID; derive ids from content hashes",
    "os.getpid": "process identity; results must not depend on the worker",
}

#: module-level functions of the stdlib global (unseeded) RNG.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "betavariate",
        "expovariate", "triangular", "seed", "getrandbits",
    }
)

#: numpy legacy global-RNG functions (``np.random.rand`` etc.).
NUMPY_GLOBAL_FUNCS = frozenset(
    {
        "rand", "randn", "randint", "random", "choice", "shuffle",
        "permutation", "seed", "random_sample", "normal", "uniform",
    }
)


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.expr) -> bool:
    """A set display, set comprehension, or bare ``set(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


@register
class DeterminismRule(Rule):
    id = "RPR002"
    name = "determinism"
    severity = Severity.ERROR
    description = (
        "code reachable from repro.engine.jobs cache-key construction must "
        "be deterministic: no wall-clock reads, unseeded RNGs, salted "
        "hash(), or set-iteration-order dependence"
    )

    def applies_to(self, ctx) -> bool:
        return ctx.in_determinism_scope

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield self.finding(
                        ctx,
                        node.iter.lineno,
                        node.iter.col_offset + 1,
                        "iterating a set: element order varies across "
                        "processes (salted str hashing); sort first",
                    )

    def _check_call(self, ctx, node: ast.Call) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        at = (node.lineno, node.col_offset + 1)
        if dotted in BANNED_CALLS:
            yield self.finding(
                ctx, *at, f"{dotted}(): {BANNED_CALLS[dotted]}"
            )
            return
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2 and parts[1] in GLOBAL_RANDOM_FUNCS:
            yield self.finding(
                ctx, *at,
                f"{dotted}(): global unseeded RNG; use a seeded "
                "random.Random/numpy Generator derived from the job seed",
            )
            return
        if (
            parts[0] in {"np", "numpy"}
            and len(parts) == 3
            and parts[1] == "random"
            and parts[2] in NUMPY_GLOBAL_FUNCS
        ):
            yield self.finding(
                ctx, *at,
                f"{dotted}(): numpy legacy global RNG; use "
                "np.random.default_rng(seed) with an explicit seed",
            )
            return
        if dotted.endswith("random.default_rng") and not node.args and not node.keywords:
            yield self.finding(
                ctx, *at,
                "default_rng() without a seed is entropy-seeded; pass the "
                "job seed explicitly",
            )
            return
        if dotted == "hash" and node.args:
            yield self.finding(
                ctx, *at,
                "builtin hash() is salted per process (PYTHONHASHSEED); "
                "use hashlib or zlib.crc32 for content-stable hashes",
            )
            return
        # list/tuple over a set: materialises salted iteration order.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in {"list", "tuple"}
            and node.args
            and _is_set_expr(node.args[0])
        ):
            yield self.finding(
                ctx, *at,
                f"{node.func.id}(set(...)) materialises salted set order; "
                "use sorted(...) for a canonical order",
                severity=Severity.WARNING,
            )
