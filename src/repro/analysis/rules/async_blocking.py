"""RPR008 — no blocking calls inside ``async def`` bodies in the service.

The decision service runs one asyncio event loop for every connection:
a single blocking call inside a coroutine stalls *all* in-flight
requests — micro-batch deadlines slip, keep-alive peers time out, and
the p99 latency the serve benchmark enforces collapses.  The service's
own design rule is therefore mechanical: in ``repro.serve``, coroutines
may only compute and await; anything that can touch a clock, the disk,
or another process belongs on the worker pool
(``loop.run_in_executor``) or behind an ``asyncio`` equivalent.

Flagged inside ``async def`` bodies (nested synchronous ``def``\\ s are
exempt — they execute wherever they are *called*, typically on the
pool):

- ``time.sleep(...)`` — use ``asyncio.sleep``;
- synchronous file I/O: the ``open(...)`` builtin and the
  ``read_text`` / ``write_text`` / ``read_bytes`` / ``write_bytes``
  path methods;
- ``subprocess.run`` / ``call`` / ``check_call`` / ``check_output`` /
  ``Popen`` — use ``asyncio.create_subprocess_exec``;
- synchronous result-store access: ``get`` / ``put`` / ``invalidate`` /
  ``absolve`` on a ``store`` receiver, and the two-tier decision
  cache's ``get`` / ``put`` on a ``cache`` receiver (its store tier
  reads the disk; the event-loop-safe probe is ``get_memory``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules.determinism import dotted_name

#: Module scope the rule polices.
_SCOPE_PREFIX = "repro.serve"

#: Fully-dotted callables that block the loop, with the async fix.
_BLOCKING_DOTTED = {
    "time.sleep": "asyncio.sleep",
    "subprocess.run": "asyncio.create_subprocess_exec",
    "subprocess.call": "asyncio.create_subprocess_exec",
    "subprocess.check_call": "asyncio.create_subprocess_exec",
    "subprocess.check_output": "asyncio.create_subprocess_exec",
    "subprocess.Popen": "asyncio.create_subprocess_exec",
}

#: Method names that are synchronous file I/O on any receiver.
_FILE_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: Store-backed methods that read/write the disk, per receiver tail.
_STORE_METHODS = frozenset({"get", "put", "invalidate", "absolve"})
_STORE_RECEIVERS = frozenset({"store", "cache"})


def _receiver_tail(func: ast.Attribute) -> str | None:
    """Last component of the receiver expression (``self.cache.get`` ->
    ``cache``), if it is a plain name/attribute chain."""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _blocking_reason(call: ast.Call) -> str | None:
    """Why this call blocks the event loop, or ``None`` if it doesn't."""
    func = call.func
    dotted = dotted_name(func)
    if dotted in _BLOCKING_DOTTED:
        return f"{dotted}() blocks the event loop; use {_BLOCKING_DOTTED[dotted]}"
    if isinstance(func, ast.Name) and func.id == "open":
        return (
            "open() is synchronous file I/O; move it to the worker pool "
            "(loop.run_in_executor)"
        )
    if isinstance(func, ast.Attribute):
        if func.attr in _FILE_IO_METHODS:
            return (
                f".{func.attr}() is synchronous file I/O; move it to the "
                "worker pool (loop.run_in_executor)"
            )
        receiver = _receiver_tail(func)
        if receiver in _STORE_RECEIVERS and func.attr in _STORE_METHODS:
            return (
                f"{receiver}.{func.attr}() reaches the on-disk store tier; "
                "call it from the worker pool (the event-loop-safe probe "
                "is cache.get_memory)"
            )
    return None


@register
class AsyncBlockingRule(Rule):
    id = "RPR008"
    name = "async-blocking"
    severity = Severity.ERROR
    description = (
        "async def bodies under repro.serve must not call time.sleep, "
        "synchronous file I/O, subprocess, or synchronous store reads"
    )
    rationale = (
        "The decision service multiplexes every connection onto one "
        "asyncio event loop.  A blocking call inside any coroutine — a "
        "sleep, an open(), a subprocess wait, a store read that touches "
        "the disk — freezes all in-flight requests at once: micro-batch "
        "deadlines slip, keep-alive peers stall, and tail latency "
        "collapses.  Blocking work belongs on the worker pool "
        "(loop.run_in_executor) or behind the asyncio equivalent "
        "(asyncio.sleep, asyncio.create_subprocess_exec).  Synchronous "
        "helpers defined inside a coroutine are exempt: they run where "
        "they are called, which is the pool."
    )
    example = (
        "async def decide(self, request):\n"
        "    payload = self.store.get(key)   # RPR008: disk read on the loop\n"
        "    time.sleep(0.005)               # RPR008: use asyncio.sleep\n"
    )

    def applies_to(self, ctx) -> bool:
        return (
            not ctx.is_test
            and ctx.module is not None
            and (
                ctx.module == _SCOPE_PREFIX
                or ctx.module.startswith(_SCOPE_PREFIX + ".")
            )
        )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(ctx, node)

    def _check_coroutine(
        self, ctx, coro: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        """Findings for one coroutine body, skipping nested sync defs.

        Nested ``async def``\\ s are also skipped here — the outer
        :meth:`check` walk visits them as coroutines in their own right.
        """
        stack: list[ast.AST] = list(coro.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                reason = _blocking_reason(node)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset + 1,
                        f"in 'async def {coro.name}': {reason}",
                    )
            stack.extend(ast.iter_child_nodes(node))
