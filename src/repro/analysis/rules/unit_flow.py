"""RPR101 — unit mismatch in additive arithmetic and comparisons.

The dataflow pass (:mod:`repro.analysis.dataflow`) tracks the physical
unit of every local through assignments and arithmetic.  This rule
reports the ``mismatch`` diagnostics it produces: adding, subtracting,
or comparing two values whose inferred units disagree — most notably
mixing kelvin with Celsius, where the arithmetic is silently wrong by
273.15 everywhere.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register


class UnitFlowRuleBase(Rule):
    """Shared plumbing for the three dataflow-backed rules.

    Subclasses set :attr:`kind` to the diagnostic kind they report; the
    interpretation itself runs once per file and is shared via
    ``ctx.unit_diagnostics()``.
    """

    kind: str = ""

    def applies_to(self, ctx) -> bool:
        return not ctx.is_test

    def check(self, ctx) -> Iterator[Finding]:
        for diag in ctx.unit_diagnostics():
            if diag.kind == self.kind:
                yield self.finding(ctx, diag.line, diag.col, diag.message)


@register
class UnitMismatchRule(UnitFlowRuleBase):
    id = "RPR101"
    name = "unit-flow-mismatch"
    severity = Severity.ERROR
    kind = "mismatch"
    description = (
        "values of different physical units flow into the same +, -, or "
        "comparison (including kelvin mixed with Celsius)"
    )
    rationale = (
        "RPR001 checks that names carry unit suffixes; this rule checks\n"
        "what actually flows through the arithmetic.  Units are inferred\n"
        "from parameter names, constants.py's CONSTANT_UNITS table, and\n"
        "call signatures harvested across the import graph, then\n"
        "propagated through assignments.  Adding or comparing a kelvin\n"
        "value against a Celsius one is off by 273.15 everywhere and\n"
        "raises no exception; mixing watts with volts or GHz with Hz is\n"
        "the same silent-corruption class."
    )
    example = (
        "ambient_c = 45.0\n"
        "peak_temperature_k = 380.0\n"
        "headroom = peak_temperature_k - ambient_c  # K minus degC\n"
    )
