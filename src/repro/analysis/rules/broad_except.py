"""RPR006 — no broad ``except Exception`` / bare ``except`` in library code.

A broad catch turns every future bug — typos, unit errors, corrupted
state — into a silently-handled "expected" condition.  The two places
it is legitimately load-bearing in this codebase (executor crash
isolation, store-corruption quarantine) carry inline suppressions that
say so; everything else must name the exceptions it can actually see.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules.determinism import dotted_name

_BROAD = frozenset({"Exception", "BaseException"})


def _reraises(node: ast.ExceptHandler) -> bool:
    """Whether the handler ends by re-raising the caught exception."""
    return bool(node.body) and (
        isinstance(node.body[-1], ast.Raise) and node.body[-1].exc is None
    )


def _broad_names(node: ast.expr | None) -> list[str]:
    if node is None:
        return ["<bare>"]
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    out = []
    for expr in exprs:
        name = (dotted_name(expr) or "").rsplit(".", 1)[-1]
        if name in _BROAD:
            out.append(name)
    return out


@register
class BroadExceptRule(Rule):
    id = "RPR006"
    name = "broad-except"
    severity = Severity.WARNING
    description = (
        "library code must catch concrete exception types; broad catches "
        "need a suppression explaining why they are load-bearing"
    )

    def applies_to(self, ctx) -> bool:
        return not ctx.is_test

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _reraises(node):
                # cleanup-then-reraise (e.g. atomic-write temp-file
                # removal) swallows nothing, so broad is fine there.
                continue
            for name in _broad_names(node.type):
                what = (
                    "bare except:" if name == "<bare>" else f"except {name}:"
                )
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset + 1,
                    f"{what} catches everything, including bugs; narrow to "
                    "the concrete exception types this block can actually "
                    "see",
                )
