"""RPR005 — paper constants may only be spelled in ``repro/constants.py``.

The paper's model constants (Black's n = 1.1, Ea = 0.9 eV, the
stress-migration exponent m = 2.5, the Coffin-Manson exponent
q = 2.35, and the 4000-FIT qualification target) parameterise every
lifetime number this reproduction produces.  A second spelling of any
of them is a fork waiting to drift — exactly the "subtly wrong stress
computation" failure mode.  This rule builds its audit table by
*importing* the canonical values, so the values themselves stay spelled
in one file, including here.

Incidental collisions (a branch bias that happens to be 0.9) are
expected to carry an inline suppression naming what the number really
is.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro import constants
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

#: audited value -> canonical spelling(s) in repro/constants.py.
AUDITED: dict[float, str] = {
    constants.EM_CURRENT_DENSITY_EXPONENT: "EM_CURRENT_DENSITY_EXPONENT (Black's n)",
    constants.EM_ACTIVATION_ENERGY_EV: (
        "EM_ACTIVATION_ENERGY_EV / SM_ACTIVATION_ENERGY_EV (Ea in eV)"
    ),
    constants.SM_STRESS_EXPONENT: "SM_STRESS_EXPONENT (m)",
    constants.TC_COFFIN_MANSON_EXPONENT: "TC_COFFIN_MANSON_EXPONENT (q)",
    constants.TARGET_FIT: "TARGET_FIT",
}


@register
class ConstantsAuditRule(Rule):
    id = "RPR005"
    name = "constants-audit"
    severity = Severity.ERROR
    description = (
        "paper model constants (n=1.1, Ea=0.9 eV, m=2.5, q=2.35, "
        "TARGET_FIT=4000) may only be spelled in repro/constants.py; "
        "import them instead of duplicating the literal"
    )

    def applies_to(self, ctx) -> bool:
        return not ctx.is_test and ctx.path.name != "constants.py"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if not isinstance(value, float):
                continue
            canonical = AUDITED.get(value)
            if canonical is None:
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset + 1,
                f"literal {value!r} duplicates the paper constant "
                f"{canonical}; import it from repro.constants (or suppress "
                "with a note saying what this number actually is)",
            )
