"""RPR310–312 — hot-path performance rules.

The ROADMAP's next throughput target multiplies the array code in the
hot modules (``repro.kernels``/``repro.thermal``/``repro.power``/
``repro.core.failure``); these rules catch the three ways that code
quietly falls off the fast path: Python-level loops over array rows
(RPR310, from the interval pass's array tracking), per-element
``math.*`` calls that have a numpy ufunc (RPR311), and redundant array
copies or silent dtype upcasts (RPR312).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.intervals import is_hot_module
from repro.analysis.registry import Rule, register
from repro.analysis.rules.numeric_safety import IntervalRuleBase


@register
class ArrayRowLoopRule(IntervalRuleBase):
    id = "RPR310"
    name = "array-row-loop"
    severity = Severity.WARNING
    kind = "loop"
    description = (
        "Python-level for loop over array rows in a hot module "
        "(kernels/thermal/power/failure models)"
    )
    rationale = (
        "A Python loop over the rows of a numpy array pays interpreter\n"
        "dispatch per row; the batched kernels exist precisely to\n"
        "amortise that over whole arrays.  The interval pass tracks\n"
        "which locals are arrays (from np.* constructors, asarray, and\n"
        "array-typed parameters), so the rule sees through zip(...),\n"
        "enumerate(...), range(len(x)), and range(x.shape[0]).\n"
        "Documented scalar reference paths keep their loops under an\n"
        "inline suppression stating exactly that."
    )
    example = (
        "for row in temps_k:              # hot module\n"
        "    out.append(model.fit(row))   # vectorize: model.fit(temps_k)\n"
    )


class HotPathRuleBase(Rule):
    """Shared scoping for the syntactic hot-path rules."""

    def applies_to(self, ctx) -> bool:
        return not ctx.is_test and is_hot_module(ctx.module)


#: math.* functions with a same-name numpy ufunc worth reaching for.
_MATH_UFUNCS = frozenset(
    {
        "exp",
        "expm1",
        "log",
        "log1p",
        "log2",
        "log10",
        "sqrt",
        "sin",
        "cos",
        "tan",
        "sinh",
        "cosh",
        "tanh",
        "hypot",
        "floor",
        "ceil",
        "fabs",
        "copysign",
    }
)


@register
class ScalarMathCallRule(HotPathRuleBase):
    id = "RPR311"
    name = "scalar-math-call"
    severity = Severity.WARNING
    description = (
        "per-element math.* call in a hot module where the numpy ufunc "
        "exists (math.exp -> np.exp)"
    )
    rationale = (
        "math.exp only accepts scalars, so any path through it forces\n"
        "element-at-a-time evaluation and blocks batching; the numpy\n"
        "ufunc is a drop-in replacement that handles both scalars and\n"
        "arrays (wrap with float() where a true scalar is required).\n"
        "Worse, math.exp raises OverflowError where np.exp returns inf,\n"
        "so the scalar and batched paths of the same model can disagree\n"
        "at the extreme operating points the wearout studies probe."
    )
    example = (
        "arrhenius = math.exp(-ea / (k * t))   # scalar-only\n"
        "arrhenius = float(np.exp(-ea / (k * t)))  # same result, batchable\n"
    )

    def check(self, ctx) -> Iterator[Finding]:
        from repro.analysis.dataflow import build_import_map

        imports = build_import_map(ctx.tree, ctx.module)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
            ):
                continue
            if imports.get(func.value.id) != "math":
                continue
            if func.attr not in _MATH_UFUNCS:
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset + 1,
                f"math.{func.attr} is scalar-only; np.{func.attr} is the "
                "vectorizable equivalent (wrap with float() for scalars)",
            )


_CONCAT_NAMES = frozenset(
    {"concatenate", "stack", "vstack", "hstack", "column_stack"}
)
_ELEMENTWISE_NAMES = frozenset(
    {"isfinite", "isnan", "isinf", "abs", "absolute", "fabs", "sign"}
)
_REDUCER_NAMES = frozenset(
    {"all", "any", "sum", "min", "max", "amin", "amax", "mean", "prod", "count_nonzero"}
)
_INT_DTYPES = frozenset(
    {"int", "int32", "int64", "intp", "uint32", "uint64", "int_"}
)
_CREATION_NAMES = frozenset({"zeros", "ones", "empty", "full", "arange"})


def _np_call_tail(node: ast.expr, numpy_names: set[str]) -> str | None:
    """The attr of ``np.<attr>(...)`` when ``np`` aliases numpy."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in numpy_names
    ):
        return node.func.attr
    return None


def _is_int_dtype(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _INT_DTYPES
    if isinstance(node, ast.Attribute):
        return node.attr in _INT_DTYPES
    return False


@register
class RedundantArrayCopyRule(HotPathRuleBase):
    id = "RPR312"
    name = "redundant-array-copy"
    severity = Severity.WARNING
    description = (
        "redundant array copy (np.array of an array, concatenate feeding "
        "a reduction) or silent int->float dtype upcast in a hot module"
    )
    rationale = (
        "Three allocation patterns that scale with batch size:\n"
        "np.array(x) on a value that is already an ndarray copies it —\n"
        "np.asarray is the no-copy spelling; np.concatenate feeding\n"
        "only an elementwise check plus a reduction materialises a\n"
        "combined array nobody needs — reduce per input and combine\n"
        "the scalars; an integer-dtype work array that is later\n"
        "true-divided upcasts to float64 at the division, paying the\n"
        "float allocation anyway plus the int intermediate."
    )
    example = (
        "ok = np.isfinite(np.concatenate([a.ravel(), b.ravel()])).all()\n"
        "# copies a+b; instead: np.isfinite(a).all() and np.isfinite(b).all()\n"
    )

    def check(self, ctx) -> Iterator[Finding]:
        from repro.analysis.dataflow import build_import_map

        imports = build_import_map(ctx.tree, ctx.module)
        numpy_names = {
            alias for alias, target in imports.items() if target == "numpy"
        }
        if not numpy_names:
            return

        # Names bound from numpy calls / int-dtype creations, per scope.
        array_names: set[str] = set()
        int_array_names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                tail = _np_call_tail(node.value, numpy_names)
                if tail is None:
                    continue
                array_names.add(target.id)
                if tail in _CREATION_NAMES:
                    dtype_kw = next(
                        (
                            kw.value
                            for kw in node.value.keywords
                            if kw.arg == "dtype"
                        ),
                        None,
                    )
                    if dtype_kw is not None and _is_int_dtype(dtype_kw):
                        int_array_names.add(target.id)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                tail = _np_call_tail(node, numpy_names)
                # np.array(x) where x is provably already an ndarray.
                if tail == "array" and node.args:
                    arg = node.args[0]
                    has_copy_kw = any(
                        kw.arg in ("copy", "dtype") for kw in node.keywords
                    )
                    already_array = (
                        isinstance(arg, ast.Name) and arg.id in array_names
                    ) or _np_call_tail(arg, numpy_names) is not None
                    if already_array and not has_copy_kw:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset + 1,
                            "np.array copies an existing ndarray; use "
                            "np.asarray (or pass copy=/dtype= if the copy "
                            "is intended)",
                        )
                # reduction(elementwise(concatenate(...))) chains.
                inner = node.args[0] if node.args else None
                if tail in _REDUCER_NAMES and inner is not None:
                    if _np_call_tail(inner, numpy_names) in _ELEMENTWISE_NAMES:
                        inner = inner.args[0] if inner.args else None
                    if (
                        inner is not None
                        and _np_call_tail(inner, numpy_names) in _CONCAT_NAMES
                    ):
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset + 1,
                            "concatenate feeding a reduction materialises "
                            "a combined array; reduce each input and "
                            "combine the scalars instead",
                        )
                # method form: np.elementwise(np.concatenate(...)).all()
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _REDUCER_NAMES
                ):
                    base = node.func.value
                    if _np_call_tail(base, numpy_names) in _ELEMENTWISE_NAMES:
                        base = base.args[0] if base.args else None
                    if (
                        base is not None
                        and _np_call_tail(base, numpy_names) in _CONCAT_NAMES
                    ):
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset + 1,
                            "concatenate feeding a reduction materialises "
                            "a combined array; reduce each input and "
                            "combine the scalars instead",
                        )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                if (
                    isinstance(node.left, ast.Name)
                    and node.left.id in int_array_names
                ):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset + 1,
                        f"integer-dtype array {node.left.id!r} is "
                        "true-divided, silently upcasting to float64; "
                        "create it as float (dtype=float) instead",
                    )
