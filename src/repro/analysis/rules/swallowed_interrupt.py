"""RPR007 — never swallow ``KeyboardInterrupt`` / ``BaseException``.

``KeyboardInterrupt`` and ``SystemExit`` deliberately bypass ``except
Exception``; a handler that catches them (explicitly, via
``BaseException``, or via a bare ``except``) and does not re-raise turns
Ctrl-C into a no-op.  In a sweep harness that is a liveness bug: the user
cannot stop a multi-hour run, and the checkpoint/resume machinery never
gets to write its final journal.  Cleanup-then-reraise is the only
acceptable shape for these handlers.

Unlike RPR006 (library code only), this rule also runs on tests — a test
that swallows interrupts hangs the whole CI job when it wedges.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules.determinism import dotted_name

#: Exception names whose capture also captures interrupts.
_INTERRUPT_CAPTURING = frozenset({"KeyboardInterrupt", "BaseException"})


def _reraises(node: ast.ExceptHandler) -> bool:
    """Whether the handler ends by re-raising the caught exception."""
    return bool(node.body) and (
        isinstance(node.body[-1], ast.Raise) and node.body[-1].exc is None
    )


def _interrupt_names(node: ast.expr | None) -> list[str]:
    if node is None:
        return ["<bare>"]
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    out = []
    for expr in exprs:
        name = (dotted_name(expr) or "").rsplit(".", 1)[-1]
        if name in _INTERRUPT_CAPTURING:
            out.append(name)
    return out


@register
class SwallowedInterruptRule(Rule):
    id = "RPR007"
    name = "swallowed-interrupt"
    severity = Severity.ERROR
    description = (
        "handlers that capture KeyboardInterrupt/BaseException (or use a "
        "bare except) must end with a bare re-raise"
    )
    rationale = (
        "KeyboardInterrupt and SystemExit intentionally derive from "
        "BaseException so that 'except Exception' lets them through.  A "
        "handler that captures them without re-raising makes the process "
        "unkillable from the keyboard and suppresses interpreter "
        "shutdown — in a long-running sweep the user loses Ctrl-C, and "
        "crash-recovery paths (checkpoint journals, atomic-write "
        "cleanups) are silently skipped instead of unwinding.  Cleanup "
        "handlers must end with a bare 'raise'."
    )
    example = (
        "try:\n"
        "    os.replace(tmp, path)\n"
        "except BaseException:\n"
        "    os.unlink(tmp)   # RPR007: interrupt swallowed — add 'raise'\n"
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _reraises(node):
                continue
            for name in _interrupt_names(node.type):
                what = (
                    "bare except:" if name == "<bare>" else f"except {name}:"
                )
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset + 1,
                    f"{what} captures KeyboardInterrupt/SystemExit and never "
                    "re-raises; end the handler with a bare 'raise' (or "
                    "catch Exception instead)",
                )
