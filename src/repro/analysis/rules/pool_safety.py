"""RPR003 — objects crossing the process-pool boundary must be picklable.

``repro.engine.executor`` ships job specs to worker processes.  Pickle
resolves functions and classes *by module-qualified name*, so lambdas,
closures, and classes defined inside functions fail at submit time (or
worse, at result time, where the error is attributed to the wrong
layer).  Job specs additionally rely on being frozen dataclasses:
hashable (for dedup), immutable (so the cache key cannot drift after
hashing), and cheaply picklable.

Two checks:

- arguments submitted to an executor (``*.submit(f, ...)``, pool
  ``map``/``starmap``/``apply_async``) must not be lambdas or
  locally-defined functions/classes;
- subclasses of ``Job`` must be module-level ``@dataclass(frozen=True)``
  (abstract intermediates with an ``ABC`` base are exempt).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules.determinism import dotted_name

_SUBMIT_ANY = frozenset({"submit"})
_SUBMIT_POOLISH = frozenset({"map", "starmap", "apply_async", "imap", "imap_unordered"})
_POOLISH_TOKENS = ("pool", "executor", "exec")


def _terminal(name: str | None) -> str:
    return name.rsplit(".", 1)[-1] if name else ""


def _local_defs(tree: ast.Module) -> set[str]:
    """Names of functions/classes defined inside another function."""
    local: set[str] = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    local.add(child.name)
                walk(child, True)
            elif isinstance(child, ast.ClassDef):
                if inside_function:
                    local.add(child.name)
                walk(child, inside_function)
            else:
                walk(child, inside_function)

    walk(tree, False)
    return local


def _is_abstract(node: ast.ClassDef) -> bool:
    for base in node.bases:
        if _terminal(dotted_name(base)) in {"ABC", "ABCMeta"}:
            return True
    for kw in node.keywords:
        if kw.arg == "metaclass":
            return True
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and any(
            _terminal(dotted_name(d)) == "abstractmethod" for d in stmt.decorator_list
        )
        for stmt in node.body
    )


def _frozen_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        if _terminal(dotted_name(deco.func)) != "dataclass":
            continue
        for kw in deco.keywords:
            if (
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


@register
class PoolSafetyRule(Rule):
    id = "RPR003"
    name = "pool-safety"
    severity = Severity.ERROR
    description = (
        "work shipped to the process pool must be module-level and "
        "picklable (no lambdas/closures/local classes); Job subclasses "
        "must be module-level frozen dataclasses"
    )

    def check(self, ctx) -> Iterator[Finding]:
        local_defs = _local_defs(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_submit(ctx, node, local_defs)
        yield from self._check_job_classes(ctx)

    def _check_submit(self, ctx, node: ast.Call, local_defs: set[str]) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        if method in _SUBMIT_ANY:
            pass
        elif method in _SUBMIT_POOLISH:
            receiver = (dotted_name(node.func.value) or "").lower()
            if not any(tok in receiver for tok in _POOLISH_TOKENS):
                return
        else:
            return
        for arg in node.args:
            at = (arg.lineno, arg.col_offset + 1)
            if isinstance(arg, ast.Lambda):
                yield self.finding(
                    ctx, *at,
                    f"lambda passed to .{method}(): lambdas cannot be "
                    "pickled into worker processes; use a module-level "
                    "function",
                )
            elif isinstance(arg, ast.Name) and arg.id in local_defs:
                yield self.finding(
                    ctx, *at,
                    f"{arg.id!r} passed to .{method}() is defined inside a "
                    "function; pickle resolves by module-qualified name, so "
                    "move it to module level",
                )

    def _check_job_classes(self, ctx) -> Iterator[Finding]:
        def walk(node: ast.AST, inside_function: bool) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    yield from self._check_one_class(ctx, child, inside_function)
                    yield from walk(child, inside_function)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from walk(child, True)
                else:
                    yield from walk(child, inside_function)

        yield from walk(ctx.tree, False)

    def _check_one_class(
        self, ctx, node: ast.ClassDef, inside_function: bool
    ) -> Iterator[Finding]:
        base_names = {_terminal(dotted_name(b)) for b in node.bases}
        if not any(b == "Job" or (b.endswith("Job") and b != node.name) for b in base_names):
            return
        at = (node.lineno, node.col_offset + 1)
        if inside_function:
            yield self.finding(
                ctx, *at,
                f"Job subclass {node.name!r} is defined inside a function; "
                "worker processes cannot unpickle it — move it to module "
                "level",
            )
            return
        if _is_abstract(node):
            return
        if not _frozen_dataclass(node):
            yield self.finding(
                ctx, *at,
                f"Job subclass {node.name!r} must be @dataclass(frozen=True): "
                "specs are hashed for dedup and must not mutate after "
                "cache-key construction",
            )
