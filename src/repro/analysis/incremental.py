"""Incremental, parallel analysis driver.

The in-process driver in :mod:`repro.analysis.engine` re-parses and
re-checks every file on every run.  This driver makes ``repro analyze``
scale with the *change*, not the tree, by splitting a run into cached
units stored in the engine's content-addressed result store:

1. **Harvest** (per file, keyed by content hash): the file's module
   name, its import edges, and its unit signatures.  A warm run
   rebuilds the project-wide import graph and signature table without
   re-parsing a single unchanged file.
2. **Rule results** (per file, keyed by content hash + rule set +
   rule-set version + determinism-scope flags + signature-table
   digest): the findings and suppressions of one file, produced by an
   :class:`~repro.engine.analysis_jobs.AnalyzeFileJob` fanned out over
   the engine's process-pool executor.  Cold runs use all cores; warm
   runs hit the store and touch only changed files.
3. **Call-graph pass** (one entry, keyed by every non-test file's
   call-graph facts + suppression maps + signature digest): the
   interprocedural concurrency findings (RPR2xx).
4. **Interval facts + range pass**: per-file boundary-crossing numeric
   values (kind ``analysis_intervals``, keyed by content hash), and
   one project-wide range-check entry (kind ``analysis_range_pass``,
   keyed by the facts + suppression digest and the signature-table
   digest, which covers the declared physical-range table).  This is
   what backs RPR302.

Because the signature-table digest is part of every rule-result key, an
edit that changes a function's *signature* re-analyzes the whole tree
(cross-module rules may change anywhere), while a body-only edit
re-analyzes exactly one file.  That is the correct invalidation, not an
approximation.
"""

from __future__ import annotations

import ast
import hashlib
import json
import time
from pathlib import Path

from repro.analysis.callgraph import CALLGRAPH_VERSION, harvest_callgraph
from repro.analysis.concurrency import (
    ProjectSnapshot,
    run_project_rules,
    suppress_from_payload,
    suppress_payload,
)
from repro.analysis.engine import (
    DETERMINISM_ROOTS,
    FileContext,
    ProjectContext,
    is_test_path,
    range_findings,
)
from repro.analysis.intervals import (
    INTERVALS_VERSION,
    harvest_interval_facts,
    run_range_pass,
)
from repro.analysis.findings import AnalysisResult, Finding, Severity
from repro.analysis.imports import (
    ImportGraph,
    imported_modules,
    module_name_for,
    rel_posix,
)
from repro.analysis.registry import Rule, get_rule
from repro.analysis.suppressions import parse_suppressions
from repro.analysis.unitsig import SignatureTable, harvest_signatures

#: Bump when the harvest payload shape or semantics change.
#: v3: signature payloads carry module constant values and the declared
#: physical-range table.
HARVEST_VERSION = 3

#: Bump whenever any rule's logic changes in a way that can alter its
#: findings; cached per-file verdicts from older rule code then read as
#: misses.  (Adding/removing rules needs no bump — the active rule ids
#: are part of every cache key.)
#: v2: finding payloads carry the semantic fingerprint context.
RULESET_VERSION = 2

#: Default cache location, relative to the analysis root.
DEFAULT_CACHE_DIR = ".repro-cache/analysis"


def _finding_payload(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "severity": finding.severity.value,
        "snippet": finding.snippet,
        "context": finding.context,
    }


def _finding_from_payload(rel_path: str, payload: dict) -> Finding:
    return Finding(
        rule=payload["rule"],
        path=rel_path,
        line=payload["line"],
        col=payload["col"],
        message=payload["message"],
        severity=Severity(payload["severity"]),
        snippet=payload.get("snippet", ""),
        context=payload.get("context", ""),
    )


def run_rules_on_source(
    rel_path: str,
    source: str,
    module: str | None,
    rule_ids: tuple[str, ...],
    in_scope: bool,
    scope_global: bool,
    sig_payload: dict,
) -> dict:
    """Run rules over one file's source; the worker-side entry point.

    Pure function of its arguments: it rebuilds a minimal
    :class:`FileContext` (the cross-module facts arrive predigested as
    ``in_scope``/``scope_global``/``sig_payload``) and returns plain
    JSON finding records, which is what lets the result be cached by
    content.
    """
    tree = ast.parse(source, filename=rel_path)
    lines = source.splitlines()
    scope = {module} if (in_scope and module and not scope_global) else set()
    project = ProjectContext(
        root=Path("."),
        import_graph=ImportGraph(),
        determinism_scope=scope,
        determinism_scope_is_global=scope_global,
        unit_signatures=SignatureTable.from_payload(sig_payload),
    )
    ctx = FileContext(
        path=Path(rel_path),
        rel_path=rel_path,
        source=source,
        lines=lines,
        tree=tree,
        module=module,
        project=project,
        suppressions=parse_suppressions(lines, tree),
    )
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for rule_id in rule_ids:
        rule = get_rule(rule_id)
        if rule.scope != "file":
            # Project rules run once, driver-side, over the merged
            # call-graph snapshot — never in a per-file worker.
            continue
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.suppressions.covers(finding):
                suppressed.append(finding)
            else:
                findings.append(finding)
    return {
        "findings": [_finding_payload(f) for f in findings],
        "suppressed": [_finding_payload(f) for f in suppressed],
    }


class IncrementalDriver:
    """Cache-backed, process-parallel analysis of a file list.

    Args:
        root: directory findings are reported relative to.
        rules: registry rule instances to run (must be registered —
            workers rebuild them by id).
        cache_dir: result-store directory (created on demand).
        workers: process count for the executor; ``None`` = all cores,
            ``1`` = in-process serial (still cached).
    """

    def __init__(
        self,
        root: Path,
        rules: tuple[Rule, ...],
        cache_dir: Path,
        workers: int | None = None,
    ) -> None:
        from repro.engine.store import ResultStore

        self.root = root
        self.rules = rules
        self.workers = workers
        self.store = ResultStore(cache_dir)

    # ---- harvest layer -------------------------------------------------

    def _harvest_key(self, rel: str, digest: str) -> str:
        from repro.engine.jobs import content_hash

        return content_hash(
            {
                "kind": "analysis_harvest",
                "v": HARVEST_VERSION,
                "path": rel,
                "content": digest,
            }
        )

    def _harvest_file(
        self, path: Path, rel: str
    ) -> tuple[str, str | None, dict, int]:
        """(digest, source, harvest payload, store hits) for one file.

        The source text is decoded from the same bytes the digest was
        computed over, so a concurrent edit can never pair one
        revision's hash with another's content.
        """
        raw = path.read_bytes()
        digest = hashlib.sha256(raw).hexdigest()
        try:
            source = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            source = None
            decode_error: Exception | None = exc
        else:
            decode_error = None
        key = self._harvest_key(rel, digest)
        cached = self.store.get(key)
        if cached is not None:
            return digest, source, cached, 1
        module = module_name_for(rel)
        if source is None:
            payload = {"ok": False, "error": str(decode_error), "line": 1}
        else:
            try:
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, ValueError) as exc:
                payload = {
                    "ok": False,
                    "error": str(exc),
                    "line": getattr(exc, "lineno", None) or 1,
                }
            else:
                lines = source.splitlines()
                payload = {
                    "ok": True,
                    "module": module,
                    "imports": sorted(imported_modules(tree, module))
                    if module
                    else [],
                    "signatures": harvest_signatures(tree, module),
                    # Call-graph layer: this file's interprocedural
                    # facts, plus its suppression map so a suppression
                    # edit invalidates the cached project pass.
                    "callgraph": harvest_callgraph(tree, module),
                    "suppress": suppress_payload(
                        parse_suppressions(lines, tree)
                    ),
                }
        self.store.put(key, "analysis_harvest", payload)
        return digest, source, payload, 0

    # ---- driver --------------------------------------------------------

    def analyze_files(self, files: list[Path]) -> AnalysisResult:
        from repro.engine.analysis_jobs import AnalyzeFileJob
        from repro.engine.executor import ExecutorConfig, JobExecutor
        from repro.engine.jobs import canonical_json, content_hash

        result = AnalysisResult(files_scanned=len(files))
        harvest_hits = 0
        digests: dict[str, str] = {}
        harvests: dict[str, dict] = {}
        sources: dict[str, str] = {}
        for path in files:
            rel = rel_posix(path, self.root)
            try:
                digest, source, payload, hit = self._harvest_file(path, rel)
            except OSError as exc:
                result.parse_errors += 1
                result.findings.append(
                    Finding(
                        rule="RPR000",
                        path=rel,
                        line=1,
                        col=1,
                        message=f"file could not be read: {exc}",
                        severity=Severity.ERROR,
                    )
                )
                continue
            harvest_hits += hit
            digests[rel] = digest
            harvests[rel] = payload
            if source is not None:
                sources[rel] = source

        graph = ImportGraph()
        for rel, payload in harvests.items():
            if payload.get("ok") and payload.get("module"):
                graph.edges[payload["module"]] = set(payload["imports"])
        scope = graph.reachable_from(DETERMINISM_ROOTS)
        scope_global = not scope

        table = SignatureTable.merge(
            [p["signatures"] for p in harvests.values() if p.get("ok")]
        )
        sig_json = canonical_json(table.as_payload())
        sig_hash = hashlib.sha256(sig_json.encode()).hexdigest()

        file_rules = tuple(r for r in self.rules if r.scope == "file")
        project_rules = tuple(r for r in self.rules if r.scope == "project")
        interval_rules = tuple(r for r in self.rules if r.scope == "intervals")
        rule_ids = tuple(rule.id for rule in file_rules)
        jobs: list[AnalyzeFileJob] = []
        for rel, payload in harvests.items():
            if not payload.get("ok"):
                result.parse_errors += 1
                result.findings.append(
                    Finding(
                        rule="RPR000",
                        path=rel,
                        line=payload.get("line") or 1,
                        col=1,
                        message=f"file could not be parsed: {payload['error']}",
                        severity=Severity.ERROR,
                    )
                )
                continue
            module = payload.get("module")
            jobs.append(
                AnalyzeFileJob(
                    rel_path=rel,
                    content_hash=digests[rel],
                    module=module,
                    rule_ids=rule_ids,
                    ruleset_version=RULESET_VERSION,
                    in_scope=bool(module and module in scope),
                    scope_global=scope_global,
                    sig_hash=sig_hash,
                    source=sources[rel],
                    sig_json=sig_json,
                )
            )

        executor = JobExecutor(
            config=ExecutorConfig(max_workers=self.workers),
            store=self.store,
        )
        outcomes = executor.execute(list(jobs))

        analyzed = cached = failed = 0
        for job in jobs:
            outcome = outcomes[job.cache_key]
            if outcome.status == "failed":
                failed += 1
                result.findings.append(
                    Finding(
                        rule="RPR000",
                        path=job.rel_path,
                        line=1,
                        col=1,
                        message=f"analysis job failed: {outcome.error}",
                        severity=Severity.ERROR,
                    )
                )
                continue
            if outcome.status == "cached":
                cached += 1
            else:
                analyzed += 1
            for entry in outcome.result["findings"]:
                result.findings.append(_finding_from_payload(job.rel_path, entry))
            for entry in outcome.result["suppressed"]:
                result.suppressed.append(
                    _finding_from_payload(job.rel_path, entry)
                )

        callgraph_status = "skipped"
        callgraph_pass_s = 0.0
        if project_rules:
            start = time.perf_counter()
            callgraph_status = self._project_pass(
                project_rules, harvests, sources, sig_hash, result
            )
            callgraph_pass_s = time.perf_counter() - start

        range_status = "skipped"
        range_pass_s = 0.0
        intervals_hits = intervals_misses = 0
        if interval_rules:
            start = time.perf_counter()
            range_status, intervals_hits, intervals_misses = self._range_pass(
                interval_rules,
                harvests,
                sources,
                digests,
                table,
                sig_hash,
                result,
            )
            range_pass_s = time.perf_counter() - start

        result.findings.sort(key=Finding.sort_key)
        result.suppressed.sort(key=Finding.sort_key)
        result.stats = {
            "driver": "incremental",
            "files": len(files),
            "analyzed": analyzed,
            "cached": cached,
            "failed": failed,
            "harvest_hits": harvest_hits,
            "harvest_misses": len(harvests) - harvest_hits,
            "callgraph_rules": len(project_rules),
            "callgraph_pass": callgraph_status,
            "callgraph_pass_s": round(callgraph_pass_s, 4),
            "range_rules": len(interval_rules),
            "range_pass": range_status,
            "range_pass_s": round(range_pass_s, 4),
            "intervals_hits": intervals_hits,
            "intervals_misses": intervals_misses,
            "workers": self.workers,
            "store": self.store.stats.as_dict(),
        }
        return result

    # ---- call-graph (project) layer ------------------------------------

    def _project_pass(
        self,
        project_rules: tuple[Rule, ...],
        harvests: dict[str, dict],
        sources: dict[str, str],
        sig_hash: str,
        result: AnalysisResult,
    ) -> str:
        """Run (or replay) the interprocedural pass; returns its status.

        The pass result is cached as ONE store entry keyed by the
        digest of every non-test file's call-graph facts *and*
        suppression map, the signature-table digest, and the
        rule/format versions.  A warm unchanged tree replays the cached
        findings without building the graph; a body edit changes one
        file's facts and recomputes the pass in-process from the (all
        cached) harvests; a signature edit flips ``sig_hash`` and so
        invalidates this layer together with every per-file result —
        the promised signature-digest invalidation.
        """
        from repro.engine.jobs import canonical_json, content_hash

        cg_facts = {
            rel: {
                "callgraph": payload["callgraph"],
                "suppress": payload["suppress"],
            }
            for rel, payload in sorted(harvests.items())
            if payload.get("ok") and not is_test_path(rel)
        }
        cg_hash = hashlib.sha256(
            canonical_json(cg_facts).encode()
        ).hexdigest()
        pass_key = content_hash(
            {
                "kind": "analysis_callgraph_pass",
                "hv": HARVEST_VERSION,
                "cgv": CALLGRAPH_VERSION,
                "rv": RULESET_VERSION,
                "rules": [rule.id for rule in project_rules],
                "cg": cg_hash,
                "sig": sig_hash,
            }
        )
        cached = self.store.get(pass_key)
        if cached is not None:
            for entry in cached["findings"]:
                result.findings.append(
                    _finding_from_payload(entry["path"], entry)
                )
            for entry in cached["suppressed"]:
                result.suppressed.append(
                    _finding_from_payload(entry["path"], entry)
                )
            return "cached"

        snapshot = ProjectSnapshot.build(
            harvests={
                rel: (harvests[rel].get("module"), facts["callgraph"])
                for rel, facts in cg_facts.items()
            },
            lines={
                rel: sources[rel].splitlines()
                for rel in cg_facts
                if rel in sources
            },
            suppress={
                rel: suppress_from_payload(facts["suppress"])
                for rel, facts in cg_facts.items()
            },
        )
        findings, suppressed = run_project_rules(project_rules, snapshot)
        self.store.put(
            pass_key,
            "analysis_callgraph_pass",
            {
                "findings": [
                    {**_finding_payload(f), "path": f.path} for f in findings
                ],
                "suppressed": [
                    {**_finding_payload(f), "path": f.path} for f in suppressed
                ],
            },
        )
        result.findings.extend(findings)
        result.suppressed.extend(suppressed)
        return "computed"

    # ---- interval (range) layer ----------------------------------------

    def _interval_facts(
        self, rel: str, digest: str, source: str
    ) -> tuple[dict, int]:
        """(facts, store hit) for one file's interval harvest."""
        from repro.engine.jobs import content_hash

        key = content_hash(
            {
                "kind": "analysis_intervals",
                "v": INTERVALS_VERSION,
                "path": rel,
                "content": digest,
            }
        )
        cached = self.store.get(key)
        if cached is not None:
            return cached, 1
        tree = ast.parse(source, filename=rel)
        facts = harvest_interval_facts(
            tree, module_name_for(rel), source.splitlines()
        )
        self.store.put(key, "analysis_intervals", facts)
        return facts, 0

    def _range_pass(
        self,
        interval_rules: tuple[Rule, ...],
        harvests: dict[str, dict],
        sources: dict[str, str],
        digests: dict[str, str],
        table: SignatureTable,
        sig_hash: str,
        result: AnalysisResult,
    ) -> tuple[str, int, int]:
        """Run (or replay) the project range check; returns its status.

        Cached as one entry keyed by every non-test file's interval
        facts *and* suppression map, plus the signature-table digest —
        which covers the declared physical-range table, so editing an
        envelope in ``constants.PHYSICAL_RANGES`` recomputes the pass.
        """
        from repro.engine.jobs import canonical_json, content_hash

        hits = misses = 0
        facts_by_path: dict[str, dict] = {}
        keyed: dict[str, dict] = {}
        for rel, payload in sorted(harvests.items()):
            if not payload.get("ok") or is_test_path(rel) or rel not in sources:
                continue
            facts, hit = self._interval_facts(rel, digests[rel], sources[rel])
            facts_by_path[rel] = facts
            keyed[rel] = {"facts": facts, "suppress": payload["suppress"]}
            hits += hit
            misses += 1 - hit
        facts_hash = hashlib.sha256(canonical_json(keyed).encode()).hexdigest()
        pass_key = content_hash(
            {
                "kind": "analysis_range_pass",
                "hv": HARVEST_VERSION,
                "iv": INTERVALS_VERSION,
                "rv": RULESET_VERSION,
                "rules": [rule.id for rule in interval_rules],
                "facts": facts_hash,
                "sig": sig_hash,
            }
        )
        cached = self.store.get(pass_key)
        if cached is not None:
            for entry in cached["findings"]:
                result.findings.append(
                    _finding_from_payload(entry["path"], entry)
                )
            for entry in cached["suppressed"]:
                result.suppressed.append(
                    _finding_from_payload(entry["path"], entry)
                )
            return "cached", hits, misses

        payloads = run_range_pass(facts_by_path, table)
        findings: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in range_findings(interval_rules, payloads):
            suppress = harvests[finding.path].get("suppress", {})
            if finding.rule in set(suppress.get(str(finding.line), ())):
                suppressed.append(finding)
            else:
                findings.append(finding)
        self.store.put(
            pass_key,
            "analysis_range_pass",
            {
                "findings": [
                    {**_finding_payload(f), "path": f.path} for f in findings
                ],
                "suppressed": [
                    {**_finding_payload(f), "path": f.path} for f in suppressed
                ],
            },
        )
        result.findings.extend(findings)
        result.suppressed.extend(suppressed)
        return "computed", hits, misses
