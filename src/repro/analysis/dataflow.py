"""Intraprocedural unit-dataflow analysis over Python AST.

An abstract interpreter whose abstract values are physical units from
:mod:`repro.analysis.unitsig`.  Each function body (and the module
body) is executed once, statement by statement:

- parameters seed the environment from their names (the RPR001 suffix
  convention) — ``temperature_k`` enters as kelvin;
- assignments propagate inferred units to locals, so ``t = cond.temperature_k``
  makes later uses of ``t`` kelvin without any suffix on ``t``;
- arithmetic follows the lattice's algebra: same-unit ``+``/``-`` keeps
  the unit, subtracting two absolute temperatures yields a *delta*,
  multiplying by a dimensionless value keeps the unit, dividing
  device-hours by a time yields a FIT rate (and by a rate, a time);
- calls consult the cross-module signature table for parameter and
  return units; keyword names carry expected units even for calls the
  table cannot resolve.

Mismatches surface as :class:`UnitDiagnostic` records, classified for
the three flow rules: ``mismatch`` (RPR101, additive/comparison unit
clashes, including kelvin-vs-Celsius), ``call`` (RPR102, a
wrong-dimension argument), and ``fit_mttf`` (RPR103, a time value
flowing where a FIT rate is consumed or vice versa).  The analysis is
deliberately optimistic: a diagnostic fires only when *both* sides'
units are confidently known, so unknown values never produce noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.unitsig import (
    DELTA_K,
    DIMENSIONLESS,
    FIT,
    HOURS,
    Dim,
    SignatureTable,
    Unit,
    unit_by_name,
    unit_from_name,
)

#: Abstract value of a bare numeric literal: compatible with any unit.
NUMBER = Unit("<number>", Dim.DIMENSIONLESS)


@dataclass(frozen=True)
class UnitDiagnostic:
    """One unit violation found by the dataflow pass.

    Attributes:
        kind: ``mismatch`` (RPR101), ``call`` (RPR102), or
            ``fit_mttf`` (RPR103).
        line / col: 1-based anchor of the offending expression.
        message: human-readable description naming both units.
    """

    kind: str
    line: int
    col: int
    message: str


def build_import_map(tree: ast.Module, module: str | None) -> dict[str, str]:
    """Local name -> dotted import target, from one file's imports.

    Shared by the unit and interval interpreters; relative imports are
    anchored at ``module``'s package.
    """
    out: dict[str, str] = {}
    package = (module or "").split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = package[: len(package) - (node.level - 1)]
                base = ".".join(anchor + ([node.module] if node.module else []))
            for alias in node.names:
                out[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
    return out


def _known(unit: Unit | None) -> bool:
    return unit is not None and unit is not NUMBER and unit is not DIMENSIONLESS


def _is_time_rate_pair(a: Unit, b: Unit) -> bool:
    return {a.dim, b.dim} == {Dim.TIME, Dim.RATE}


def _mismatch_kind(a: Unit, b: Unit) -> str:
    return "fit_mttf" if _is_time_rate_pair(a, b) else "mismatch"


def _describe_clash(a: Unit, b: Unit) -> str:
    if {a.dim, b.dim} == {Dim.TEMPERATURE} and a != b:
        return f"mixes kelvin and Celsius ({a} vs {b})"
    if _is_time_rate_pair(a, b):
        return (
            f"mixes a time with a failure rate ({a} vs {b}); convert with "
            "mttf_hours_to_fit()/fit_to_mttf_hours()"
        )
    if a.dim == b.dim:
        return f"mixes scales of the same dimension ({a} vs {b})"
    return f"mixes {a.dim.value} with {b.dim.value} ({a} vs {b})"


class UnitInterpreter:
    """Runs the unit-dataflow pass over one parsed file.

    Args:
        table: the project-wide signature table.
        module: the file's dotted module name (or None).
    """

    def __init__(self, table: SignatureTable, module: str | None) -> None:
        self.table = table
        self.module = module
        self.diagnostics: list[UnitDiagnostic] = []
        self._imports: dict[str, str] = {}

    # ---- entry point ---------------------------------------------------

    def run(self, tree: ast.Module) -> list[UnitDiagnostic]:
        self._imports = build_import_map(tree, self.module)
        self._exec_block(tree.body, {})
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                env = self._seed_env(node)
                self._exec_block(node.body, env)
        self.diagnostics.sort(key=lambda d: (d.line, d.col))
        return self.diagnostics

    def _seed_env(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, Unit | None]:
        env: dict[str, Unit | None] = {}
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            env[arg.arg] = unit_from_name(arg.arg)
        return env

    # ---- statements ----------------------------------------------------

    def _exec_block(self, stmts: list[ast.stmt], env: dict) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env)

    @staticmethod
    def _merge(base: dict, *branches: dict) -> None:
        """Join branch environments into ``base`` (conflicts -> unknown)."""
        names = set(base)
        for branch in branches:
            names |= set(branch)
        for name in names:
            values = {
                branch.get(name) for branch in (base, *branches) if name in branch
            }
            base[name] = values.pop() if len(values) == 1 else None

    def _exec_stmt(self, stmt: ast.stmt, env: dict) -> None:
        if isinstance(stmt, ast.Assign):
            unit = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, unit, env)
        elif isinstance(stmt, ast.AnnAssign):
            unit = self._eval(stmt.value, env) if stmt.value is not None else None
            self._bind(stmt.target, unit, env)
        elif isinstance(stmt, ast.AugAssign):
            unit = self._eval(
                ast.copy_location(
                    ast.BinOp(left=stmt.target, op=stmt.op, right=stmt.value),
                    stmt,
                ),
                env,
            )
            self._bind(stmt.target, unit, env)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self._eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env, else_env = dict(env), dict(env)
            self._exec_block(stmt.body, then_env)
            self._exec_block(stmt.orelse, else_env)
            self._merge(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, env)
            self._bind(stmt.target, None, env)
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, body_env)
            self._merge(env, body_env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, body_env)
            self._merge(env, body_env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env)
            handler_envs = []
            for handler in stmt.handlers:
                handler_env = dict(env)
                self._exec_block(handler.body, handler_env)
                handler_envs.append(handler_env)
            self._merge(env, *handler_envs)
            self._exec_block(stmt.orelse, env)
            self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # FunctionDef / ClassDef bodies are analyzed separately by run().

    def _bind(self, target: ast.expr, unit: Unit | None, env: dict) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = unit
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None, env)
        # attribute/subscript targets: not tracked.

    # ---- expressions ---------------------------------------------------

    def _eval(self, node: ast.expr, env: dict) -> Unit | None:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return DIMENSIONLESS
            if isinstance(node.value, (int, float)):
                return NUMBER
            return None
        if isinstance(node, ast.Name):
            return self._name_unit(node.id, env)
        if isinstance(node, ast.Attribute):
            self._eval(node.value, env)
            constant = self.table.constant_unit(node.attr)
            if constant is not None:
                return constant
            return unit_from_name(node.attr)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            inner = self._eval(node.operand, env)
            return inner if isinstance(node.op, (ast.USub, ast.UAdd)) else None
        if isinstance(node, ast.Compare):
            self._eval_compare(node, env)
            return DIMENSIONLESS
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            a = self._eval(node.body, env)
            b = self._eval(node.orelse, env)
            return a if a == b else None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value, env)
            return None
        if isinstance(node, ast.Subscript):
            # A container named for its values: power_w_by_block[b] -> W.
            unit = self._eval(node.value, env)
            self._eval(node.slice, env)
            return unit
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._eval(elt, env)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key, env)
            for value in node.values:
                self._eval(value, env)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._eval_comprehension(node.elt, node.generators, env)
            return None
        if isinstance(node, ast.DictComp):
            self._eval_comprehension(node.key, node.generators, env)
            self._eval(node.value, dict(env))
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value, env)
            return None
        if isinstance(node, ast.Lambda):
            return None
        return None

    def _eval_comprehension(self, elt: ast.expr, generators, env: dict) -> None:
        inner = dict(env)
        for gen in generators:
            self._eval(gen.iter, inner)
            self._bind(gen.target, None, inner)
            for cond in gen.ifs:
                self._eval(cond, inner)
        self._eval(elt, inner)

    def _name_unit(self, name: str, env: dict) -> Unit | None:
        if name in env and env[name] is not None:
            return env[name]
        constant = self.table.constant_unit(name)
        if constant is not None:
            return constant
        if name in env:
            # Assigned from an expression of unknown unit: trust the
            # assignment over the name so stale suffixes cannot lie.
            return None
        return unit_from_name(name)

    # ---- arithmetic ----------------------------------------------------

    #: Metric-prefix shifts: multiplying or dividing a unit-carrying
    #: value by one of these literals is a scale conversion (kHz -> Hz,
    #: V -> mV), so the result's unit is deliberately *unknown* rather
    #: than inherited from the operand.
    _SCALE_FACTORS = frozenset(
        {10.0**n for n in (3, 6, 9, 12)} | {10.0**-n for n in (3, 6, 9, 12)}
    )

    @classmethod
    def _is_scale_literal(cls, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
            and float(node.value) in cls._SCALE_FACTORS
        )

    def _eval_binop(self, node: ast.BinOp, env: dict) -> Unit | None:
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return self._additive(node, left, right)
        if isinstance(node.op, ast.Mult):
            if _known(left) and self._is_scale_literal(node.right):
                return None
            if _known(right) and self._is_scale_literal(node.left):
                return None
            if left in (NUMBER, DIMENSIONLESS):
                return right if right is not NUMBER else NUMBER
            if right in (NUMBER, DIMENSIONLESS):
                return left
            return None
        if isinstance(node.op, ast.Div):
            if _known(left) and self._is_scale_literal(node.right):
                return None
            if left is not None and left is right:
                return DIMENSIONLESS
            if left is not None and right is not None and left.dim == right.dim:
                return None  # same dimension, different scale: unknown ratio
            if left is not None and left.dim == Dim.DEVICE_HOURS:
                if right is not None and right.dim == Dim.TIME:
                    return FIT
                if right is not None and right.dim == Dim.RATE:
                    return HOURS
                return None
            if right in (NUMBER, DIMENSIONLESS):
                return left
            return None
        return None

    def _additive(
        self, node: ast.BinOp, left: Unit | None, right: Unit | None
    ) -> Unit | None:
        if left is None or right is None:
            return left if right is None else right
        if left is NUMBER:
            return right
        if right is NUMBER:
            return left
        is_sub = isinstance(node.op, ast.Sub)
        # Absolute temperatures and deltas have their own algebra.
        if left.dim == Dim.TEMPERATURE and right.dim == Dim.TEMPERATURE:
            if left != right:
                self._clash(node, left, right)
                return None
            return DELTA_K if is_sub else left
        if left.dim == Dim.TEMPERATURE and right is DELTA_K:
            return left
        if left is DELTA_K and right.dim == Dim.TEMPERATURE:
            if is_sub:
                self._clash(node, left, right)
                return None
            return right
        if left == right:
            return left
        if left is DIMENSIONLESS or right is DIMENSIONLESS:
            return None
        self._clash(node, left, right)
        return None

    def _eval_compare(self, node: ast.Compare, env: dict) -> None:
        operands = [node.left, *node.comparators]
        units = [self._eval(op, env) for op in operands]
        for i in range(len(node.ops)):
            a, b = units[i], units[i + 1]
            if a is None or b is None or NUMBER in (a, b):
                continue
            if a is DIMENSIONLESS or b is DIMENSIONLESS:
                continue
            if a != b:
                self._clash(operands[i + 1], a, b, what="comparison")

    def _clash(
        self, node: ast.AST, a: Unit, b: Unit, what: str = "expression"
    ) -> None:
        self.diagnostics.append(
            UnitDiagnostic(
                kind=_mismatch_kind(a, b),
                line=node.lineno,
                col=node.col_offset + 1,
                message=f"{what} {_describe_clash(a, b)}",
            )
        )

    # ---- calls ---------------------------------------------------------

    def _resolve_signature(self, func: ast.expr) -> tuple[str, dict] | None:
        """(qualname, signature) for a call target, if the table knows it."""
        if isinstance(func, ast.Name):
            target = self._imports.get(func.id)
            candidates = [target] if target else []
            if self.module is not None:
                candidates.append(f"{self.module}.{func.id}")
            for cand in candidates:
                if cand and cand in self.table.functions:
                    return cand, self.table.functions[cand]
            return None
        if isinstance(func, ast.Attribute):
            parts: list[str] = []
            base = func
            while isinstance(base, ast.Attribute):
                parts.append(base.attr)
                base = base.value
            if isinstance(base, ast.Name):
                root = self._imports.get(base.id, base.id)
                dotted = ".".join([root, *reversed(parts)])
                if dotted in self.table.functions:
                    return dotted, self.table.functions[dotted]
            qual = self.table.methods.get(func.attr)
            if qual is not None:
                return qual, self.table.functions[qual]
        return None

    def _eval_call(self, node: ast.Call, env: dict) -> Unit | None:
        resolved = self._resolve_signature(node.func)
        params: list[list] = resolved[1]["params"] if resolved else []
        callee = resolved[0] if resolved else None
        by_name = {entry[0]: entry[1] for entry in params}

        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                self._eval(arg.value, env)
                continue
            actual = self._eval(arg, env)
            if i < len(params):
                self._check_arg(arg, params[i][0], params[i][1], actual, callee)
        for kw in node.keywords:
            actual = self._eval(kw.value, env)
            if kw.arg is None:
                continue
            expected_name = by_name.get(kw.arg)
            if expected_name is None and kw.arg not in by_name:
                inferred = unit_from_name(kw.arg)
                expected_name = inferred.name if inferred else None
            self._check_arg(kw.value, kw.arg, expected_name, actual, callee)

        if resolved is not None and resolved[1].get("return"):
            return unit_by_name(resolved[1]["return"])
        # Fall back to the callee's own name (x.mttf_years() -> years).
        tail = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else node.func.id
            if isinstance(node.func, ast.Name)
            else None
        )
        return unit_from_name(tail) if tail else None

    def _check_arg(
        self,
        node: ast.expr,
        param: str,
        expected_name: str | None,
        actual: Unit | None,
        callee: str | None,
    ) -> None:
        expected = unit_by_name(expected_name) if expected_name else None
        if expected is None or actual is None or actual is NUMBER:
            return
        if expected is DIMENSIONLESS or actual is DIMENSIONLESS:
            return
        if expected == actual:
            return
        where = f"argument {param!r}" + (f" of {callee}()" if callee else "")
        kind = "fit_mttf" if _is_time_rate_pair(expected, actual) else "call"
        self.diagnostics.append(
            UnitDiagnostic(
                kind=kind,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    f"{where} expects {expected} but receives "
                    f"{actual} ({_describe_clash(expected, actual)})"
                ),
            )
        )


def analyze_units(
    tree: ast.Module, table: SignatureTable, module: str | None
) -> list[UnitDiagnostic]:
    """Run the unit-dataflow pass over one parsed file."""
    return UnitInterpreter(table, module).run(tree)
