"""Core floorplan: structure placement on the 4.5 mm x 4.5 mm die.

The paper feeds HotSpot a MIPS R10000-like floorplan (without the L2)
scaled down to 20.2 mm^2.  We build the same thing with a deterministic
slicing layout: structures are packed into vertical columns of balanced
area; each column spans the full die height and each block spans its
column's width.  The resulting rectangles provide the areas, adjacencies,
and shared-edge lengths the RC network needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.technology import STRUCTURES, StructureSpec, TechnologyParameters, DEFAULT_TECHNOLOGY
from repro.errors import ThermalError

#: Number of columns in the slicing layout (three columns roughly matches
#: the R10000's frontend / execution / memory stripes).
_N_COLUMNS = 3


@dataclass(frozen=True)
class Block:
    """One placed rectangle of the floorplan (all units millimetres).

    Attributes:
        name: the structure occupying the rectangle.
        x, y: lower-left corner.
        width, height: rectangle extent.
    """

    name: str
    x: float
    y: float
    width: float
    height: float

    @property
    def area_mm2(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def shared_edge_with(self, other: "Block") -> float:
        """Length of the boundary shared with ``other`` (0 if not adjacent).

        Two blocks are adjacent when they touch along a vertical or
        horizontal edge with positive overlap.
        """
        tol = 1e-9
        # Vertical contact (side by side).
        if abs(self.x + self.width - other.x) < tol or abs(other.x + other.width - self.x) < tol:
            lo = max(self.y, other.y)
            hi = min(self.y + self.height, other.y + other.height)
            if hi - lo > tol:
                return hi - lo
        # Horizontal contact (stacked).
        if abs(self.y + self.height - other.y) < tol or abs(other.y + other.height - self.y) < tol:
            lo = max(self.x, other.x)
            hi = min(self.x + self.width, other.x + other.width)
            if hi - lo > tol:
                return hi - lo
        return 0.0


class Floorplan:
    """A placed floorplan with adjacency queries.

    Args:
        blocks: the placed rectangles; names must be unique and areas must
            tile the die (checked loosely).
        die_width_mm / die_height_mm: die extent.
    """

    def __init__(self, blocks: list[Block], die_width_mm: float, die_height_mm: float) -> None:
        names = [b.name for b in blocks]
        if len(set(names)) != len(names):
            raise ThermalError("floorplan block names must be unique")
        total = sum(b.area_mm2 for b in blocks)
        die = die_width_mm * die_height_mm
        if abs(total - die) > 0.05 * die:
            raise ThermalError(
                f"blocks cover {total:.2f} mm^2 of a {die:.2f} mm^2 die"
            )
        self.blocks = list(blocks)
        self.die_width_mm = die_width_mm
        self.die_height_mm = die_height_mm
        self._by_name = {b.name: b for b in blocks}

    def __iter__(self):
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def block(self, name: str) -> Block:
        """Look up a block by structure name.

        Raises:
            ThermalError: if no such block exists.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise ThermalError(f"no floorplan block named {name!r}") from None

    def adjacent_pairs(self) -> list[tuple[Block, Block, float]]:
        """All adjacent block pairs with their shared-edge lengths."""
        pairs = []
        for i, a in enumerate(self.blocks):
            for b in self.blocks[i + 1 :]:
                edge = a.shared_edge_with(b)
                if edge > 0.0:
                    pairs.append((a, b, edge))
        return pairs


def build_default_floorplan(
    technology: TechnologyParameters = DEFAULT_TECHNOLOGY,
    structures: tuple[StructureSpec, ...] = STRUCTURES,
) -> Floorplan:
    """Pack the structure inventory into the square die.

    Greedy balanced-area assignment into three columns, preserving the
    declaration order within each column.  Column widths are proportional
    to column area so every column spans the full die height.
    """
    die = technology.die_edge_mm
    total_area = sum(s.area_mm2 for s in structures)
    if total_area <= 0.0:
        raise ThermalError("floorplan needs structures with positive total area")
    # Greedy: put the next structure into the currently lightest column.
    columns: list[list[StructureSpec]] = [[] for _ in range(_N_COLUMNS)]
    column_area = [0.0] * _N_COLUMNS
    for spec in sorted(structures, key=lambda s: -s.area_mm2):
        i = column_area.index(min(column_area))
        columns[i].append(spec)
        column_area[i] += spec.area_mm2
    blocks: list[Block] = []
    x = 0.0
    for specs, area in zip(columns, column_area):
        if not specs:
            continue
        width = die * (area / total_area)
        y = 0.0
        col_height = die
        for spec in specs:
            height = col_height * (spec.area_mm2 / area)
            blocks.append(Block(spec.name, x=x, y=y, width=width, height=height))
            y += height
        x += width
    return Floorplan(blocks, die_width_mm=die, die_height_mm=die)
