"""Thermal model (the HotSpot substitute).

A floorplan-driven RC thermal network: every architectural structure is a
block with a vertical conduction path (silicon + thermal interface) to a
copper heat spreader, lateral conduction to its floorplan neighbours, and
a spreader -> heat-sink -> ambient stack.  Steady-state solves drive the
per-interval RAMP accounting; the transient integrator and the paper's
two-pass heat-sink initialisation are provided for longer-horizon
studies.
"""

from repro.thermal.floorplan import Floorplan, Block, build_default_floorplan
from repro.thermal.rc_network import ThermalRCNetwork, ThermalParameters
from repro.thermal.solver import SteadyStateSolver, TransientSolver
from repro.thermal.heatsink import TwoPassThermalModel
from repro.thermal.report import render_floorplan, render_thermal_map

__all__ = [
    "Floorplan",
    "Block",
    "build_default_floorplan",
    "ThermalRCNetwork",
    "ThermalParameters",
    "SteadyStateSolver",
    "TransientSolver",
    "TwoPassThermalModel",
    "render_floorplan",
    "render_thermal_map",
]
