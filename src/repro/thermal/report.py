"""Text rendering of floorplans and thermal fields.

A terminal-friendly substitute for HotSpot's thermal-map plots: the die
is rasterised onto a character grid, each cell showing either the block
occupying it or a temperature glyph.  Useful for eyeballing hotspot
placement in examples and bug reports without any plotting dependency.
"""

from __future__ import annotations

from repro.errors import ThermalError
from repro.thermal.floorplan import Floorplan

#: Glyph ramp from coolest to hottest cell.
HEAT_GLYPHS = " .:-=+*#%@"


def render_floorplan(floorplan: Floorplan, width: int = 48, height: int = 24) -> str:
    """ASCII map of block placement (each cell = first letter of a block).

    Raises:
        ThermalError: on a non-positive raster size.
    """
    if width <= 0 or height <= 0:
        raise ThermalError("raster size must be positive")
    grid = [["?" for _ in range(width)] for _ in range(height)]
    for block in floorplan:
        letter = block.name[0].upper()
        x0 = int(block.x / floorplan.die_width_mm * width)
        x1 = max(x0 + 1, int((block.x + block.width) / floorplan.die_width_mm * width))
        y0 = int(block.y / floorplan.die_height_mm * height)
        y1 = max(y0 + 1, int((block.y + block.height) / floorplan.die_height_mm * height))
        for y in range(y0, min(y1, height)):
            for x in range(x0, min(x1, width)):
                grid[y][x] = letter
    # Render with y increasing upward (row 0 at the bottom of the die).
    lines = ["".join(row) for row in reversed(grid)]
    legend = ", ".join(f"{b.name[0].upper()}={b.name}" for b in floorplan)
    return "\n".join(lines) + "\n" + legend


def render_thermal_map(
    floorplan: Floorplan,
    temperatures: dict[str, float],
    width: int = 48,
    height: int = 24,
) -> str:
    """ASCII heat map: glyph density encodes each block's temperature.

    The scale is normalised to the supplied field (coolest block = the
    first glyph, hottest = the last), with the numeric range printed in
    the footer.

    Raises:
        ThermalError: if a block's temperature is missing.
    """
    missing = {b.name for b in floorplan} - set(temperatures)
    if missing:
        raise ThermalError(f"temperatures missing blocks: {sorted(missing)}")
    t_lo = min(temperatures[b.name] for b in floorplan)
    t_hi = max(temperatures[b.name] for b in floorplan)
    span = max(t_hi - t_lo, 1e-9)

    def glyph(name: str) -> str:
        level = (temperatures[name] - t_lo) / span
        return HEAT_GLYPHS[min(len(HEAT_GLYPHS) - 1, int(level * len(HEAT_GLYPHS)))]

    grid = [[" " for _ in range(width)] for _ in range(height)]
    for block in floorplan:
        g = glyph(block.name)
        x0 = int(block.x / floorplan.die_width_mm * width)
        x1 = max(x0 + 1, int((block.x + block.width) / floorplan.die_width_mm * width))
        y0 = int(block.y / floorplan.die_height_mm * height)
        y1 = max(y0 + 1, int((block.y + block.height) / floorplan.die_height_mm * height))
        for y in range(y0, min(y1, height)):
            for x in range(x0, min(x1, width)):
                grid[y][x] = g
    lines = ["".join(row) for row in reversed(grid)]
    hottest = max(temperatures, key=temperatures.get)
    footer = (
        f"scale '{HEAT_GLYPHS[0]}'={t_lo:.1f}K .. '{HEAT_GLYPHS[-1]}'={t_hi:.1f}K; "
        f"hottest: {hottest} ({t_hi:.1f}K)"
    )
    return "\n".join(lines) + "\n" + footer
