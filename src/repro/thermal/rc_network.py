"""Thermal RC network construction.

HotSpot-style lumped model.  Nodes: one per floorplan block, plus a heat
spreader node, a heat-sink node, and the ambient (a fixed-temperature
boundary).  Conduction paths:

- block -> spreader: vertical conduction through the silicon die and the
  thermal interface material, proportional to block area;
- block <-> block: lateral conduction through the silicon, proportional
  to shared edge length over centre distance;
- spreader -> sink: spreading resistance of the copper stack;
- sink -> ambient: the convective resistance of the cooling solution —
  the main knob that positions average die temperature, calibrated so the
  paper's hottest application peaks near 400 K.

Capacitances use volumetric heat capacities, giving millisecond block
time constants and a tens-of-seconds sink time constant — the separation
the paper's two-pass heat-sink initialisation relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import AMBIENT_TEMPERATURE_K
from repro.errors import ThermalError
from repro.thermal.floorplan import Floorplan


@dataclass(frozen=True)
class ThermalParameters:
    """Physical constants of the package stack.

    Attributes:
        r_vertical_k_mm2_per_w: area-specific vertical resistance from a
            block's junction to the spreader (silicon + TIM), in
            K·mm^2/W.
        k_lateral_w_per_mm_k: effective lateral sheet conductivity
            (silicon conductivity times die thickness), in W/(mm·K)·mm.
        r_spreader_k_per_w: spreader -> sink resistance.
        r_convection_k_per_w: sink -> ambient convective resistance.
        c_block_j_per_k_mm2: block heat capacity per mm^2 of area.
        c_spreader_j_per_k: spreader lumped heat capacity.
        c_sink_j_per_k: heat-sink lumped heat capacity.
        ambient_k: ambient air temperature.
    """

    r_vertical_k_mm2_per_w: float = 20.0
    k_lateral_w_per_mm_k: float = 0.03
    r_spreader_k_per_w: float = 0.18
    r_convection_k_per_w: float = 0.25
    c_block_j_per_k_mm2: float = 8.75e-4
    c_spreader_j_per_k: float = 25.0
    c_sink_j_per_k: float = 280.0
    ambient_k: float = AMBIENT_TEMPERATURE_K

    def __post_init__(self) -> None:
        positive = (
            self.r_vertical_k_mm2_per_w,
            self.k_lateral_w_per_mm_k,
            self.r_spreader_k_per_w,
            self.r_convection_k_per_w,
            self.c_block_j_per_k_mm2,
            self.c_spreader_j_per_k,
            self.c_sink_j_per_k,
        )
        if any(v <= 0.0 for v in positive):
            raise ThermalError("all thermal parameters must be positive")


DEFAULT_THERMAL_PARAMETERS = ThermalParameters()


class ThermalRCNetwork:
    """The assembled conductance matrix and capacitance vector.

    Node ordering: floorplan blocks in floorplan order, then the spreader
    node, then the sink node.  Ambient is a boundary condition, not a
    node.

    Attributes:
        conductance: (n+2, n+2) symmetric conductance Laplacian plus the
            ambient coupling on the diagonal.
        ambient_injection: vector g_i * T_ambient for the boundary terms.
        capacitance: per-node heat capacities (J/K).
    """

    def __init__(
        self,
        floorplan: Floorplan,
        params: ThermalParameters = DEFAULT_THERMAL_PARAMETERS,
    ) -> None:
        self.floorplan = floorplan
        self.params = params
        self.block_names = [b.name for b in floorplan]
        n = len(floorplan)
        self.n_blocks = n
        self.spreader_index = n
        self.sink_index = n + 1
        size = n + 2
        g = np.zeros((size, size))

        def couple(i: int, j: int, conductance: float) -> None:
            g[i, i] += conductance
            g[j, j] += conductance
            g[i, j] -= conductance
            g[j, i] -= conductance

        # Vertical block -> spreader paths.
        for i, block in enumerate(floorplan):
            g_v = block.area_mm2 / params.r_vertical_k_mm2_per_w
            couple(i, self.spreader_index, g_v)
        # Lateral block <-> block paths.
        index = {name: i for i, name in enumerate(self.block_names)}
        for a, b, edge in floorplan.adjacent_pairs():
            (ax, ay), (bx, by) = a.center, b.center
            dist = float(np.hypot(ax - bx, ay - by))
            if dist <= 0.0:
                raise ThermalError("coincident block centres")
            couple(index[a.name], index[b.name], params.k_lateral_w_per_mm_k * edge / dist)
        # Package stack.
        couple(self.spreader_index, self.sink_index, 1.0 / params.r_spreader_k_per_w)
        # Sink -> ambient: boundary conductance on the diagonal only.
        g_amb = 1.0 / params.r_convection_k_per_w
        g[self.sink_index, self.sink_index] += g_amb

        self.conductance = g
        self.ambient_injection = np.zeros(size)
        self.ambient_injection[self.sink_index] = g_amb * params.ambient_k

        self.capacitance = np.empty(size)
        for i, block in enumerate(floorplan):
            self.capacitance[i] = params.c_block_j_per_k_mm2 * block.area_mm2
        self.capacitance[self.spreader_index] = params.c_spreader_j_per_k
        self.capacitance[self.sink_index] = params.c_sink_j_per_k

    def power_vector(self, power_w_by_block: dict[str, float]) -> np.ndarray:
        """Assemble the nodal power-injection vector.

        Raises:
            ThermalError: if a power entry names an unknown block or a
                block's power is missing/negative.
        """
        unknown = set(power_w_by_block) - set(self.block_names)
        if unknown:
            raise ThermalError(f"power given for unknown blocks: {sorted(unknown)}")
        p = np.zeros(self.n_blocks + 2)
        for i, name in enumerate(self.block_names):
            value = power_w_by_block.get(name, 0.0)
            if value < 0.0:
                raise ThermalError(f"negative power for block {name!r}")
            p[i] = value
        return p

    def temperatures_dict(self, temps: np.ndarray) -> dict[str, float]:
        """Map a solution vector back to per-structure temperatures."""
        return {name: float(temps[i]) for i, name in enumerate(self.block_names)}
