"""The paper's two-pass heat-sink initialisation methodology.

Section 6.3: the heat sink's RC time constant is far larger than any
feasible simulation, so HotSpot must be initialised with the right sink
temperature.  The paper runs every simulation twice — the first run
collects average per-structure power, which feeds a steady-state solve
for the long-run sink temperature; the second (measured) run starts from
that sink state.

Here the "runs" are the per-phase power assignments: pass one averages
them by time weight and computes the steady sink temperature; pass two
solves each phase's temperature field with the sink pinned there.
"""

from __future__ import annotations

from repro.errors import ThermalError
from repro.thermal.rc_network import ThermalRCNetwork
from repro.thermal.solver import SteadyStateSolver


class TwoPassThermalModel:
    """Per-phase temperatures with a correctly initialised heat sink.

    Args:
        network: the assembled thermal RC network.
    """

    def __init__(self, network: ThermalRCNetwork) -> None:
        self.network = network
        self.solver = SteadyStateSolver(network)

    def average_power(
        self, phase_powers: list[tuple[dict[str, float], float]]
    ) -> dict[str, float]:
        """Time-weighted average per-structure power across phases.

        Args:
            phase_powers: (per-block power, weight) pairs.

        Raises:
            ThermalError: if empty or the weights sum to zero.
        """
        if not phase_powers:
            raise ThermalError("no phases to average")
        total = sum(w for _, w in phase_powers)
        if total <= 0.0:
            raise ThermalError("phase weights must sum to a positive value")
        avg = {name: 0.0 for name in self.network.block_names}
        for power, weight in phase_powers:
            for name in self.network.block_names:
                avg[name] += power.get(name, 0.0) * (weight / total)
        return avg

    def sink_temperature(
        self, phase_powers: list[tuple[dict[str, float], float]]
    ) -> float:
        """Pass one: the long-run steady heat-sink temperature."""
        avg = self.average_power(phase_powers)
        full = self.solver.solve_full(avg)
        return float(full[self.network.sink_index])

    def phase_temperatures(
        self, phase_powers: list[tuple[dict[str, float], float]]
    ) -> list[dict[str, float]]:
        """Pass two: per-phase block temperatures with the sink pinned.

        Returns one temperature dict per input phase, in order.
        """
        sink = self.sink_temperature(phase_powers)
        return [
            self.solver.solve_with_fixed_sink(power, sink)
            for power, _ in phase_powers
        ]
