"""Steady-state and transient solvers for the thermal RC network."""

from __future__ import annotations

import numpy as np

from repro.errors import ThermalError
from repro.thermal.rc_network import ThermalRCNetwork


class SteadyStateSolver:
    """Solves G·T = P + boundary for the equilibrium temperature field.

    The conductance matrix is factorised once and reused across solves,
    which is what makes the DRM sweeps (thousands of thermal evaluations)
    cheap.
    """

    def __init__(self, network: ThermalRCNetwork) -> None:
        self.network = network
        try:
            self._factor = np.linalg.cholesky(network.conductance)
        except np.linalg.LinAlgError as exc:
            raise ThermalError(f"thermal network is not SPD: {exc}") from exc

    def _solve(self, rhs: np.ndarray) -> np.ndarray:
        y = np.linalg.solve(self._factor, rhs)
        return np.linalg.solve(self._factor.T, y)

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Solve against a matrix right-hand side, one column per system.

        Used by the batch kernel to run one grid-wide heat-sink solve
        instead of a Python loop of vector solves.  Each column goes
        through the same factorised substitutions as a single-vector
        :meth:`solve_full`, so results match the scalar path exactly.
        """
        return self._solve(rhs)

    def solve(self, power_w_by_block: dict[str, float]) -> dict[str, float]:
        """Equilibrium block temperatures for a power assignment.

        Returns per-structure temperatures; the spreader and sink nodes
        are available through :meth:`solve_full`.
        """
        return self.network.temperatures_dict(self.solve_full(power_w_by_block))

    def solve_full(self, power_w_by_block: dict[str, float]) -> np.ndarray:
        """Equilibrium temperatures of every node (blocks, spreader, sink)."""
        p = self.network.power_vector(power_w_by_block)
        return self._solve(p + self.network.ambient_injection)

    def solve_with_fixed_sink(
        self, power_w_by_block: dict[str, float], sink_temp_k: float
    ) -> dict[str, float]:
        """Equilibrium with the heat-sink node pinned at ``sink_temp_k``.

        This is the second pass of the paper's methodology: the sink's RC
        time constant is far larger than any simulation, so the sink is
        initialised to its long-run steady temperature and held there
        while the (fast) die nodes equilibrate per interval.
        """
        net = self.network
        k = net.sink_index
        p = net.power_vector(power_w_by_block) + net.ambient_injection
        g = net.conductance
        # Eliminate the pinned node: move its column to the RHS.
        keep = [i for i in range(g.shape[0]) if i != k]
        g_red = g[np.ix_(keep, keep)]
        rhs = p[keep] - g[keep, k] * sink_temp_k
        temps_red = np.linalg.solve(g_red, rhs)
        temps = np.empty(g.shape[0])
        temps[keep] = temps_red
        temps[k] = sink_temp_k
        return net.temperatures_dict(temps)


class TransientSolver:
    """Implicit-Euler integrator for C·dT/dt = P + boundary − G·T.

    Unconditionally stable, so large steps (relative to the block time
    constants) remain well behaved — needed because the sink time
    constant is ~5 orders of magnitude above the block ones.
    """

    def __init__(self, network: ThermalRCNetwork) -> None:
        self.network = network

    def step(
        self, temps: np.ndarray, power_w_by_block: dict[str, float], dt_s: float
    ) -> np.ndarray:
        """Advance the temperature state by ``dt_s`` seconds.

        Raises:
            ThermalError: if ``dt_s`` is not positive.
        """
        if dt_s <= 0.0:
            raise ThermalError("time step must be positive")
        net = self.network
        p = net.power_vector(power_w_by_block) + net.ambient_injection
        c_over_dt = np.diag(net.capacitance / dt_s)
        lhs = c_over_dt + net.conductance
        rhs = p + (net.capacitance / dt_s) * temps
        return np.linalg.solve(lhs, rhs)

    def run(
        self,
        power_w_by_block: dict[str, float],
        duration_s: float,
        dt_s: float,
        initial: np.ndarray | None = None,
    ) -> np.ndarray:
        """Integrate a constant power assignment for ``duration_s``.

        Returns the final node-temperature vector.  ``initial`` defaults
        to everything at ambient (a cold start).
        """
        net = self.network
        temps = (
            np.full(net.n_blocks + 2, net.params.ambient_k)
            if initial is None
            else initial.copy()
        )
        steps = max(1, int(round(duration_s / dt_s)))
        for _ in range(steps):
            temps = self.step(temps, power_w_by_block, dt_s)
        return temps
