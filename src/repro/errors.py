"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this library derive from
:class:`ReproError` so callers can catch library errors without also
swallowing programming mistakes (``TypeError`` etc. propagate unchanged).

Every :class:`ReproError` can carry a **structured context**: the
structure name, candidate index, phase, and any other keyword detail the
raise site knows.  The context travels with the exception (``.context``),
renders into the message, and serialises via :func:`error_payload` — so a
failure that crosses a process boundary or lands in an event log still
says *which* candidate of *which* phase of *which* structure went wrong,
with the full cause chain attached.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Args:
        message: human-readable description of the failure.
        **context: structured detail (``structure=``, ``candidate=``,
            ``phase=``, ...).  Keys with ``None`` values are dropped.
    """

    def __init__(self, message: str = "", **context: Any) -> None:
        self.message = message
        self.context: dict[str, Any] = {
            key: value for key, value in context.items() if value is not None
        }
        super().__init__(message)

    def __str__(self) -> str:
        if not self.context:
            return self.message
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
        return f"{self.message} [{detail}]"


class ConfigurationError(ReproError):
    """An invalid processor, technology, or adaptation configuration."""


class WorkloadError(ReproError):
    """An invalid workload profile or trace-generation request."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class ThermalError(ReproError):
    """The thermal network is singular or otherwise unsolvable."""


class ReliabilityError(ReproError):
    """A failure-model evaluation received out-of-domain parameters."""


class QualificationError(ReliabilityError):
    """Reliability qualification could not calibrate to the target FIT."""


class AdaptationError(ReproError):
    """No adaptation configuration can satisfy the requested constraint."""


class LifetimeError(ReliabilityError):
    """The cumulative-damage lifetime machinery was misused.

    Raised for malformed wear states or checkpoints, invalid mission
    schedules, and controller ladders that cannot make progress — the
    lifetime analogue of :class:`ReliabilityError`'s domain checks.
    """


class InputValidationError(ReproError):
    """An evaluation received non-finite or out-of-domain inputs.

    Raised *before* bad numbers can propagate silently into FIT sums or
    thermal solves; the context names the offending structure and phase.
    """


class ExecutionError(ReproError):
    """The job engine could not execute a unit of work."""


class FailureBudgetError(ExecutionError):
    """A job exhausted its failure budget and will not be re-attempted."""


class StoreError(ReproError):
    """The content-addressed result store misbehaved."""


class StoreCorruptionError(StoreError):
    """A store entry was corrupt and could not be healed."""


class SweepError(ReproError):
    """A checkpointed sweep could not run or resume."""


class ResilienceError(ReproError):
    """The fault-injection layer was misconfigured (bad plan, bad rate)."""


class ServeError(ReproError):
    """The decision service was misused or misconfigured.

    Raised for malformed decide requests (unknown kind, missing knobs,
    unknown application), bad service configuration, and protocol
    violations; the HTTP layer maps it to a 400 response.
    """


class InjectedFault(ReproError):
    """A deliberately injected fault (never raised in production paths).

    Raised (or simulated as a crash/hang) by
    :class:`repro.resilience.FaultInjector` when a fault plan is armed,
    so every failure path in the stack is exercisable on demand.
    """


class DegradedResultWarning(UserWarning):
    """A result was produced in degraded form (e.g. masked candidates).

    Emitted instead of an exception when graceful degradation salvaged
    what it could but had to mask part of a batch; the message names the
    structure/candidates involved so sweeps can report them.
    """


def error_payload(exc: BaseException) -> dict[str, Any]:
    """A JSON-ready structured record of ``exc`` and its cause chain.

    The record carries the exception type, message, any
    :class:`ReproError` context, and the ``__cause__``/``__context__``
    chain (inner-most last) — the shape event logs and fault logs store.
    """
    chain: list[dict[str, Any]] = []
    seen: set[int] = set()
    node: BaseException | None = exc
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        record: dict[str, Any] = {
            "type": type(node).__name__,
            "message": getattr(node, "message", None) or str(node),
        }
        context = getattr(node, "context", None)
        if context:
            record["context"] = {k: repr(v) for k, v in context.items()}
        chain.append(record)
        node = node.__cause__ or node.__context__
    return {"error": chain[0], "cause_chain": chain[1:]}
