"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this library derive from
:class:`ReproError` so callers can catch library errors without also
swallowing programming mistakes (``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid processor, technology, or adaptation configuration."""


class WorkloadError(ReproError):
    """An invalid workload profile or trace-generation request."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class ThermalError(ReproError):
    """The thermal network is singular or otherwise unsolvable."""


class ReliabilityError(ReproError):
    """A failure-model evaluation received out-of-domain parameters."""


class QualificationError(ReliabilityError):
    """Reliability qualification could not calibrate to the target FIT."""


class AdaptationError(ReproError):
    """No adaptation configuration can satisfy the requested constraint."""
