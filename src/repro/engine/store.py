"""Content-addressed, schema-versioned on-disk result store.

The store is the persistence layer of the job engine (and, through
:class:`~repro.harness.sweep.SimulationCache`, of the whole harness).
Entries are addressed purely by the content hash of the producing job's
inputs, so a result can never be attributed to the wrong inputs and the
filename is always filesystem-safe regardless of what a config's
``describe()`` string contains.

Durability rules:

- **Atomic writes** — every entry is written to a temporary file in the
  same directory and ``os.replace``d into place, so a crash mid-write can
  never leave a half-written entry under the final name.
- **Corrupt-entry self-heal** — an entry that fails to parse (truncated
  JSON, wrong envelope, bad payload) is discarded, a *heal marker* is
  recorded, and the read reports a miss: the caller re-derives the result
  from the originating job spec, and the next **verified read** (one that
  decodes all the way back into domain objects; see
  :meth:`ResultStore.absolve`) clears the marker.  Only if the **same key
  corrupts a second time** (marker still present) is the entry moved into
  ``quarantine/`` for autopsy.  Either way a damaged cache degrades to
  recomputation, never to an exception.
- **Schema versioning** — every envelope records the code schema version
  of the payload encoding.  A version mismatch is a miss (the stale entry
  is left in place and overwritten by the next ``put``).

Fault injection: when a :class:`~repro.resilience.FaultPlan` is armed,
``put`` may deliberately write a truncated envelope (site
``store.corrupt_payload``, at most once per key per process) so the heal
path above is exercised end-to-end instead of staying theoretical.

Layout::

    root/
      objects/ab/abcdef....json     one entry per content hash
      heal/ab/abcdef...             first-strike markers for healed keys
      quarantine/                   corrupt entries, preserved for autopsy
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading
from pathlib import Path

#: Version of the persisted payload encodings.  Bump when the meaning or
#: shape of any stored payload changes; old entries then read as misses.
SCHEMA_VERSION = 1


def _injector():
    """The armed fault injector, if any (lazy import keeps this module
    import-light; the common case is one dict lookup that returns None)."""
    from repro.resilience import active_injector

    return active_injector()


@dataclasses.dataclass
class StoreStats:
    """Operation counters for one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    healed: int = 0
    quarantined: int = 0
    schema_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class ResultStore:
    """A content-addressed JSON store for job results.

    Args:
        root: directory that holds the store (created on demand).
        schema_version: payload schema the caller understands; entries
            recorded under any other version read as misses.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        schema_version: int = SCHEMA_VERSION,
    ) -> None:
        self.root = Path(root)
        self.schema_version = schema_version
        self.stats = StoreStats()
        self._lock = threading.Lock()
        (self.root / "objects").mkdir(parents=True, exist_ok=True)

    # ---- paths ---------------------------------------------------------

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def _heal_marker(self, key: str) -> Path:
        return self.root / "heal" / key[:2] / key

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    # ---- operations ----------------------------------------------------

    def get(self, key: str) -> dict | None:
        """Return the payload stored under ``key``, or ``None`` on a miss.

        A corrupt entry is self-healed on its first strike (discarded
        with a heal marker; the caller recomputes, and the next verified
        read — see :meth:`absolve` — clears the marker) and quarantined
        on its second; stale-schema entries are left in place (a
        subsequent :meth:`put` overwrites them).  All of these count as
        misses.
        """
        path = self._object_path(key)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except OSError:
            with self._lock:
                self.stats.misses += 1
            return None
        try:
            envelope = json.loads(raw)
            if not isinstance(envelope, dict):
                raise ValueError("envelope is not an object")
            schema = envelope["schema"]
            payload = envelope["payload"]
            if envelope["key"] != key:
                raise ValueError(
                    f"entry records key {envelope['key']!r}, expected {key!r}"
                )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            self._strike(key)
            with self._lock:
                self.stats.misses += 1
            return None
        if schema != self.schema_version:
            with self._lock:
                self.stats.schema_misses += 1
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.hits += 1
        return payload

    def put(self, key: str, kind: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key``."""
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "schema": self.schema_version,
            "key": key,
            "kind": kind,
            "payload": payload,
        }
        text = json.dumps(envelope)
        injector = _injector()
        if injector is not None:
            corrupted = injector.corrupt_payload(key, text)
            if corrupted is not None:
                text = corrupted
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        with self._lock:
            self.stats.writes += 1

    def contains(self, key: str) -> bool:
        """Whether an entry exists on disk (without validating it)."""
        return self._object_path(key).exists()

    def absolve(self, key: str) -> None:
        """Forgive a key's first corruption strike.

        Callers invoke this after an entry has decoded all the way back
        into domain objects — only a *verified* read proves the key is
        healthy again.  (The envelope check in :meth:`get` is not enough:
        a payload can parse as JSON yet still be undecodable.)
        """
        marker = self._heal_marker(key)
        if marker.exists():
            try:
                marker.unlink()
            except OSError:
                pass

    def invalidate(self, key: str) -> str:
        """Record a corruption strike for an entry that failed to decode.

        Used when the JSON envelope was readable but the domain objects
        could not be rebuilt from it (e.g. written by incompatible code
        under the same schema number).  Same two-strike policy as
        :meth:`get`: the first strike discards the entry for re-derivation
        (``"healed"``), the second preserves it for autopsy
        (``"quarantined"``); returns what happened (``"missing"`` when
        there was no entry).
        """
        if not self._object_path(key).exists():
            return "missing"
        return self._strike(key)

    def _strike(self, key: str) -> str:
        """Apply the two-strike corruption policy to ``key``'s entry.

        First strike: drop the entry, leave a heal marker, and let the
        caller re-derive (self-heal).  Second strike (marker present):
        quarantine the entry for autopsy and clear the marker so a
        re-derived entry starts with a clean record.
        """
        path = self._object_path(key)
        marker = self._heal_marker(key)
        if marker.exists():
            self._quarantine(path)
            try:
                marker.unlink()
            except OSError:
                pass
            with self._lock:
                self.stats.quarantined += 1
            return "quarantined"
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.touch()
        try:
            os.unlink(path)
        except OSError:
            # Someone else already removed/replaced it; a miss either way.
            pass
        with self._lock:
            self.stats.healed += 1
        return "healed"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside, preserving it for inspection."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        n = 0
        while target.exists():
            n += 1
            target = self.quarantine_dir / f"{path.stem}.{n}{path.suffix}"
        try:
            os.replace(path, target)
        except OSError:
            # Someone else already moved/removed it; a miss either way.
            pass


# ---------------------------------------------------------------------------
# Payload codecs.
#
# Each persistable job kind has an (encode, decode) pair.  Encoding never
# needs heavyweight imports; decoders lazily import the domain types so
# this module stays import-light and cycle-free (harness.sweep imports it
# at module scope).
# ---------------------------------------------------------------------------


def encode_workload_run(run) -> dict:
    """JSON payload for a :class:`~repro.cpu.simulator.WorkloadRun`."""
    return {
        "profile": run.profile.name,
        "config": _config_payload(run.config),
        "phases": [
            {
                "phase": {
                    "name": pr.phase.name,
                    "weight": pr.phase.weight,
                    "ilp_scale": pr.phase.ilp_scale,
                    "miss_scale": pr.phase.miss_scale,
                    "fp_scale": pr.phase.fp_scale,
                },
                "stats": {
                    "instructions": pr.stats.instructions,
                    "cycles": pr.stats.cycles,
                    "activity": pr.stats.activity,
                    "mem_stall_cycles": pr.stats.mem_stall_cycles,
                    "branch_mispredict_rate": pr.stats.branch_mispredict_rate,
                    "l1d_miss_rate": pr.stats.l1d_miss_rate,
                    "l1i_miss_rate": pr.stats.l1i_miss_rate,
                    "l2_miss_rate": pr.stats.l2_miss_rate,
                    "lsq_forwards": pr.stats.lsq_forwards,
                    "ras_mispredicts": pr.stats.ras_mispredicts,
                },
            }
            for pr in run.phases
        ],
    }


#: Exceptions a malformed-but-valid-JSON payload can raise while being
#: decoded back into result objects: missing keys, wrong shapes, wrong
#: scalar types, out-of-range enum values.  Quarantine layers catch
#: exactly these — anything else is a bug that should surface.
DECODE_ERRORS = (
    KeyError,
    IndexError,
    TypeError,
    ValueError,
    AttributeError,
    OverflowError,
)


def decode_workload_run(payload: dict, profile=None, config=None):
    """Rebuild a ``WorkloadRun``; raises on malformed payloads.

    Args:
        payload: output of :func:`encode_workload_run`.
        profile: the profile object to attach; looked up in the workload
            suite by the recorded name when omitted.
        config: the config to attach; rebuilt from the payload when
            omitted.
    """
    from repro.config.microarch import MicroarchConfig
    from repro.cpu.simulator import PhaseResult, WorkloadRun
    from repro.cpu.stats import SimulationStats
    from repro.workloads.phases import Phase
    from repro.workloads.suite import workload_by_name

    if profile is None:
        profile = workload_by_name(payload["profile"])
    if config is None:
        config = MicroarchConfig(**payload["config"])
    phases = []
    for entry in payload["phases"]:
        phase = Phase(**entry["phase"])
        stats = SimulationStats(config=config, **entry["stats"])
        phases.append(PhaseResult(phase=phase, stats=stats))
    if not phases:
        raise ValueError("workload-run payload has no phases")
    return WorkloadRun(profile=profile, config=config, phases=tuple(phases))


def encode_drm_decision(decision) -> dict:
    return {
        "profile_name": decision.profile_name,
        "t_qual_k": decision.t_qual_k,
        "mode": decision.mode.value,
        "config": _config_payload(decision.config),
        "op": {
            "frequency_hz": decision.op.frequency_hz,
            "voltage_v": decision.op.voltage_v,
        },
        "performance": float(decision.performance),
        "fit": float(decision.fit),
        # Coerce: these may arrive as numpy scalars (np.bool_ is not
        # JSON-serializable, and exact float round-tripping needs the
        # builtin type).
        "meets_target": bool(decision.meets_target),
    }


def decode_drm_decision(payload: dict):
    from repro.config.dvs import OperatingPoint
    from repro.config.microarch import MicroarchConfig
    from repro.core.drm import AdaptationMode, DRMDecision

    return DRMDecision(
        profile_name=payload["profile_name"],
        t_qual_k=payload["t_qual_k"],
        mode=AdaptationMode(payload["mode"]),
        config=MicroarchConfig(**payload["config"]),
        op=OperatingPoint(**payload["op"]),
        performance=payload["performance"],
        fit=payload["fit"],
        meets_target=payload["meets_target"],
    )


def encode_dtm_decision(decision) -> dict:
    return {
        "profile_name": decision.profile_name,
        "t_limit_k": decision.t_limit_k,
        "op": {
            "frequency_hz": decision.op.frequency_hz,
            "voltage_v": decision.op.voltage_v,
        },
        "performance": float(decision.performance),
        "peak_temperature_k": float(decision.peak_temperature_k),
        # The payload key predates the unified Decision API; it maps onto
        # the shared meets_target field (no schema bump needed).
        "meets_limit": bool(decision.meets_target),
    }


def decode_dtm_decision(payload: dict):
    from repro.config.dvs import OperatingPoint
    from repro.core.dtm import DTMDecision

    return DTMDecision(
        profile_name=payload["profile_name"],
        t_limit_k=payload["t_limit_k"],
        op=OperatingPoint(**payload["op"]),
        performance=payload["performance"],
        peak_temperature_k=payload["peak_temperature_k"],
        # The payload key predates the unified Decision API; it maps onto
        # the shared meets_target field (no schema bump needed).
        meets_target=payload["meets_limit"],
    )


def encode_joint_decision(decision) -> dict:
    return {
        "profile_name": decision.profile_name,
        "t_qual_k": decision.t_qual_k,
        "t_limit_k": decision.t_limit_k,
        "op": {
            "frequency_hz": decision.op.frequency_hz,
            "voltage_v": decision.op.voltage_v,
        },
        "performance": float(decision.performance),
        "fit": float(decision.fit),
        "peak_temperature_k": float(decision.peak_temperature_k),
        "meets_fit": bool(decision.meets_fit),
        "meets_thermal": bool(decision.meets_thermal),
        "meets_target": bool(decision.meets_target),
    }


def decode_joint_decision(payload: dict):
    from repro.config.dvs import OperatingPoint
    from repro.core.combined import JointDecision

    return JointDecision(
        profile_name=payload["profile_name"],
        t_qual_k=payload["t_qual_k"],
        t_limit_k=payload["t_limit_k"],
        op=OperatingPoint(**payload["op"]),
        performance=payload["performance"],
        fit=payload["fit"],
        peak_temperature_k=payload["peak_temperature_k"],
        meets_fit=payload["meets_fit"],
        meets_thermal=payload["meets_thermal"],
        meets_target=payload["meets_target"],
    )


def encode_intra_decision(decision) -> dict:
    return {
        "profile_name": decision.profile_name,
        "t_qual_k": decision.t_qual_k,
        "schedule": [
            {"frequency_hz": op.frequency_hz, "voltage_v": op.voltage_v}
            for op in decision.schedule
        ],
        "strategy": decision.strategy,
        "performance": float(decision.performance),
        "fit": float(decision.fit),
        "meets_target": bool(decision.meets_target),
    }


def decode_intra_decision(payload: dict):
    from repro.config.dvs import OperatingPoint
    from repro.core.intra import IntraDecision

    schedule = tuple(OperatingPoint(**op) for op in payload["schedule"])
    if not schedule:
        raise ValueError("intra-decision payload has an empty schedule")
    return IntraDecision(
        profile_name=payload["profile_name"],
        t_qual_k=payload["t_qual_k"],
        schedule=schedule,
        strategy=payload["strategy"],
        performance=payload["performance"],
        fit=payload["fit"],
        meets_target=payload["meets_target"],
    )


def _identity_encode(value: dict) -> dict:
    return value


def _identity_decode(payload: dict) -> dict:
    return payload


def _config_payload(config) -> dict:
    return {f.name: getattr(config, f.name) for f in dataclasses.fields(config)}


#: kind -> (encode, decode).  Job kinds without a codec are memory-cached
#: only (their results are not JSON-representable or not worth persisting).
CODECS = {
    "simulate": (encode_workload_run, decode_workload_run),
    "drm": (encode_drm_decision, decode_drm_decision),
    "dtm": (encode_dtm_decision, decode_dtm_decision),
    "joint": (encode_joint_decision, decode_joint_decision),
    "intra": (encode_intra_decision, decode_intra_decision),
    "qualification": (_identity_encode, _identity_decode),
    "analyze_file": (_identity_encode, _identity_decode),
}


def encode_result(kind: str, result):
    """Encode a job result for persistence; ``None`` if not persistable."""
    codec = CODECS.get(kind)
    if codec is None:
        return None
    return codec[0](result)


def decode_result(kind: str, payload: dict):
    """Decode a persisted payload back into a live result object.

    Raises whatever the underlying constructors raise on malformed
    payloads — callers treat any exception as a cache miss.
    """
    codec = CODECS.get(kind)
    if codec is None:
        raise KeyError(f"no codec for job kind {kind!r}")
    return codec[1](payload)
