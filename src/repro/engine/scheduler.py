"""Dependency-aware DAG scheduling with content-hash deduplication.

The :class:`JobGraph` collects job specs, automatically pulls in their
``dependencies()`` (recursively), and dedupes everything by cache key —
submitting the same 162-simulation sweep twice costs nothing the second
time.  :meth:`JobGraph.waves` then topologically sorts the graph into
*waves*: lists of mutually independent jobs, each wave runnable with
arbitrary parallelism once the previous waves finished.  Within a wave,
jobs are ordered by (stage, cache key) so execution order — and therefore
the event log — is deterministic regardless of dict iteration or hash
randomisation.

Wave scheduling is what realises the stage ordering the harness needs
(simulate → evaluate/qualification → drm/dtm) without hard-coding stages:
the ordering falls out of the declared dependencies.
"""

from __future__ import annotations

from repro.engine.events import EventLog
from repro.engine.jobs import EngineError, Job

#: Canonical stage order, used only to make intra-wave ordering stable
#: and human-friendly; correctness comes from the dependency edges.
_STAGE_ORDER = {
    "simulate": 0,
    "evaluate": 1,
    "qualification": 2,
    "ramp": 3,
    "drm": 4,
    "dtm": 5,
}


def _sort_key(job: Job) -> tuple[int, str]:
    return (_STAGE_ORDER.get(job.stage, 99), job.cache_key)


class JobGraph:
    """A deduplicated DAG of job specs.

    Args:
        events: optional event log; records submissions and dedupes.
    """

    def __init__(self, events: EventLog | None = None) -> None:
        self._jobs: dict[str, Job] = {}
        self._deps: dict[str, set[str]] = {}
        self.events = events

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job: Job) -> bool:
        return job.cache_key in self._jobs

    @property
    def jobs(self) -> tuple[Job, ...]:
        return tuple(sorted(self._jobs.values(), key=_sort_key))

    def add(self, job: Job) -> Job:
        """Add a job (and, recursively, its dependencies).

        Returns the canonical instance for the job's cache key — the
        previously added spec when this one is a duplicate — so callers
        can use the return value as a result handle.
        """
        key = job.cache_key
        existing = self._jobs.get(key)
        if existing is not None:
            if self.events is not None:
                self.events.emit(
                    "deduped", job_key=key, stage=job.stage, detail=job.describe()
                )
            return existing
        self._jobs[key] = job
        if self.events is not None:
            self.events.emit(
                "submitted", job_key=key, stage=job.stage, detail=job.describe()
            )
        dep_keys = set()
        for dep in job.dependencies():
            canonical = self.add(dep)
            dep_keys.add(canonical.cache_key)
        self._deps[key] = dep_keys
        return job

    def dependencies_of(self, job: Job) -> tuple[Job, ...]:
        return tuple(
            sorted(
                (self._jobs[k] for k in self._deps.get(job.cache_key, ())),
                key=_sort_key,
            )
        )

    def waves(self) -> list[list[Job]]:
        """Topological sort into waves of mutually independent jobs.

        Raises:
            EngineError: if the graph has a dependency cycle.
        """
        remaining: dict[str, set[str]] = {
            key: set(deps) for key, deps in self._deps.items()
        }
        done: set[str] = set()
        waves: list[list[Job]] = []
        while remaining:
            ready = [
                key for key, deps in remaining.items() if deps.issubset(done)
            ]
            if not ready:
                cycle = ", ".join(
                    self._jobs[k].describe() for k in sorted(remaining)[:5]
                )
                raise EngineError(
                    f"dependency cycle among {len(remaining)} jobs "
                    f"(involving: {cycle})",
                    phase="schedule",
                    jobs_remaining=len(remaining),
                    jobs_done=len(done),
                )
            wave = sorted((self._jobs[k] for k in ready), key=_sort_key)
            waves.append(wave)
            done.update(j.cache_key for j in wave)
            for key in ready:
                del remaining[key]
        return waves
