"""Static-analysis jobs for the engine's executor and result store.

One :class:`AnalyzeFileJob` runs the whole rule set over one source
file.  The spec carries the file's *content* (so a worker never races a
concurrent edit by re-reading the path), but the cache key hashes only
the content's digest plus everything else that can change the outcome:
the rule ids, the rule-set version, the file's determinism-scope flags,
and the digest of the cross-module unit-signature table.  A warm
``repro analyze`` therefore re-runs exactly the files whose content —
or whose cross-module inputs — changed.

The result is a plain JSON dict (finding/suppressed records), persisted
via the store's identity codec, which is what makes the cache durable
across processes and CI runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.engine.jobs import Job, JobContext


@dataclass(frozen=True)
class AnalyzeFileJob(Job):
    """Run the registered rules over one file's source text.

    Attributes:
        rel_path: repo-relative POSIX path (findings are reported
            against it).
        content_hash: SHA-256 of the source bytes; stands in for
            ``source`` in the cache key.
        module: dotted module name, or None for non-importable paths.
        rule_ids: registry ids of the rules to run (workers rebuild the
            instances from the registry).
        ruleset_version: bumped when any rule's logic changes, so stale
            cached verdicts die with the code that produced them.
        in_scope: whether the file is inside the determinism-rule
            import scope.
        scope_global: whether the scope fell back to "everything"
            (fixture/sandbox mode, see the analysis engine).
        sig_hash: digest of the signature-table payload; a cross-module
            signature change re-analyzes every file, by design.
        source / sig_json: the actual inputs, excluded from the payload
            because their digests above already pin them.
    """

    rel_path: str
    content_hash: str
    module: str | None
    rule_ids: tuple[str, ...]
    ruleset_version: int
    in_scope: bool
    scope_global: bool
    sig_hash: str
    source: str = field(repr=False, default="")
    sig_json: str = field(repr=False, default="{}")

    kind = "analyze_file"
    stage = "analyze"

    def payload(self) -> dict:
        return {
            "path": self.rel_path,
            "content": self.content_hash,
            "rules": list(self.rule_ids),
            "ruleset": self.ruleset_version,
            "in_scope": self.in_scope,
            "scope_global": self.scope_global,
            "signatures": self.sig_hash,
        }

    def run(self, ctx: JobContext) -> dict:
        from repro.analysis.incremental import run_rules_on_source

        return run_rules_on_source(
            rel_path=self.rel_path,
            source=self.source,
            module=self.module,
            rule_ids=self.rule_ids,
            in_scope=self.in_scope,
            scope_global=self.scope_global,
            sig_payload=json.loads(self.sig_json),
        )

    def describe(self) -> str:
        return f"analyze:{self.rel_path}"
