"""Fault-tolerant job execution: process pools, retries, degradation.

Execution policy, in order of preference:

1. **Shared pool** — all runnable jobs of a wave go to one
   ``ProcessPoolExecutor``; a job that raises an ordinary exception is
   retried (bounded, with exponential backoff) without disturbing the
   pool.
2. **Isolation mode** — if the pool itself breaks (a worker died, or a
   job blew its wall-clock budget and cannot be cancelled), the pool is
   torn down and every unresolved job re-runs in its own fresh
   single-worker pool.  That attributes crashes to the right job and
   shields healthy jobs from a poisoned batch, at the cost of pool
   startup per job — acceptable because incidents are rare.
3. **Serial fallback** — if process pools are unavailable at all (no
   usable start method, fork blocked, resource limits), jobs run
   in-process, serially.  Timeouts cannot be enforced there; everything
   else behaves identically.

Results flow back to the parent, which is the only process that writes
the store — workers only read it.  That keeps persistence single-writer
and the event accounting exact.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import time
from concurrent.futures.process import BrokenProcessPool

from repro.engine.events import EventLog
from repro.engine.jobs import Job, JobContext
from repro.engine.store import (
    DECODE_ERRORS,
    ResultStore,
    decode_result,
    encode_result,
)


def _worker_run(job: Job, store_dir: str | None):
    """Top-level (picklable) worker entry point."""
    return job.run(JobContext(store_dir=store_dir))


@dataclasses.dataclass(frozen=True)
class ExecutorConfig:
    """Execution policy (never part of any cache key).

    Attributes:
        max_workers: process count; ``None`` uses ``os.cpu_count()``;
            ``1`` (or 0) means in-process serial execution.
        timeout_s: default per-job wall-clock budget (``None`` = none);
            a job's own ``timeout_s`` attribute takes precedence.
        retries: additional attempts after the first failure.
        backoff_s: base of the exponential retry backoff.
    """

    max_workers: int | None = None
    timeout_s: float | None = None
    retries: int = 1
    backoff_s: float = 0.05


@dataclasses.dataclass
class JobOutcome:
    """How one job concluded.

    Attributes:
        job: the spec.
        status: ``"run"``, ``"cached"`` or ``"failed"``.
        result: the job's return value (``None`` when failed).
        error: last error string for failed jobs.
        attempts: execution attempts consumed (0 for cache hits).
        duration_s: wall time of the successful attempt.
    """

    job: Job
    status: str
    result: object = None
    error: str | None = None
    attempts: int = 0
    duration_s: float = 0.0


class JobExecutor:
    """Runs job specs against a store with bounded fault tolerance.

    Args:
        config: execution policy.
        store: optional persistent result store (hit before running).
        events: event log (a private one is created if omitted).
    """

    def __init__(
        self,
        config: ExecutorConfig | None = None,
        store: ResultStore | None = None,
        events: EventLog | None = None,
    ) -> None:
        self.config = config or ExecutorConfig()
        self.store = store
        self.events = events if events is not None else EventLog()
        self.memory: dict[str, object] = {}

    # ---- cache lookups -------------------------------------------------

    def _lookup(self, job: Job):
        """(found, result) from memory or the persistent store."""
        key = job.cache_key
        if key in self.memory:
            return True, self.memory[key]
        if self.store is not None:
            payload = self.store.get(key)
            if payload is not None:
                try:
                    result = decode_result(job.kind, payload)
                except DECODE_ERRORS as exc:
                    # Valid JSON but an undecodable payload: quarantine
                    # it and recompute, exactly like on-disk corruption.
                    self.store.invalidate(key)
                    self.events.emit(
                        "quarantined",
                        job_key=key,
                        stage=job.stage,
                        detail=f"{job.describe()}: {exc!r}",
                    )
                    return False, None
                self.memory[key] = result
                return True, result
        return False, None

    def _persist(self, job: Job, result) -> None:
        self.memory[job.cache_key] = result
        if self.store is not None:
            payload = encode_result(job.kind, result)
            if payload is not None:
                self.store.put(job.cache_key, job.kind, payload)

    # ---- public API ----------------------------------------------------

    def execute(self, jobs: list[Job]) -> dict[str, JobOutcome]:
        """Execute a wave of mutually independent jobs.

        Returns outcomes keyed by cache key; every input job is present
        (as run, cached, or failed).
        """
        outcomes: dict[str, JobOutcome] = {}
        to_run: list[Job] = []
        for job in jobs:
            if job.cache_key in outcomes:
                continue
            found, result = self._lookup(job)
            if found:
                outcomes[job.cache_key] = JobOutcome(
                    job=job, status="cached", result=result
                )
                self.events.emit(
                    "cache_hit",
                    job_key=job.cache_key,
                    stage=job.stage,
                    detail=job.describe(),
                )
            else:
                to_run.append(job)
        if not to_run:
            return outcomes
        workers = self._effective_workers(len(to_run))
        if workers <= 1:
            ran = self._execute_serial(to_run)
        else:
            ran = self._execute_parallel(to_run, workers)
        outcomes.update(ran)
        return outcomes

    # ---- execution strategies -----------------------------------------

    def _effective_workers(self, n_jobs: int) -> int:
        import os

        workers = self.config.max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        return max(0, min(workers, n_jobs))

    def _timeout_for(self, job: Job) -> float | None:
        if job.timeout_s is not None:
            return job.timeout_s
        return self.config.timeout_s

    def _store_dir(self) -> str | None:
        return str(self.store.root) if self.store is not None else None

    def _backoff(self, attempt: int) -> None:
        if self.config.backoff_s > 0.0:
            time.sleep(self.config.backoff_s * (2 ** (attempt - 1)))

    def _finish(self, job: Job, result, attempts: int, duration_s: float) -> JobOutcome:
        self._persist(job, result)
        self.events.emit(
            "run_finished",
            job_key=job.cache_key,
            stage=job.stage,
            detail=job.describe(),
            duration_s=duration_s,
            attempts=attempts,
        )
        return JobOutcome(
            job=job,
            status="run",
            result=result,
            attempts=attempts,
            duration_s=duration_s,
        )

    def _fail(self, job: Job, error: str, attempts: int) -> JobOutcome:
        self.events.emit(
            "failed",
            job_key=job.cache_key,
            stage=job.stage,
            detail=f"{job.describe()}: {error}",
            attempts=attempts,
        )
        return JobOutcome(job=job, status="failed", error=error, attempts=attempts)

    def _note_retry(self, job: Job, attempt: int, error: str) -> None:
        self.events.emit(
            "retried",
            job_key=job.cache_key,
            stage=job.stage,
            detail=f"{job.describe()}: attempt {attempt} failed: {error}",
        )

    def _execute_serial(self, jobs: list[Job]) -> dict[str, JobOutcome]:
        """In-process execution (also the no-multiprocessing fallback)."""
        ctx = JobContext(store_dir=self._store_dir())
        outcomes: dict[str, JobOutcome] = {}
        max_attempts = self.config.retries + 1
        for job in jobs:
            for attempt in range(1, max_attempts + 1):
                start = time.monotonic()
                try:
                    result = job.run(ctx)
                # repro: ignore[RPR006] crash isolation: jobs run arbitrary
                # model code, and any raise must become a JobOutcome, not a
                # crash of the whole wave.
                except Exception as exc:
                    error = repr(exc)
                    if attempt < max_attempts:
                        self._note_retry(job, attempt, error)
                        self._backoff(attempt)
                        continue
                    outcomes[job.cache_key] = self._fail(job, error, attempt)
                    break
                duration = time.monotonic() - start
                outcomes[job.cache_key] = self._finish(
                    job, result, attempt, duration
                )
                break
        return outcomes

    def _new_pool(self, workers: int):
        try:
            return concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError, NotImplementedError):
            return None

    def _execute_parallel(
        self, jobs: list[Job], workers: int
    ) -> dict[str, JobOutcome]:
        pool = self._new_pool(workers)
        if pool is None:
            self.events.emit(
                "degraded", detail="process pool unavailable; running serially"
            )
            return self._execute_serial(jobs)

        outcomes: dict[str, JobOutcome] = {}
        attempts: dict[str, int] = {job.cache_key: 0 for job in jobs}
        max_attempts = self.config.retries + 1
        store_dir = self._store_dir()
        queue = list(jobs)
        pool_broken = False
        try:
            while queue and not pool_broken:
                batch = queue
                queue = []
                for job in batch:
                    attempts[job.cache_key] += 1
                starts = {job.cache_key: time.monotonic() for job in batch}
                futures = [
                    (job, pool.submit(_worker_run, job, store_dir))
                    for job in batch
                ]
                for job, future in futures:
                    key = job.cache_key
                    if pool_broken:
                        # Pool already condemned: anything unresolved is
                        # handed to isolation mode below.
                        if not future.done() or future.cancelled():
                            queue.append(job)
                            attempts[key] -= 1  # attempt never concluded
                            continue
                    try:
                        result = future.result(timeout=self._timeout_for(job))
                    except concurrent.futures.TimeoutError:
                        pool_broken = True  # rogue worker may still run
                        error = (
                            f"timed out after {self._timeout_for(job):.1f}s"
                        )
                        if attempts[key] < max_attempts:
                            self._note_retry(job, attempts[key], error)
                            queue.append(job)
                        else:
                            outcomes[key] = self._fail(job, error, attempts[key])
                    except concurrent.futures.CancelledError:
                        attempts[key] -= 1
                        queue.append(job)
                    except BrokenProcessPool:
                        # Every pending future raises this when any worker
                        # dies, so the shared pool cannot attribute the
                        # crash.  Requeue uncharged; isolation mode below
                        # re-runs each job alone and assigns exact blame.
                        pool_broken = True
                        attempts[key] -= 1
                        queue.append(job)
                    # repro: ignore[RPR006] crash isolation: the job
                    # itself raised (the pool is fine), and any raise
                    # must become a retry/JobOutcome, not kill the wave.
                    except Exception as exc:
                        error = repr(exc)
                        if attempts[key] < max_attempts:
                            self._note_retry(job, attempts[key], error)
                            queue.append(job)
                        else:
                            outcomes[key] = self._fail(job, error, attempts[key])
                    else:
                        duration = time.monotonic() - starts[key]
                        outcomes[key] = self._finish(
                            job, result, attempts[key], duration
                        )
                if queue and not pool_broken:
                    self._backoff(max(attempts[j.cache_key] for j in queue))
        finally:
            pool.shutdown(wait=not pool_broken, cancel_futures=True)

        if queue:
            self.events.emit(
                "degraded",
                detail=(
                    f"pool incident; isolating {len(queue)} unresolved "
                    "job(s) in single-worker pools"
                ),
            )
            outcomes.update(self._execute_isolated(queue, attempts))
        return outcomes

    def _execute_isolated(
        self, jobs: list[Job], attempts: dict[str, int]
    ) -> dict[str, JobOutcome]:
        """One fresh single-worker pool per attempt: exact crash blame."""
        outcomes: dict[str, JobOutcome] = {}
        max_attempts = self.config.retries + 1
        store_dir = self._store_dir()
        for job in jobs:
            key = job.cache_key
            while True:
                attempts[key] += 1
                pool = self._new_pool(1)
                if pool is None:
                    self.events.emit(
                        "degraded",
                        detail="process pool unavailable; running serially",
                    )
                    serial = self._execute_serial([job])
                    outcomes.update(serial)
                    break
                start = time.monotonic()
                rogue = False
                try:
                    future = pool.submit(_worker_run, job, store_dir)
                    result = future.result(timeout=self._timeout_for(job))
                except concurrent.futures.TimeoutError:
                    rogue = True
                    error = f"timed out after {self._timeout_for(job):.1f}s"
                except BrokenProcessPool as exc:
                    error = f"worker died: {exc!r}"
                # repro: ignore[RPR006] crash isolation: arbitrary job
                # errors must be attributed to this job and retried.
                except Exception as exc:
                    error = repr(exc)
                else:
                    duration = time.monotonic() - start
                    outcomes[key] = self._finish(
                        job, result, attempts[key], duration
                    )
                    pool.shutdown(wait=True)
                    break
                pool.shutdown(wait=not rogue, cancel_futures=True)
                if attempts[key] < max_attempts:
                    self._note_retry(job, attempts[key], error)
                    self._backoff(attempts[key])
                    continue
                outcomes[key] = self._fail(job, error, attempts[key])
                break
        return outcomes
