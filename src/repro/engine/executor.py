"""Fault-tolerant job execution: process pools, retries, degradation.

Execution policy is a ladder — each rung trades throughput for blame
attribution, and a run only descends as far as its failures force it:

1. **Shared pool** — all runnable jobs of a wave go to one
   ``ProcessPoolExecutor``; a job that raises an ordinary exception is
   retried (bounded, with exponential backoff **plus deterministic
   jitter** so retry storms de-correlate) without disturbing the pool.
2. **Pool rebuild** — if the pool itself breaks (a worker died, or a job
   blew its wall-clock budget and cannot be cancelled), the pool is torn
   down and a **fresh shared pool** is built for the unresolved jobs.
   Casualties of the incident are requeued uncharged: the shared pool
   cannot attribute a crash, so nobody is blamed for it.  Rebuilds are
   bounded (:attr:`ExecutorConfig.max_pool_rebuilds`).
3. **Isolation mode** — a job that has now witnessed
   :attr:`ExecutorConfig.suspect_threshold` pool incidents is a suspect:
   it re-runs in its own fresh single-worker pool, which attributes the
   crash exactly and shields healthy jobs from a poisoned batch.  When
   the rebuild budget runs out, everything unresolved is isolated.
4. **Serial fallback** — if process pools are unavailable at all (no
   usable start method, fork blocked, resource limits), jobs run
   in-process, serially.  Timeouts cannot be enforced there; everything
   else behaves identically.

Orthogonally, every job carries a **failure budget**
(:attr:`ExecutorConfig.failure_budget`): once a job has accumulated that
many *concluded* failed attempts across this executor's lifetime, it is
failed fast instead of re-attempted — a persistently poisonous job
cannot starve the rest of a sweep.

Fault injection: :func:`_worker_run` consults the armed
:class:`~repro.resilience.FaultPlan` (if any), so injected worker
crashes, hangs, and timeouts flow through exactly the production retry /
rebuild / isolate paths that real incidents would.

Results flow back to the parent, which is the only process that writes
the store — workers only read it.  That keeps persistence single-writer
and the event accounting exact.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import os
import time
from concurrent.futures.process import BrokenProcessPool

from repro.engine.events import EventLog
from repro.engine.jobs import Job, JobContext
from repro.engine.store import (
    DECODE_ERRORS,
    ResultStore,
    decode_result,
    encode_result,
)


def _worker_run(
    job: Job,
    store_dir: str | None,
    attempt: int = 1,
    parent_pid: int | None = None,
):
    """Top-level (picklable) worker entry point.

    Runs in pool workers *and* in-process (serial mode); when a fault
    plan is armed, injected crashes/hangs happen here so they traverse
    the same recovery machinery as real incidents.
    """
    from repro.resilience import active_injector

    injector = active_injector()
    if injector is not None:
        # repro: ignore[RPR002] injection bookkeeping only, never in results
        in_subprocess = parent_pid is not None and os.getpid() != parent_pid
        injector.maybe_crash_worker(job.cache_key, attempt, in_subprocess)
        injector.maybe_hang(job.cache_key, attempt)
    return job.run(JobContext(store_dir=store_dir))


@dataclasses.dataclass(frozen=True)
class ExecutorConfig:
    """Execution policy (never part of any cache key).

    Attributes:
        max_workers: process count; ``None`` uses ``os.cpu_count()``;
            ``1`` (or 0) means in-process serial execution.
        timeout_s: default per-job wall-clock budget (``None`` = none);
            a job's own ``timeout_s`` attribute takes precedence.
        retries: additional attempts after the first failure.
        backoff_s: base of the exponential retry backoff.
        jitter: deterministic jitter fraction added to each backoff
            sleep (0 disables; 0.25 means up to +25%).  Derived from the
            job key, so it is reproducible yet de-correlates retries.
        failure_budget: maximum *concluded* failed attempts per job
            across this executor's lifetime; once reached, the job is
            failed fast instead of re-attempted.  ``None`` disables.
        max_pool_rebuilds: shared-pool rebuilds per :meth:`execute` call
            before the remaining jobs fall back to isolation mode.
        suspect_threshold: pool incidents a job may witness while
            unresolved before it is isolated for exact crash blame.
    """

    max_workers: int | None = None
    timeout_s: float | None = None
    retries: int = 1
    backoff_s: float = 0.05
    jitter: float = 0.25
    failure_budget: int | None = None
    max_pool_rebuilds: int = 2
    suspect_threshold: int = 2


@dataclasses.dataclass
class JobOutcome:
    """How one job concluded.

    Attributes:
        job: the spec.
        status: ``"run"``, ``"cached"`` or ``"failed"``.
        result: the job's return value (``None`` when failed).
        error: last error string for failed jobs.
        attempts: execution attempts consumed (0 for cache hits).
        duration_s: wall time of the successful attempt.
    """

    job: Job
    status: str
    result: object = None
    error: str | None = None
    attempts: int = 0
    duration_s: float = 0.0


class JobExecutor:
    """Runs job specs against a store with bounded fault tolerance.

    Args:
        config: execution policy.
        store: optional persistent result store (hit before running).
        events: event log (a private one is created if omitted).
    """

    def __init__(
        self,
        config: ExecutorConfig | None = None,
        store: ResultStore | None = None,
        events: EventLog | None = None,
    ) -> None:
        self.config = config or ExecutorConfig()
        self.store = store
        self.events = events if events is not None else EventLog()
        self.memory: dict[str, object] = {}
        #: concluded failed attempts per job key (executor lifetime);
        #: what the failure budget is charged against.
        self.failures: dict[str, int] = {}

    # ---- cache lookups -------------------------------------------------

    def _lookup(self, job: Job):
        """(found, result) from memory or the persistent store."""
        key = job.cache_key
        if key in self.memory:
            return True, self.memory[key]
        if self.store is not None:
            payload = self.store.get(key)
            if payload is not None:
                try:
                    result = decode_result(job.kind, payload)
                except DECODE_ERRORS as exc:
                    # Valid JSON but an undecodable payload: strike it
                    # (self-heal first, quarantine second) and recompute,
                    # exactly like on-disk corruption.
                    action = self.store.invalidate(key)
                    self.events.emit(
                        "quarantined" if action == "quarantined" else "healed",
                        job_key=key,
                        stage=job.stage,
                        detail=f"{job.describe()}: {exc!r}",
                    )
                    return False, None
                self.store.absolve(key)
                self.memory[key] = result
                return True, result
        return False, None

    def _persist(self, job: Job, result) -> None:
        self.memory[job.cache_key] = result
        if self.store is not None:
            payload = encode_result(job.kind, result)
            if payload is not None:
                self.store.put(job.cache_key, job.kind, payload)

    # ---- public API ----------------------------------------------------

    def execute(self, jobs: list[Job]) -> dict[str, JobOutcome]:
        """Execute a wave of mutually independent jobs.

        Returns outcomes keyed by cache key; every input job is present
        (as run, cached, or failed).
        """
        outcomes: dict[str, JobOutcome] = {}
        to_run: list[Job] = []
        for job in jobs:
            if job.cache_key in outcomes:
                continue
            found, result = self._lookup(job)
            if found:
                outcomes[job.cache_key] = JobOutcome(
                    job=job, status="cached", result=result
                )
                self.events.emit(
                    "cache_hit",
                    job_key=job.cache_key,
                    stage=job.stage,
                    detail=job.describe(),
                )
            elif self._budget_exhausted(job):
                outcomes[job.cache_key] = self._fail_over_budget(job)
            else:
                to_run.append(job)
        if not to_run:
            return outcomes
        workers = self._effective_workers(len(to_run))
        if workers <= 1:
            ran = self._execute_serial(to_run)
        else:
            ran = self._execute_parallel(to_run, workers)
        outcomes.update(ran)
        return outcomes

    # ---- failure budget ------------------------------------------------

    def _charge_failure(self, job: Job) -> None:
        key = job.cache_key
        self.failures[key] = self.failures.get(key, 0) + 1

    def _budget_exhausted(self, job: Job) -> bool:
        budget = self.config.failure_budget
        if budget is None:
            return False
        return self.failures.get(job.cache_key, 0) >= budget

    def _fail_over_budget(self, job: Job) -> JobOutcome:
        spent = self.failures.get(job.cache_key, 0)
        self.events.emit(
            "budget_exhausted",
            job_key=job.cache_key,
            stage=job.stage,
            detail=(
                f"{job.describe()}: failure budget exhausted "
                f"({spent}/{self.config.failure_budget} failed attempts)"
            ),
        )
        return self._fail(
            job,
            f"failure budget exhausted ({spent} failed attempts)",
            attempts=0,
        )

    # ---- execution strategies -----------------------------------------

    def _effective_workers(self, n_jobs: int) -> int:
        workers = self.config.max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        return max(0, min(workers, n_jobs))

    def _timeout_for(self, job: Job) -> float | None:
        if job.timeout_s is not None:
            return job.timeout_s
        return self.config.timeout_s

    def _store_dir(self) -> str | None:
        return str(self.store.root) if self.store is not None else None

    def _backoff(self, attempt: int, salt: str = "") -> None:
        """Exponential backoff with deterministic jitter.

        The jitter deviate is a pure function of (salt, attempt), so runs
        are reproducible while concurrent retriers still spread out.
        """
        base = self.config.backoff_s
        if base <= 0.0:
            return
        delay = base * (2 ** (attempt - 1))
        if self.config.jitter > 0.0:
            digest = hashlib.sha256(f"{salt}|{attempt}".encode()).digest()
            deviate = int.from_bytes(digest[:8], "big") / float(1 << 64)
            delay *= 1.0 + self.config.jitter * deviate
        time.sleep(delay)

    def _finish(self, job: Job, result, attempts: int, duration_s: float) -> JobOutcome:
        self._persist(job, result)
        self.events.emit(
            "run_finished",
            job_key=job.cache_key,
            stage=job.stage,
            detail=job.describe(),
            duration_s=duration_s,
            attempts=attempts,
        )
        return JobOutcome(
            job=job,
            status="run",
            result=result,
            attempts=attempts,
            duration_s=duration_s,
        )

    def _fail(self, job: Job, error: str, attempts: int) -> JobOutcome:
        self.events.emit(
            "failed",
            job_key=job.cache_key,
            stage=job.stage,
            detail=f"{job.describe()}: {error}",
            attempts=attempts,
        )
        return JobOutcome(job=job, status="failed", error=error, attempts=attempts)

    def _note_retry(self, job: Job, attempt: int, error: str) -> None:
        self.events.emit(
            "retried",
            job_key=job.cache_key,
            stage=job.stage,
            detail=f"{job.describe()}: attempt {attempt} failed: {error}",
        )

    def _retry_allowed(self, job: Job, attempts: int) -> bool:
        return attempts < self.config.retries + 1 and not self._budget_exhausted(job)

    def _execute_serial(self, jobs: list[Job]) -> dict[str, JobOutcome]:
        """In-process execution (also the no-multiprocessing fallback)."""
        store_dir = self._store_dir()
        parent_pid = os.getpid()  # repro: ignore[RPR002] crash-blame bookkeeping
        outcomes: dict[str, JobOutcome] = {}
        for job in jobs:
            attempt = 0
            while True:
                attempt += 1
                start = time.monotonic()
                try:
                    result = _worker_run(job, store_dir, attempt, parent_pid)
                # repro: ignore[RPR006] crash isolation: jobs run arbitrary
                # model code, and any raise must become a JobOutcome, not a
                # crash of the whole wave.
                except Exception as exc:
                    error = repr(exc)
                    self._charge_failure(job)
                    if self._retry_allowed(job, attempt):
                        self._note_retry(job, attempt, error)
                        self._backoff(attempt, salt=job.cache_key)
                        continue
                    outcomes[job.cache_key] = self._fail(job, error, attempt)
                    break
                duration = time.monotonic() - start
                outcomes[job.cache_key] = self._finish(
                    job, result, attempt, duration
                )
                break
        return outcomes

    def _new_pool(self, workers: int):
        try:
            return concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError, NotImplementedError):
            return None

    def _execute_parallel(
        self, jobs: list[Job], workers: int
    ) -> dict[str, JobOutcome]:
        pool = self._new_pool(workers)
        if pool is None:
            self.events.emit(
                "degraded", detail="process pool unavailable; running serially"
            )
            return self._execute_serial(jobs)

        outcomes: dict[str, JobOutcome] = {}
        attempts: dict[str, int] = {job.cache_key: 0 for job in jobs}
        #: pool incidents each job witnessed while unresolved — the
        #: evidence that eventually makes it a suspect.
        incidents: dict[str, int] = {job.cache_key: 0 for job in jobs}
        store_dir = self._store_dir()
        parent_pid = os.getpid()  # repro: ignore[RPR002] crash-blame bookkeeping
        queue = list(jobs)
        rebuilds = 0
        try:
            while queue:
                if pool is None:
                    # Descend the degradation ladder: isolate suspects,
                    # rebuild the shared pool for everyone else.
                    suspects = [
                        j
                        for j in queue
                        if incidents[j.cache_key]
                        >= self.config.suspect_threshold
                    ]
                    if suspects:
                        queue = [j for j in queue if j not in suspects]
                        self.events.emit(
                            "degraded",
                            detail=(
                                f"isolating {len(suspects)} suspect job(s) "
                                "in single-worker pools"
                            ),
                        )
                        outcomes.update(
                            self._execute_isolated(suspects, attempts)
                        )
                        if not queue:
                            break
                    rebuilds += 1
                    if rebuilds > self.config.max_pool_rebuilds:
                        self.events.emit(
                            "degraded",
                            detail=(
                                f"pool rebuild budget spent; isolating "
                                f"{len(queue)} unresolved job(s)"
                            ),
                        )
                        outcomes.update(
                            self._execute_isolated(queue, attempts)
                        )
                        queue = []
                        break
                    self.events.emit(
                        "degraded",
                        detail=(
                            f"pool incident; rebuilding shared pool "
                            f"(rebuild {rebuilds}/{self.config.max_pool_rebuilds})"
                        ),
                    )
                    pool = self._new_pool(workers)
                    if pool is None:
                        self.events.emit(
                            "degraded",
                            detail="process pool unavailable; running serially",
                        )
                        outcomes.update(self._execute_serial(queue))
                        queue = []
                        break

                batch = queue
                queue = []
                pool_broken = False
                for job in batch:
                    attempts[job.cache_key] += 1
                starts = {job.cache_key: time.monotonic() for job in batch}
                futures = [
                    (
                        job,
                        pool.submit(
                            _worker_run,
                            job,
                            store_dir,
                            attempts[job.cache_key],
                            parent_pid,
                        ),
                    )
                    for job in batch
                ]
                for job, future in futures:
                    key = job.cache_key
                    if pool_broken:
                        # Pool already condemned: anything unresolved is a
                        # casualty — requeued uncharged, incident noted.
                        if not future.done() or future.cancelled():
                            queue.append(job)
                            attempts[key] -= 1  # attempt never concluded
                            incidents[key] += 1
                            continue
                    try:
                        result = future.result(timeout=self._timeout_for(job))
                    except concurrent.futures.TimeoutError:
                        pool_broken = True  # rogue worker may still run
                        error = (
                            f"timed out after {self._timeout_for(job):.1f}s"
                        )
                        self._charge_failure(job)
                        if self._retry_allowed(job, attempts[key]):
                            self._note_retry(job, attempts[key], error)
                            queue.append(job)
                        else:
                            outcomes[key] = self._fail(job, error, attempts[key])
                    except concurrent.futures.CancelledError:
                        attempts[key] -= 1
                        incidents[key] += 1
                        queue.append(job)
                    except BrokenProcessPool:
                        # Every pending future raises this when any worker
                        # dies, so the shared pool cannot attribute the
                        # crash.  Requeue uncharged; the rebuild/isolate
                        # ladder above assigns blame if it recurs.
                        pool_broken = True
                        attempts[key] -= 1
                        incidents[key] += 1
                        queue.append(job)
                    # repro: ignore[RPR006] crash isolation: the job
                    # itself raised (the pool is fine), and any raise
                    # must become a retry/JobOutcome, not kill the wave.
                    except Exception as exc:
                        error = repr(exc)
                        self._charge_failure(job)
                        if self._retry_allowed(job, attempts[key]):
                            self._note_retry(job, attempts[key], error)
                            queue.append(job)
                        else:
                            outcomes[key] = self._fail(job, error, attempts[key])
                    else:
                        duration = time.monotonic() - starts[key]
                        outcomes[key] = self._finish(
                            job, result, attempts[key], duration
                        )
                if pool_broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                elif queue:
                    self._backoff(
                        max(attempts[j.cache_key] for j in queue),
                        salt=queue[0].cache_key,
                    )
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)

        return outcomes

    def _execute_isolated(
        self, jobs: list[Job], attempts: dict[str, int]
    ) -> dict[str, JobOutcome]:
        """One fresh single-worker pool per attempt: exact crash blame."""
        outcomes: dict[str, JobOutcome] = {}
        store_dir = self._store_dir()
        parent_pid = os.getpid()  # repro: ignore[RPR002] crash-blame bookkeeping
        for job in jobs:
            key = job.cache_key
            while True:
                attempts[key] += 1
                pool = self._new_pool(1)
                if pool is None:
                    self.events.emit(
                        "degraded",
                        detail="process pool unavailable; running serially",
                    )
                    serial = self._execute_serial([job])
                    outcomes.update(serial)
                    break
                start = time.monotonic()
                rogue = False
                try:
                    future = pool.submit(
                        _worker_run, job, store_dir, attempts[key], parent_pid
                    )
                    result = future.result(timeout=self._timeout_for(job))
                except concurrent.futures.TimeoutError:
                    rogue = True
                    error = f"timed out after {self._timeout_for(job):.1f}s"
                    self._charge_failure(job)
                except BrokenProcessPool as exc:
                    error = f"worker died: {exc!r}"
                    self._charge_failure(job)
                # repro: ignore[RPR006] crash isolation: arbitrary job
                # errors must be attributed to this job and retried.
                except Exception as exc:
                    error = repr(exc)
                    self._charge_failure(job)
                else:
                    duration = time.monotonic() - start
                    outcomes[key] = self._finish(
                        job, result, attempts[key], duration
                    )
                    pool.shutdown(wait=True)
                    break
                pool.shutdown(wait=not rogue, cancel_futures=True)
                if self._retry_allowed(job, attempts[key]):
                    self._note_retry(job, attempts[key], error)
                    self._backoff(attempts[key], salt=key)
                    continue
                outcomes[key] = self._fail(job, error, attempts[key])
                break
        return outcomes
