"""Typed, hashable job specifications with content-addressed cache keys.

A job is a *pure description* of one unit of work: every input that can
influence the result is a field (or derived from a field), and the cache
key is a SHA-256 over the canonical JSON of all of those inputs plus the
code schema version.  Two jobs with the same key are guaranteed to
produce the same result, which is what lets the scheduler dedupe them and
the store reuse results across processes and sessions.

Job specs are frozen dataclasses of primitives (plus other frozen specs),
so they are hashable, comparable, and picklable — a worker process
receives the spec, rebuilds its context locally, and returns the result.

Stages (the scheduler orders them through ``dependencies()``):

``simulate``       cycle-level timing simulation (the expensive part)
``evaluate``       power/thermal fixed point at one operating point
``qualification``  suite-wide worst-case activity (p_qual)
``drm`` / ``dtm``  reliability- / temperature-constrained oracle search
"""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass, fields
from functools import cached_property

from repro.config.dvs import OperatingPoint
from repro.config.microarch import BASE_MICROARCH, MicroarchConfig
from repro.cpu.simulator import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    CycleSimulator,
)
from repro.errors import ReproError
from repro.workloads.characteristics import WorkloadProfile
from repro.workloads.suite import SUITE_NAMES, workload_by_name

from repro.engine.store import SCHEMA_VERSION


class EngineError(ReproError):
    """Raised for malformed job graphs or engine misuse."""


def canonical_json(payload) -> str:
    """Deterministic JSON: sorted keys, no whitespace, exact floats."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload) -> str:
    """SHA-256 hex digest of the canonical JSON of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def config_payload(config: MicroarchConfig) -> dict:
    """All fields of a config (stable under field addition via names)."""
    return {f.name: getattr(config, f.name) for f in fields(config)}


def profile_payload(profile: WorkloadProfile) -> dict:
    """Every generator-visible knob of a workload profile.

    The *full* profile goes into the hash — not just its name — so a
    profile edit invalidates cached simulations even when the name stays
    the same.
    """
    return {
        "name": profile.name,
        "category": profile.category,
        "mix": {op.name: p for op, p in profile.mix.items()},
        "dep_distance_mean": profile.dep_distance_mean,
        "branch": {
            "n_static": profile.branch.n_static,
            "bias": profile.branch.bias,
            "taken_fraction": profile.branch.taken_fraction,
        },
        "memory": {
            "p_hot": profile.memory.p_hot,
            "p_warm": profile.memory.p_warm,
            "hot_blocks": profile.memory.hot_blocks,
            "warm_blocks": profile.memory.warm_blocks,
            "stride_fraction": profile.memory.stride_fraction,
        },
        "code_blocks": profile.code_blocks,
        "phases": [
            {
                "name": ph.name,
                "weight": ph.weight,
                "ilp_scale": ph.ilp_scale,
                "miss_scale": ph.miss_scale,
                "fp_scale": ph.fp_scale,
            }
            for ph in profile.phases
        ],
    }


def simulate_cache_key(
    profile: WorkloadProfile,
    config: MicroarchConfig,
    instructions: int,
    warmup: int,
    seed: int,
) -> str:
    """The content hash of one cycle-level simulation.

    Shared by :class:`SimulateJob` and
    :class:`~repro.harness.sweep.SimulationCache` so both address the
    same store entries.
    """
    return content_hash(
        {
            "kind": "simulate",
            "schema": SCHEMA_VERSION,
            "profile": profile_payload(profile),
            "config": config_payload(config),
            "instructions": instructions,
            "warmup": warmup,
            "seed": seed,
        }
    )


@dataclass(frozen=True)
class JobContext:
    """Per-process execution context handed to ``Job.run``.

    Carries only what must be shared across jobs in one process: the
    store location (so jobs in worker processes read simulations that
    earlier stages persisted) and nothing that could make results depend
    on *which* process ran the job.
    """

    store_dir: str | None = None

    def simulation_cache(self, instructions: int, warmup: int, seed: int):
        from repro.harness.sweep import SimulationCache

        return SimulationCache(
            instructions=instructions,
            warmup=warmup,
            seed=seed,
            disk_dir=self.store_dir,
        )


class Job(abc.ABC):
    """One unit of work: a pure function of its spec fields.

    Class attributes:
        kind: persistence codec / payload discriminator.
        stage: scheduler stage (also the event-log timing bucket).
        timeout_s: per-job wall-clock budget; ``None`` uses the
            executor's default.  Policy, not content — deliberately not
            part of the cache key.
    """

    kind: str = "abstract"
    stage: str = "abstract"
    timeout_s: float | None = None

    @abc.abstractmethod
    def payload(self) -> dict:
        """Every input that can influence the result, JSON-ready."""

    @abc.abstractmethod
    def run(self, ctx: JobContext):
        """Execute the job (possibly in a worker process)."""

    def dependencies(self) -> tuple["Job", ...]:
        """Jobs whose results must be in the store before this one runs."""
        return ()

    @cached_property
    def cache_key(self) -> str:
        return content_hash(
            {"kind": self.kind, "schema": SCHEMA_VERSION, **self.payload()}
        )

    def describe(self) -> str:
        """Short human-readable label for progress output."""
        return f"{self.kind}:{self.cache_key[:10]}"


def _resolve_profile(name: str) -> WorkloadProfile:
    return workload_by_name(name)


@dataclass(frozen=True)
class SimulateJob(Job):
    """One cycle-level simulation of a suite application on one config."""

    profile_name: str
    config: MicroarchConfig = BASE_MICROARCH
    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP
    seed: int = 42

    kind = "simulate"
    stage = "simulate"

    def payload(self) -> dict:
        return {
            "profile": profile_payload(_resolve_profile(self.profile_name)),
            "config": config_payload(self.config),
            "instructions": self.instructions,
            "warmup": self.warmup,
            "seed": self.seed,
        }

    @cached_property
    def cache_key(self) -> str:
        # Route through the shared helper so SimulationCache and the
        # engine always agree on the address of a simulation.
        return simulate_cache_key(
            _resolve_profile(self.profile_name),
            self.config,
            self.instructions,
            self.warmup,
            self.seed,
        )

    def run(self, ctx: JobContext):
        profile = _resolve_profile(self.profile_name)
        simulator = CycleSimulator(
            config=self.config,
            instructions=self.instructions,
            warmup=self.warmup,
            seed=self.seed,
        )
        return simulator.run(profile)

    def describe(self) -> str:
        return f"simulate:{self.profile_name}:{self.config.describe()}"


@dataclass(frozen=True)
class EvaluateJob(Job):
    """Power/thermal fixed point of one simulated run at one DVS point."""

    simulate: SimulateJob
    op: OperatingPoint

    kind = "evaluate"
    stage = "evaluate"

    def payload(self) -> dict:
        return {
            "simulate": self.simulate.payload(),
            "op": {
                "frequency_hz": self.op.frequency_hz,
                "voltage_v": self.op.voltage_v,
            },
            "platform": _default_platform_fingerprint(),
        }

    def dependencies(self) -> tuple[Job, ...]:
        return (self.simulate,)

    def run(self, ctx: JobContext):
        from repro.harness.platform import Platform

        cache = ctx.simulation_cache(
            self.simulate.instructions,
            self.simulate.warmup,
            self.simulate.seed,
        )
        run = cache.run(
            _resolve_profile(self.simulate.profile_name), self.simulate.config
        )
        return Platform().evaluate(run, self.op)

    def describe(self) -> str:
        return (
            f"evaluate:{self.simulate.profile_name}:"
            f"{self.simulate.config.describe()}@{self.op.frequency_ghz:.2f}GHz"
        )


@dataclass(frozen=True)
class QualificationJob(Job):
    """Suite-wide worst-case per-structure activity (the paper's p_qual)."""

    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP
    seed: int = 42
    suite: tuple[str, ...] = tuple(SUITE_NAMES)

    kind = "qualification"
    stage = "qualification"

    def payload(self) -> dict:
        return {
            "suite": [profile_payload(_resolve_profile(n)) for n in self.suite],
            "instructions": self.instructions,
            "warmup": self.warmup,
            "seed": self.seed,
        }

    def dependencies(self) -> tuple[Job, ...]:
        return tuple(
            SimulateJob(
                profile_name=name,
                config=BASE_MICROARCH,
                instructions=self.instructions,
                warmup=self.warmup,
                seed=self.seed,
            )
            for name in self.suite
        )

    def run(self, ctx: JobContext) -> dict:
        from repro.config.technology import STRUCTURE_NAMES

        cache = ctx.simulation_cache(self.instructions, self.warmup, self.seed)
        worst = {name: 0.0 for name in STRUCTURE_NAMES}
        for name in self.suite:
            run = cache.run(_resolve_profile(name), BASE_MICROARCH)
            for pr in run.phases:
                for structure, a in pr.stats.activity.items():
                    worst[structure] = max(worst[structure], a)
        return worst

    def describe(self) -> str:
        return f"qualification:{len(self.suite)}-apps"


@dataclass(frozen=True)
class DRMSearchJob(Job):
    """The DRM oracle's search for one (application, T_qual, mode).

    Depends on every simulation its adaptation space needs plus the
    suite's base simulations (for p_qual), so by the time it runs, all
    cycle-level work is already in the store and the job itself is pure
    reliability math.
    """

    profile_name: str
    t_qual_k: float
    mode: str = "archdvs"
    dvs_steps: int = 26
    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP
    seed: int = 42

    kind = "drm"
    stage = "drm"

    def payload(self) -> dict:
        return {
            "profile": profile_payload(_resolve_profile(self.profile_name)),
            "t_qual_k": self.t_qual_k,
            "mode": self.mode,
            "dvs_steps": self.dvs_steps,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "seed": self.seed,
            "platform": _default_platform_fingerprint(),
        }

    def _configs(self) -> tuple[MicroarchConfig, ...]:
        from repro.config.microarch import arch_adaptation_space

        if self.mode == "dvs":
            return (BASE_MICROARCH,)
        return arch_adaptation_space()

    def dependencies(self) -> tuple[Job, ...]:
        sims = {
            SimulateJob(
                profile_name=self.profile_name,
                config=config,
                instructions=self.instructions,
                warmup=self.warmup,
                seed=self.seed,
            )
            for config in self._configs()
        }
        # p_qual needs every suite app's base-config simulation.
        for name in SUITE_NAMES:
            sims.add(
                SimulateJob(
                    profile_name=name,
                    config=BASE_MICROARCH,
                    instructions=self.instructions,
                    warmup=self.warmup,
                    seed=self.seed,
                )
            )
        return tuple(sorted(sims, key=lambda j: j.cache_key))

    def run(self, ctx: JobContext):
        from repro.core.drm import AdaptationMode, DRMOracle

        cache = ctx.simulation_cache(self.instructions, self.warmup, self.seed)
        oracle = DRMOracle(cache=cache, dvs_steps=self.dvs_steps)
        return oracle.best(
            _resolve_profile(self.profile_name),
            t_qual_k=self.t_qual_k,
            mode=AdaptationMode(self.mode),
        )

    def describe(self) -> str:
        return f"drm:{self.profile_name}@{self.t_qual_k:.0f}K:{self.mode}"


@dataclass(frozen=True)
class DTMJob(Job):
    """The DTM comparator's choice for one (application, T_limit)."""

    profile_name: str
    t_limit_k: float
    dvs_steps: int = 26
    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP
    seed: int = 42

    kind = "dtm"
    stage = "dtm"

    def payload(self) -> dict:
        return {
            "profile": profile_payload(_resolve_profile(self.profile_name)),
            "t_limit_k": self.t_limit_k,
            "dvs_steps": self.dvs_steps,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "seed": self.seed,
            "platform": _default_platform_fingerprint(),
        }

    def dependencies(self) -> tuple[Job, ...]:
        return (
            SimulateJob(
                profile_name=self.profile_name,
                config=BASE_MICROARCH,
                instructions=self.instructions,
                warmup=self.warmup,
                seed=self.seed,
            ),
        )

    def run(self, ctx: JobContext):
        from repro.core.dtm import DTMOracle

        cache = ctx.simulation_cache(self.instructions, self.warmup, self.seed)
        oracle = DTMOracle(cache=cache, dvs_steps=self.dvs_steps)
        return oracle.best(
            _resolve_profile(self.profile_name), t_limit_k=self.t_limit_k
        )

    def describe(self) -> str:
        return f"dtm:{self.profile_name}@{self.t_limit_k:.0f}K"


def _default_platform_fingerprint() -> dict:
    """Fingerprint of the default platform jobs construct in workers.

    Jobs that embed power/thermal evaluation hash the platform's physical
    parameters, so a change to the modelled technology or package stack
    invalidates their cached decisions.
    """
    from repro.harness.platform import Platform

    return Platform().fingerprint()
