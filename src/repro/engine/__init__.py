"""repro.engine — a parallel, fault-tolerant job engine for RAMP/DRM work.

The engine turns the harness's implicit workflow (simulate each
(application, configuration) pair, then run power/thermal/RAMP math on
top) into an explicit, schedulable artifact:

- :mod:`repro.engine.jobs` — typed, hashable job specs whose cache keys
  are content hashes over *all* inputs (profile, config, budgets, seed,
  schema version);
- :mod:`repro.engine.scheduler` — a deduplicating DAG scheduler that
  orders stages through declared dependencies;
- :mod:`repro.engine.executor` — process-pool execution with per-job
  timeouts, bounded retry with jittered backoff, per-job failure
  budgets, and a graceful-degradation ladder (pool rebuild, suspect
  isolation, serial fallback);
- :mod:`repro.engine.store` — a content-addressed, schema-versioned
  on-disk result store with atomic writes and two-strike corrupt-entry
  self-healing (quarantine on the second strike);
- :mod:`repro.engine.events` — structured event log and metrics.

Quickstart::

    from repro.engine import Engine
    from repro.engine.jobs import SimulateJob

    engine = Engine(store_dir=".simstore", max_workers=4)
    jobs = [SimulateJob(name) for name in ("bzip2", "twolf")]
    results = engine.run(jobs)           # {job: WorkloadRun}
    print(engine.events.render())

Because results are pure functions of the job specs, a parallel run is
bit-identical to a serial one, and a warm store short-circuits both.
"""

from __future__ import annotations

import os

from repro.engine.events import EventLog, stderr_progress
from repro.engine.executor import ExecutorConfig, JobExecutor, JobOutcome
from repro.engine.jobs import (
    DRMSearchJob,
    DTMJob,
    EngineError,
    EvaluateJob,
    Job,
    JobContext,
    QualificationJob,
    SimulateJob,
    simulate_cache_key,
)
from repro.engine.scheduler import JobGraph
from repro.engine.store import SCHEMA_VERSION, ResultStore

__all__ = [
    "Engine",
    "EngineError",
    "EventLog",
    "ExecutorConfig",
    "Job",
    "JobContext",
    "JobExecutor",
    "JobGraph",
    "JobOutcome",
    "ResultStore",
    "SCHEMA_VERSION",
    "SimulateJob",
    "EvaluateJob",
    "QualificationJob",
    "DRMSearchJob",
    "DTMJob",
    "simulate_cache_key",
    "stderr_progress",
]


class Engine:
    """Facade: graph construction + scheduling + execution + accounting.

    Args:
        store_dir: directory for the persistent result store (``None``
            keeps everything in memory for this engine's lifetime).
        max_workers: parallel worker processes (``None`` = cpu count,
            ``1`` = serial in-process).
        timeout_s: default per-job wall-clock budget.
        retries: extra attempts per failing job.
        failure_budget: maximum concluded failed attempts per job across
            this engine's lifetime before it is failed fast (``None``
            disables; see :class:`ExecutorConfig`).
        events: an :class:`EventLog` to share; a fresh one otherwise.
        progress: optional progress sink (e.g. ``stderr_progress``),
            only used when ``events`` is omitted.
    """

    def __init__(
        self,
        store_dir: str | os.PathLike | None = None,
        max_workers: int | None = None,
        timeout_s: float | None = None,
        retries: int = 1,
        failure_budget: int | None = None,
        events: EventLog | None = None,
        progress=None,
    ) -> None:
        self.events = events if events is not None else EventLog(progress=progress)
        self.store = ResultStore(store_dir) if store_dir is not None else None
        self.telemetry = None
        if self.store is not None:
            from repro.telemetry import STORE_DIRNAME, TelemetryWriter

            self.telemetry = TelemetryWriter(
                self.store.root / STORE_DIRNAME, prefix="engine"
            )
            # A shared EventLog may already stream into another engine's
            # run; the first attachment wins.
            if not self.events.has_sink:
                self.events.attach_telemetry(self.telemetry)
        self.executor = JobExecutor(
            config=ExecutorConfig(
                max_workers=max_workers,
                timeout_s=timeout_s,
                retries=retries,
                failure_budget=failure_budget,
            ),
            store=self.store,
            events=self.events,
        )
        self.outcomes: dict[str, JobOutcome] = {}

    # ---- core ----------------------------------------------------------

    def run(self, jobs) -> dict[Job, object]:
        """Execute ``jobs`` (plus their dependency closure).

        Dependencies are scheduled in waves (simulate before evaluate
        before drm/dtm), identical jobs are deduplicated, and results
        come back keyed by the *requested* job specs.  Failed jobs map to
        ``None``; inspect :attr:`outcomes` / :attr:`events` for details.
        """
        graph = JobGraph(events=self.events)
        requested = [graph.add(job) for job in jobs]
        for wave in graph.waves():
            self.outcomes.update(self.executor.execute(wave))
        return {
            job: self._result_of(job.cache_key) for job in requested
        }

    def _result_of(self, key: str):
        outcome = self.outcomes.get(key)
        if outcome is None or outcome.status == "failed":
            return None
        return outcome.result

    def result(self, job: Job):
        """The result of a previously run job (``None`` if failed)."""
        return self._result_of(job.cache_key)

    # ---- conveniences over the paper's workloads -----------------------

    def simulate_many(
        self,
        profile_names,
        configs=None,
        instructions: int | None = None,
        warmup: int | None = None,
        seed: int = 42,
    ) -> dict[tuple[str, str], object]:
        """Run (application × configuration) simulations in parallel.

        Returns ``{(app, config.describe()): WorkloadRun}``.  This is the
        Fig-2 substrate: 9 apps × 18 configs = 162 independent jobs.
        """
        from repro.config.microarch import BASE_MICROARCH
        from repro.cpu.simulator import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP

        if configs is None:
            configs = (BASE_MICROARCH,)
        jobs = [
            SimulateJob(
                profile_name=name,
                config=config,
                instructions=(
                    DEFAULT_INSTRUCTIONS if instructions is None else instructions
                ),
                warmup=DEFAULT_WARMUP if warmup is None else warmup,
                seed=seed,
            )
            for name in profile_names
            for config in configs
        ]
        results = self.run(jobs)
        return {
            (job.profile_name, job.config.describe()): result
            for job, result in results.items()
        }

    def drm_sweep(
        self,
        profile_names,
        t_quals,
        mode: str = "archdvs",
        dvs_steps: int = 26,
        instructions: int | None = None,
        warmup: int | None = None,
        seed: int = 42,
    ) -> dict[tuple[str, float], object]:
        """Parallel DRM oracle sweep; returns ``{(app, t_qual): decision}``.

        The scheduler fans the cycle-level simulations out first (they
        dominate wall time), then the per-(app, T_qual) searches run as
        pure reliability math over the warm store.
        """
        from repro.cpu.simulator import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP

        jobs = [
            DRMSearchJob(
                profile_name=name,
                t_qual_k=float(t_qual),
                mode=mode,
                dvs_steps=dvs_steps,
                instructions=(
                    DEFAULT_INSTRUCTIONS if instructions is None else instructions
                ),
                warmup=DEFAULT_WARMUP if warmup is None else warmup,
                seed=seed,
            )
            for name in profile_names
            for t_qual in t_quals
        ]
        results = self.run(jobs)
        return {
            (job.profile_name, job.t_qual_k): result
            for job, result in results.items()
        }
