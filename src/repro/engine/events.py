"""Structured event log and metrics for engine runs.

Every scheduling decision and execution outcome emits one :class:`Event`
— a flat, JSON-ready record — into an :class:`EventLog`.  The log doubles
as the engine's metrics surface: counters (submitted / deduped / run /
cached / retried / failed / healed / quarantined / resumed /
budget_exhausted) and per-stage wall time, with a
human-readable renderer for CLI output and a ``jsonl`` dump for tooling.

The accounting invariant every run must satisfy (and the tests assert)::

    submitted == run + cached + failed
"""

from __future__ import annotations

import json
import sys
import threading
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Event:
    """One engine occurrence.

    Attributes:
        seq: monotonically increasing sequence number within a log.
        wall_s: seconds since the log was created.
        kind: event type (``submitted``, ``deduped``, ``cache_hit``,
            ``run_started``, ``run_finished``, ``retried``, ``failed``,
            ``healed``, ``quarantined``, ``degraded``, ``resumed``,
            ``budget_exhausted``, ...).
        job_key: content hash of the job involved ("" for engine-level
            events).
        stage: scheduler stage of that job ("" for engine-level events).
        detail: free-form human-readable context.
        data: extra structured fields (durations, attempt counts, ...).
    """

    seq: int
    wall_s: float
    kind: str
    job_key: str = ""
    stage: str = ""
    detail: str = ""
    data: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "wall_s": self.wall_s,
            "kind": self.kind,
            "job_key": self.job_key,
            "stage": self.stage,
            "detail": self.detail,
            "data": self.data,
        }


#: Event kinds that bump a like-named counter.
_COUNTED = {
    "submitted",
    "deduped",
    "cache_hit",
    "run_finished",
    "retried",
    "failed",
    "healed",
    "quarantined",
    "degraded",
    "resumed",
    "budget_exhausted",
}

_COUNTER_NAMES = {
    "submitted": "submitted",
    "deduped": "deduped",
    "cache_hit": "cached",
    "run_finished": "run",
    "retried": "retried",
    "failed": "failed",
    "healed": "healed",
    "quarantined": "quarantined",
    "degraded": "degraded",
    "resumed": "resumed",
    "budget_exhausted": "budget_exhausted",
}


class EventLog:
    """Thread-safe append-only event log with derived metrics.

    Args:
        progress: optional callable invoked with a one-line progress
            string after each outcome event (see :func:`stderr_progress`).
        sink: optional callable invoked with every :class:`Event` after
            it is recorded — the hook that streams events into the
            durable telemetry plane (see :meth:`attach_telemetry`).
    """

    def __init__(self, progress=None, sink=None) -> None:
        self._events: list[Event] = []
        self._lock = threading.Lock()
        self._t0 = time.monotonic()
        self.counters: dict[str, int] = {
            name: 0 for name in _COUNTER_NAMES.values()
        }
        self.stage_wall_s: dict[str, float] = {}
        self.stage_jobs: dict[str, int] = {}
        self._progress = progress
        self._sink = sink

    def attach_telemetry(self, writer, prefix: str = "engine") -> None:
        """Stream every event into a telemetry writer as it is emitted.

        Each event becomes one ``<prefix>.<event-kind>`` record whose
        payload carries the event's job key, stage, detail, and data —
        the durable form ``repro report`` aggregates.  No-op fields are
        dropped to keep frames small.  An existing sink is replaced.
        """

        def _sink(event: Event) -> None:
            payload = {"wall_s": event.wall_s}
            if event.job_key:
                payload["job_key"] = event.job_key
            if event.stage:
                payload["stage"] = event.stage
            if event.detail:
                payload["detail"] = event.detail
            if event.data:
                payload["data"] = event.data
            writer.append(f"{prefix}.{event.kind}", payload)

        self._sink = _sink

    @property
    def has_sink(self) -> bool:
        return self._sink is not None

    # ---- recording -----------------------------------------------------

    def emit(
        self,
        kind: str,
        job_key: str = "",
        stage: str = "",
        detail: str = "",
        **data,
    ) -> Event:
        """Append one event and update derived counters."""
        with self._lock:
            event = Event(
                seq=len(self._events),
                wall_s=time.monotonic() - self._t0,
                kind=kind,
                job_key=job_key,
                stage=stage,
                detail=detail,
                data=data,
            )
            self._events.append(event)
            if kind in _COUNTED:
                self.counters[_COUNTER_NAMES[kind]] += 1
            if kind == "run_finished" and stage:
                self.stage_wall_s[stage] = (
                    self.stage_wall_s.get(stage, 0.0) + data.get("duration_s", 0.0)
                )
                self.stage_jobs[stage] = self.stage_jobs.get(stage, 0) + 1
        # Sink and progress run outside the lock: both may do I/O, and
        # the telemetry writer orders records with its own lock.
        if self._sink is not None:
            self._sink(event)
        if self._progress is not None and kind in (
            "cache_hit",
            "run_finished",
            "failed",
        ):
            self._progress(self.progress_line())
        return event

    # ---- reading -------------------------------------------------------

    @property
    def events(self) -> tuple[Event, ...]:
        with self._lock:
            return tuple(self._events)

    def summary(self) -> dict:
        """Counters plus per-stage timing, JSON-ready."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "stages": {
                    stage: {
                        "jobs": self.stage_jobs.get(stage, 0),
                        "wall_s": round(self.stage_wall_s.get(stage, 0.0), 6),
                    }
                    for stage in sorted(
                        set(self.stage_wall_s) | set(self.stage_jobs)
                    )
                },
                "events": len(self._events),
            }

    def accounted(self) -> bool:
        """The invariant: every submitted job ended run, cached or failed."""
        c = self.counters
        return c["submitted"] == c["run"] + c["cached"] + c["failed"]

    def progress_line(self) -> str:
        c = self.counters
        done = c["run"] + c["cached"] + c["failed"]
        return (
            f"engine {done}/{c['submitted']} "
            f"(run {c['run']}, cached {c['cached']}, failed {c['failed']}, "
            f"retried {c['retried']})"
        )

    def render(self) -> str:
        """Multi-line human-readable run report."""
        c = self.counters
        lines = [
            f"jobs: {c['submitted']} submitted"
            + (f" (+{c['deduped']} deduped)" if c["deduped"] else "")
            + f" | {c['run']} run | {c['cached']} cached"
            + f" | {c['failed']} failed | {c['retried']} retried"
        ]
        if c["healed"] or c["quarantined"]:
            lines.append(
                f"store: {c['healed']} corrupt entries healed, "
                f"{c['quarantined']} quarantined"
            )
        if c["degraded"]:
            lines.append(f"executor: {c['degraded']} degradation step(s) taken")
        if c["budget_exhausted"]:
            lines.append(
                f"executor: {c['budget_exhausted']} job(s) hit the failure budget"
            )
        if c["resumed"]:
            lines.append(f"sweep: {c['resumed']} cell(s) restored from checkpoint")
        for stage in sorted(set(self.stage_wall_s) | set(self.stage_jobs)):
            lines.append(
                f"  {stage:13s} {self.stage_jobs.get(stage, 0):4d} jobs  "
                f"{self.stage_wall_s.get(stage, 0.0):8.2f} s"
            )
        lines.append(
            "accounting: submitted == run + cached + failed -> "
            + ("OK" if self.accounted() else "VIOLATED")
        )
        return "\n".join(lines)

    def to_jsonl(self) -> str:
        """One JSON object per line, schema per :meth:`Event.as_dict`."""
        return "\n".join(json.dumps(e.as_dict()) for e in self.events)


def stderr_progress(line: str) -> None:
    """Default progress sink: overwrite a status line on stderr."""
    print(f"\r{line}", end="", file=sys.stderr, flush=True)
