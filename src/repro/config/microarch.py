"""Microarchitectural configuration and the DRM ``Arch`` adaptation space.

The base non-adaptive processor (Table 1) is an 8-wide out-of-order core
similar to the MIPS R10000: a unified 128-entry instruction window (issue
queue + reorder buffer), separate 192-entry integer and floating-point
physical register files, 6 integer ALUs, 4 FPUs, 2 address-generation
units, and a 32-entry memory queue.

For DRM's microarchitectural adaptation, the paper explores 18
configurations built from combinations of instruction-window size, number
of ALUs, and number of FPUs, ranging from the full 128-entry/6-ALU/4-FPU
machine down to 16 entries/2 ALUs/1 FPU.  The issue width always equals
the number of active functional units, and powering down a functional
unit also powers down its selection logic, result-bus slice, wake-up
ports, and register-file write ports — modelled here through the
``powered_fraction`` accessors, which the power model and RAMP use to
scale dynamic power and (for electromigration and TDDB) FIT with the
powered-on area.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Instruction-window sizes explored by the Arch adaptation.
_ADAPT_WINDOW_SIZES = (128, 96, 64, 48, 32, 16)

#: (n_ialu, n_fpu) pairs explored by the Arch adaptation.
_ADAPT_FU_PAIRS = ((6, 4), (4, 2), (2, 1))


@dataclass(frozen=True)
class MicroarchConfig:
    """A microarchitectural configuration of the modelled core.

    Attributes mirror Table 1 of the paper.  All counts are per-core.
    ``issue_width`` is derived: the paper sets it equal to the sum of all
    active functional units, so it is not an independent knob.
    """

    fetch_width: int = 8
    retire_width: int = 8
    window_size: int = 128
    n_ialu: int = 6
    n_fpu: int = 4
    n_agen: int = 2
    int_registers: int = 192
    fp_registers: int = 192
    memory_queue_size: int = 32
    ras_entries: int = 32
    bpred_bytes: int = 2048

    def __post_init__(self) -> None:
        positive_fields = (
            ("fetch_width", self.fetch_width),
            ("retire_width", self.retire_width),
            ("window_size", self.window_size),
            ("n_ialu", self.n_ialu),
            ("n_fpu", self.n_fpu),
            ("n_agen", self.n_agen),
            ("int_registers", self.int_registers),
            ("fp_registers", self.fp_registers),
            ("memory_queue_size", self.memory_queue_size),
            ("ras_entries", self.ras_entries),
            ("bpred_bytes", self.bpred_bytes),
        )
        for name, value in positive_fields:
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if self.window_size > BASE_WINDOW_SIZE:
            raise ConfigurationError(
                f"window_size {self.window_size} exceeds the base processor's "
                f"{BASE_WINDOW_SIZE} entries; Arch adaptation can only shrink"
            )
        if self.n_ialu > BASE_N_IALU or self.n_fpu > BASE_N_FPU:
            raise ConfigurationError(
                "Arch adaptation cannot add functional units beyond the base "
                f"({BASE_N_IALU} ALU / {BASE_N_FPU} FPU)"
            )

    @property
    def issue_width(self) -> int:
        """Issue width: the sum of all active functional units."""
        return self.n_ialu + self.n_fpu + self.n_agen

    # ---- powered-on fractions used by the power model and RAMP ----------

    def powered_fraction(self, structure: str) -> float:
        """Fraction of a structure's base area that is powered on.

        DRM's Arch adaptation powers down window entries and functional
        units (along with their selection logic, result-bus slice, wake-up
        ports, and register write ports).  A powered-down slice has no
        current flow or supply voltage, so its electromigration and TDDB
        FIT contributions vanish — RAMP scales those mechanisms' FIT by
        this fraction.

        Structures not touched by the adaptation return 1.0.
        """
        if structure == "window":
            return self.window_size / BASE_WINDOW_SIZE
        if structure == "ialu":
            return self.n_ialu / BASE_N_IALU
        if structure == "fpu":
            return self.n_fpu / BASE_N_FPU
        return 1.0

    def describe(self) -> str:
        """Short human-readable identifier, e.g. ``w128-a6-f4``."""
        return f"w{self.window_size}-a{self.n_ialu}-f{self.n_fpu}"


#: Base-machine resource counts referenced by the validation above and by
#: the powered-fraction computation.  They match Table 1.
BASE_WINDOW_SIZE = 128
BASE_N_IALU = 6
BASE_N_FPU = 4

#: The base non-adaptive processor of Table 1.
BASE_MICROARCH = MicroarchConfig()


#: Floors for the shed ladder: shrinking below these leaves no usable
#: capacity (the 16-entry/2-ALU/1-FPU corner of the Arch space).
_SHED_FLOORS = {"window": 16, "ialu": 2, "fpu": 1}


def shed_structure(config: MicroarchConfig, structure: str) -> MicroarchConfig | None:
    """Halve a worn structure's powered capacity, or ``None`` at the floor.

    The wear-aware controller's "shed" rung: powering down half of a
    structure's slices removes their electromigration and TDDB wear (via
    ``powered_fraction``) at a performance cost the simulator observes
    directly.  Only the Arch-adaptive structures (window, ialu, fpu) can
    shed; others — and structures already at the Arch-space floor —
    return ``None`` so the caller can fall through to the next rung.
    """
    if structure == "window":
        size = max(_SHED_FLOORS["window"], config.window_size // 2)
        if size == config.window_size:
            return None
        return replace(config, window_size=size)
    if structure == "ialu":
        count = max(_SHED_FLOORS["ialu"], config.n_ialu // 2)
        if count == config.n_ialu:
            return None
        return replace(config, n_ialu=count)
    if structure == "fpu":
        count = max(_SHED_FLOORS["fpu"], config.n_fpu // 2)
        if count == config.n_fpu:
            return None
        return replace(config, n_fpu=count)
    return None


def arch_adaptation_space(base: MicroarchConfig = BASE_MICROARCH) -> tuple[MicroarchConfig, ...]:
    """The 18 microarchitectural configurations explored by DRM's Arch.

    Combinations of 6 instruction-window sizes (128 down to 16) and 3
    functional-unit mixes (6 ALU/4 FPU, 4/2, 2/1), matching the paper's
    count of 18 configurations spanning 128-entry/6-ALU/4-FPU down to
    16-entry/2-ALU/1-FPU.  The first element is always the base (most
    aggressive) configuration.
    """
    configs = []
    for window in _ADAPT_WINDOW_SIZES:
        for n_ialu, n_fpu in _ADAPT_FU_PAIRS:
            configs.append(
                replace(base, window_size=window, n_ialu=n_ialu, n_fpu=n_fpu)
            )
    return tuple(configs)
