"""Dynamic voltage and frequency scaling (DVS) operating points.

The paper varies processor frequency from 2.5 GHz to 5.0 GHz and always
sets the voltage to the level that supports the simulated frequency, with
a voltage/frequency relationship extrapolated from Intel's Pentium-M
(Centrino).  We model that relationship as linear around the nominal
(4.0 GHz, 1.0 V) point, which reproduces the paper's observation that
power has a near-cubic dependence on frequency (P_dyn ~ V^2 f with V
linear in f).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OperatingPoint:
    """A (frequency, voltage) pair at which the core runs.

    Attributes:
        frequency_hz: clock frequency in hertz.
        voltage_v: supply voltage in volts.
    """

    frequency_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0.0:
            raise ConfigurationError("frequency must be positive")
        if self.voltage_v <= 0.0:
            raise ConfigurationError("voltage must be positive")

    @property
    def frequency_ghz(self) -> float:
        """Clock frequency in gigahertz (for reporting)."""
        return self.frequency_hz / 1e9


@dataclass(frozen=True)
class VoltageFrequencyCurve:
    """Linear V(f) law extrapolated from the Pentium-M DVS table.

    ``voltage(f) = v_nominal + slope_v_per_ghz * (f - f_nominal)`` with f in
    GHz.  The defaults put 2.5 GHz at 0.895 V and 5.0 GHz at 1.07 V around
    the nominal 4.0 GHz / 1.0 V point.

    Attributes:
        f_nominal_hz: anchor frequency (the base processor's 4.0 GHz).
        v_nominal: anchor voltage (1.0 V).
        slope_v_per_ghz: dV/df in volts per gigahertz.
        f_min_hz / f_max_hz: the DVS range explored by the paper.
    """

    f_nominal_hz: float = 4.0e9
    v_nominal: float = 1.0
    slope_v_per_ghz: float = 0.07
    f_min_hz: float = 2.5e9
    f_max_hz: float = 5.0e9

    def __post_init__(self) -> None:
        if not 0.0 < self.f_min_hz <= self.f_nominal_hz <= self.f_max_hz:
            raise ConfigurationError(
                "require 0 < f_min <= f_nominal <= f_max, got "
                f"{self.f_min_hz}, {self.f_nominal_hz}, {self.f_max_hz}"
            )
        if self.voltage_at(self.f_min_hz) <= 0.0:
            raise ConfigurationError("V(f_min) must remain positive")

    def voltage_at(self, frequency_hz: float) -> float:
        """Supply voltage required to support ``frequency_hz``."""
        delta_ghz = (frequency_hz - self.f_nominal_hz) / 1e9
        return self.v_nominal + self.slope_v_per_ghz * delta_ghz

    def operating_point(self, frequency_hz: float) -> OperatingPoint:
        """Build an :class:`OperatingPoint` at ``frequency_hz``.

        Raises:
            ConfigurationError: if the frequency is outside the DVS range.
        """
        if not self.f_min_hz <= frequency_hz <= self.f_max_hz:
            raise ConfigurationError(
                f"frequency {frequency_hz / 1e9:.3f} GHz outside DVS range "
                f"[{self.f_min_hz / 1e9:.2f}, {self.f_max_hz / 1e9:.2f}] GHz"
            )
        return OperatingPoint(frequency_hz, self.voltage_at(frequency_hz))

    @property
    def nominal(self) -> OperatingPoint:
        """The base processor's operating point (4.0 GHz, 1.0 V)."""
        return OperatingPoint(self.f_nominal_hz, self.v_nominal)

    def grid(self, steps: int = 21) -> tuple[OperatingPoint, ...]:
        """Evenly spaced operating points across the DVS range.

        The grid always contains the nominal point exactly (it is inserted
        if the even spacing misses it) so that "run at base" is always an
        available DVS decision.
        """
        if steps < 2:
            raise ConfigurationError("DVS grid needs at least 2 steps")
        freqs = list(np.linspace(self.f_min_hz, self.f_max_hz, steps))
        if not any(abs(f - self.f_nominal_hz) < 1e3 for f in freqs):
            freqs.append(self.f_nominal_hz)
            freqs.sort()
        return tuple(self.operating_point(f) for f in freqs)


DEFAULT_VF_CURVE = VoltageFrequencyCurve()
