"""Technology parameters and the on-chip structure inventory.

The paper models a 65 nm processor core (Table 1):

- supply voltage 1.0 V, base frequency 4.0 GHz
- core size 20.2 mm^2 (4.5 mm x 4.5 mm), not counting the L2 cache
- leakage power density 0.5 W/mm^2 at 383 K, with the exponential
  temperature dependence of Heo et al. (curve-fit constant 0.017 for 65 nm)

RAMP divides the core into a small number of architectural structures and
applies the failure models to each structure as an aggregate.  The
structure inventory below mirrors the list in Section 3 of the paper
(ALUs, FPUs, register files, branch predictor, caches, load-store queue,
instruction window) plus a residual "other" block for decode/control/clock
so the areas sum to the quoted 20.2 mm^2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StructureSpec:
    """One architectural structure tracked by the power/thermal/RAMP models.

    Attributes:
        name: canonical identifier used across all subsystems.
        area_mm2: silicon area of the structure in the base configuration.
        adaptive: whether DRM's microarchitectural adaptation can power
            down part of this structure (functional units, window entries).
        peak_dynamic_w: calibrated Wattch-style maximum dynamic power at the
            base operating point (1.0 V, 4.0 GHz) when the structure is
            accessed every cycle at full width.
    """

    name: str
    area_mm2: float
    adaptive: bool
    peak_dynamic_w: float

    def __post_init__(self) -> None:
        if self.area_mm2 <= 0.0:
            raise ConfigurationError(
                f"structure {self.name!r} must have positive area"
            )
        if self.peak_dynamic_w < 0.0:
            raise ConfigurationError(
                f"structure {self.name!r} must have non-negative peak power"
            )


#: The core structure inventory.  Areas are an R10000-like split of the
#: paper's 20.2 mm^2 core; peak dynamic powers are calibrated so the 9-app
#: suite spans roughly the 15-37 W base-power range of Table 2.
STRUCTURES: tuple[StructureSpec, ...] = (
    StructureSpec("l1i", area_mm2=2.2, adaptive=False, peak_dynamic_w=6.09),
    StructureSpec("l1d", area_mm2=4.0, adaptive=False, peak_dynamic_w=9.86),
    StructureSpec("bpred", area_mm2=0.8, adaptive=False, peak_dynamic_w=2.32),
    StructureSpec("window", area_mm2=2.4, adaptive=True, peak_dynamic_w=11.02),
    StructureSpec("intreg", area_mm2=1.2, adaptive=False, peak_dynamic_w=4.93),
    StructureSpec("fpreg", area_mm2=1.2, adaptive=False, peak_dynamic_w=3.77),
    StructureSpec("ialu", area_mm2=2.4, adaptive=True, peak_dynamic_w=9.28),
    StructureSpec("fpu", area_mm2=3.2, adaptive=True, peak_dynamic_w=11.31),
    StructureSpec("agen", area_mm2=0.8, adaptive=False, peak_dynamic_w=2.61),
    StructureSpec("lsq", area_mm2=1.0, adaptive=False, peak_dynamic_w=4.06),
    StructureSpec("other", area_mm2=1.0, adaptive=False, peak_dynamic_w=2.9),
)

STRUCTURE_NAMES: tuple[str, ...] = tuple(s.name for s in STRUCTURES)

_STRUCTURES_BY_NAME = {s.name: s for s in STRUCTURES}


def structure_by_name(name: str) -> StructureSpec:
    """Look up a structure spec by its canonical name.

    Raises:
        ConfigurationError: if ``name`` is not a known structure.
    """
    try:
        return _STRUCTURES_BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown structure {name!r}; known: {sorted(_STRUCTURES_BY_NAME)}"
        ) from None


@dataclass(frozen=True)
class TechnologyParameters:
    """Process-technology parameters for the modelled 65 nm node (Table 1).

    Attributes:
        process_nm: feature size in nanometres.
        vdd_nominal_v: nominal supply voltage in volts.
        frequency_nominal_hz: base (non-adaptive) clock frequency in hertz.
        core_area_mm2: total core area excluding the L2 cache.
        leakage_density_w_per_mm2: leakage power density at
            ``leakage_reference_temp_k``.
        leakage_reference_temp_k: temperature at which the leakage density
            was characterised (383 K in the paper).
        leakage_temp_coefficient_per_k: the Heo et al. exponential curve-fit
            constant: P_leak(T) = P_ref * exp(coeff * (T - T_ref)).
    """

    process_nm: float = 65.0
    vdd_nominal_v: float = 1.0
    frequency_nominal_hz: float = 4.0e9
    core_area_mm2: float = 20.2
    leakage_density_w_per_mm2: float = 0.5
    leakage_reference_temp_k: float = 383.0
    leakage_temp_coefficient_per_k: float = 0.017

    def __post_init__(self) -> None:
        if self.vdd_nominal_v <= 0.0:
            raise ConfigurationError("nominal Vdd must be positive")
        if self.frequency_nominal_hz <= 0.0:
            raise ConfigurationError("nominal frequency must be positive")
        if self.core_area_mm2 <= 0.0:
            raise ConfigurationError("core area must be positive")
        if self.leakage_density_w_per_mm2 < 0.0:
            raise ConfigurationError("leakage density must be non-negative")

    @property
    def die_edge_mm(self) -> float:
        """Edge length of the (square) core die in millimetres."""
        return math.sqrt(self.core_area_mm2)

    def structure_area_total_mm2(self) -> float:
        """Sum of the structure areas (should equal ``core_area_mm2``)."""
        return sum(s.area_mm2 for s in STRUCTURES)


DEFAULT_TECHNOLOGY = TechnologyParameters()
