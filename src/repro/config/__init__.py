"""Processor, technology, and operating-point configuration.

This subpackage encodes Table 1 of the paper (the base non-adaptive 65 nm
processor), the 18-point microarchitectural adaptation space used by DRM's
``Arch`` response, and the Pentium-M-style voltage/frequency curve used by
the ``DVS`` response.
"""

from repro.config.technology import TechnologyParameters, STRUCTURES, StructureSpec
from repro.config.microarch import (
    MicroarchConfig,
    BASE_MICROARCH,
    arch_adaptation_space,
)
from repro.config.dvs import VoltageFrequencyCurve, OperatingPoint, DEFAULT_VF_CURVE

__all__ = [
    "TechnologyParameters",
    "STRUCTURES",
    "StructureSpec",
    "MicroarchConfig",
    "BASE_MICROARCH",
    "arch_adaptation_space",
    "VoltageFrequencyCurve",
    "OperatingPoint",
    "DEFAULT_VF_CURVE",
]
