"""Cumulative wear state: Miner's-rule damage per (mechanism, structure).

The SOFR model (Section 3.5) collapses a run to one time-averaged FIT
number; a *trajectory* needs the full field.  :class:`WearState` holds
the accumulated damage fraction of every (mechanism, structure) cell —
Miner's rule for EM/SM/TC, the time-to-breakdown fraction for TDDB; both
accrue as ``rate · hours`` with ``rate = FIT / 1e9`` per hour (see
:mod:`repro.kernels.wear`).  A cell reaching :attr:`DamageModel.fail_threshold`
(1.0 by default) has consumed its lifetime.

Bit-identity contract: accrual is a left fold of elementwise
multiply-adds over float64 arrays, and :meth:`WearState.as_payload` /
:meth:`WearState.from_payload` round-trip through JSON via ``repr``-based
float serialization, which is exact.  Checkpoint/resume and
split-additivity (simulate(A+B) == simulate(A);simulate(B)) therefore
hold *bitwise*, not just approximately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.config.technology import STRUCTURE_NAMES
from repro.core.failure import ALL_MECHANISMS
from repro.errors import LifetimeError
from repro.kernels.wear import accrue

MECHANISM_NAMES: tuple[str, ...] = tuple(m.name for m in ALL_MECHANISMS)

_SHAPE = (len(MECHANISM_NAMES), len(STRUCTURE_NAMES))


@dataclass(frozen=True)
class DamageModel:
    """Parameters of the cumulative-damage accrual.

    Attributes:
        fail_threshold: damage fraction at which a cell has consumed its
            lifetime (Miner's rule fails at 1.0; derate below 1 to model
            qualification guard-bands).
        asymmetry_coefficient: strength of the asymmetric duty-cycle
            aging multiplier (see
            :func:`repro.kernels.wear.duty_asymmetry_factors`); 0 keeps
            the constant-stress limit SOFR-consistent.
    """

    fail_threshold: float = 1.0
    asymmetry_coefficient: float = 0.0

    def __post_init__(self) -> None:
        if self.fail_threshold <= 0.0 or not np.isfinite(self.fail_threshold):
            raise LifetimeError("fail_threshold must be positive and finite")
        if self.asymmetry_coefficient < 0.0 or not np.isfinite(
            self.asymmetry_coefficient
        ):
            raise LifetimeError("asymmetry_coefficient must be non-negative")


class WearState:
    """Accrued damage fractions, shape (n_mechanisms, n_structures).

    Mutable by design — the simulator folds epochs into one state — but
    every mutation goes through :meth:`accrue` / :meth:`reset_structure`
    so the trajectory stays auditable.

    Attributes:
        damage: float64 array, mechanisms × structures in canonical
            (``MECHANISM_NAMES``, ``STRUCTURE_NAMES``) order.
        hours: simulated hours folded in so far.
        epochs: number of accrual steps folded in so far.
    """

    __slots__ = ("damage", "hours", "epochs")

    def __init__(
        self, damage: np.ndarray | None = None, hours: float = 0.0, epochs: int = 0
    ) -> None:
        if damage is None:
            damage = np.zeros(_SHAPE)
        damage = np.asarray(damage, dtype=np.float64)
        if damage.shape != _SHAPE:
            raise LifetimeError(
                f"damage shape {damage.shape} != {_SHAPE} "
                "(mechanisms x structures)"
            )
        if not np.all(np.isfinite(damage)) or np.any(damage < 0.0):
            raise LifetimeError("damage must be finite and non-negative")
        if hours < 0.0 or epochs < 0:
            raise LifetimeError("hours and epochs must be non-negative")
        self.damage = damage
        self.hours = float(hours)
        self.epochs = int(epochs)

    @classmethod
    def fresh(cls) -> "WearState":
        return cls()

    def copy(self) -> "WearState":
        return WearState(self.damage.copy(), self.hours, self.epochs)

    # ------------------------------------------------------------------

    def accrue(self, rates: np.ndarray, hours: float) -> None:
        """Fold one epoch at constant ``rates`` (damage/hour) for ``hours``."""
        self.damage = accrue(self.damage, np.asarray(rates, dtype=np.float64), hours)
        self.hours += hours
        self.epochs += 1

    def reset_structure(self, structure: str) -> None:
        """Zero a structure's accrued wear (a spare was swapped in)."""
        try:
            index = STRUCTURE_NAMES.index(structure)
        except ValueError:
            raise LifetimeError(f"unknown structure {structure!r}") from None
        self.damage[:, index] = 0.0

    # ------------------------------------------------------------------

    @property
    def total(self) -> float:
        """Summed damage over all cells (the SOFR-analogue scalar)."""
        return float(self.damage.sum())

    @property
    def peak(self) -> float:
        """The most-worn single cell's damage fraction."""
        return float(self.damage.max())

    def by_structure(self) -> dict[str, float]:
        """Per-structure damage (summed over mechanisms), canonical order."""
        sums = self.damage.sum(axis=0)
        return {name: float(sums[i]) for i, name in enumerate(STRUCTURE_NAMES)}

    def by_mechanism(self) -> dict[str, float]:
        """Per-mechanism damage (summed over structures), canonical order."""
        sums = self.damage.sum(axis=1)
        return {name: float(sums[i]) for i, name in enumerate(MECHANISM_NAMES)}

    def binding_cell(self) -> tuple[str, str, float]:
        """The (mechanism, structure, damage) of the most-worn cell."""
        m, s = np.unravel_index(int(self.damage.argmax()), self.damage.shape)
        return MECHANISM_NAMES[m], STRUCTURE_NAMES[s], float(self.damage[m, s])

    def failed(self, threshold: float = 1.0) -> bool:
        """Whether any cell has consumed ``threshold`` of its lifetime."""
        return bool(self.damage.max() >= threshold)

    # ------------------------------------------------------------------

    def as_payload(self) -> dict[str, Any]:
        """JSON-safe snapshot; floats round-trip bitwise via ``repr``."""
        return {
            "mechanisms": list(MECHANISM_NAMES),
            "structures": list(STRUCTURE_NAMES),
            "damage": self.damage.tolist(),
            "hours": self.hours,
            "epochs": self.epochs,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "WearState":
        """Inverse of :meth:`as_payload`; validates the axis labels.

        Raises:
            LifetimeError: if the payload's axes do not match this
                build's mechanism/structure order (a checkpoint from an
                incompatible model must not be silently reinterpreted).
        """
        try:
            mechanisms = tuple(payload["mechanisms"])
            structures = tuple(payload["structures"])
            damage = payload["damage"]
            hours = payload["hours"]
            epochs = payload["epochs"]
        except (KeyError, TypeError) as exc:
            raise LifetimeError(f"malformed wear payload: {exc}") from exc
        if mechanisms != MECHANISM_NAMES or structures != tuple(STRUCTURE_NAMES):
            raise LifetimeError(
                "wear payload axes do not match this model "
                f"(got {mechanisms} x {structures})"
            )
        return cls(np.array(damage, dtype=np.float64), float(hours), int(epochs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WearState(total={self.total:.3g}, peak={self.peak:.3g}, "
            f"hours={self.hours:g}, epochs={self.epochs})"
        )
