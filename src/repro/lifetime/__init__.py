"""repro.lifetime — cumulative-damage lifetime simulation.

The paper's SOFR algebra (and :mod:`repro.core.ramp`) reduces a run to
one time-averaged FIT number.  This package models lifetime as a
*trajectory* instead:

- :mod:`repro.lifetime.damage` — per-(mechanism, structure) Miner's-rule
  wear state with bitwise JSON round-tripping;
- :mod:`repro.lifetime.simulator` — integrates
  :class:`~repro.workloads.generator.MissionSchedule` histories through
  the batch kernel's vectorized FIT fields, closed-loop against the
  wear-aware degradation ladder, checkpointed into the telemetry stream
  with SIGKILL-resume bit-identity;
- :mod:`repro.lifetime.adversary` — seeded random/greedy/annealed search
  for wear-maximizing schedules the controller must survive;
- :mod:`repro.lifetime.distributions` — the static lifetime
  distributions and Monte Carlo series-system solver (formerly
  ``repro.core.lifetime``).

Quickstart::

    sim = LifetimeSimulator(platform=platform, cache=cache, ramp=ramp,
                            telemetry_root="telemetry/")
    schedule = random_mission(apps=["gzip", "twolf"],
                              frequencies=[3.0e9, 4.0e9],
                              n_epochs=365, epoch_hours=24.0, seed=7)
    result = sim.simulate(schedule, controller=WearAwareController(...))
    print(result.state.by_structure(), result.end_of_life)

See ``docs/LIFETIME.md`` for the damage models, the controller ladder,
the adversary search, and the checkpoint format.
"""

from repro.lifetime.damage import MECHANISM_NAMES, DamageModel, WearState
from repro.lifetime.distributions import (
    ExponentialLifetime,
    LifetimeDistribution,
    LognormalLifetime,
    SeriesSystemResult,
    WeibullLifetime,
    component_mttfs_from_account,
    series_system_mttf,
    sofr_series_mttf,
)

# The simulator and adversary import the controller/redundancy layer,
# which itself imports the distributions above through the
# ``repro.core.lifetime`` shim — so they must load lazily (PEP 562) to
# keep that shim cycle-free.
_LAZY = {
    "AdversaryResult": "repro.lifetime.adversary",
    "AdversarySearch": "repro.lifetime.adversary",
    "OBJECTIVES": "repro.lifetime.adversary",
    "LifetimeResult": "repro.lifetime.simulator",
    "LifetimeSimulator": "repro.lifetime.simulator",
    "MAX_LADDER_RUNGS": "repro.lifetime.simulator",
    "RateTable": "repro.lifetime.simulator",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

__all__ = [
    "AdversaryResult",
    "AdversarySearch",
    "DamageModel",
    "ExponentialLifetime",
    "LifetimeDistribution",
    "LifetimeResult",
    "LifetimeSimulator",
    "LognormalLifetime",
    "MAX_LADDER_RUNGS",
    "MECHANISM_NAMES",
    "OBJECTIVES",
    "RateTable",
    "SeriesSystemResult",
    "WeibullLifetime",
    "WearState",
    "component_mttfs_from_account",
    "series_system_mttf",
    "sofr_series_mttf",
]
