"""Time-dependent lifetime distributions (the paper's future work).

Section 3.5 concedes that the SOFR model's constant-failure-rate
assumption "is clearly inaccurate — a typical wear-out failure mechanism
will have a low failure rate at the beginning of the component's
lifetime and the value will grow as the component ages.  Nevertheless,
it is used for lack of better models", and Section 8 promises to
"incorporate time dependence in our reliability models and relax the
series failure assumption".

This module does both:

- lifetime distributions with the *same mean* as each (structure,
  mechanism) MTTF but realistic shapes — exponential (the SOFR
  assumption), Weibull with shape > 1 (classic wear-out), and lognormal
  (the empirical choice for EM and TDDB populations);
- a Monte Carlo **series-system** solver: the processor fails at the
  minimum of its component lifetimes, whatever their distributions —
  no constant-rate assumption required.

The well-known consequence (confirmed by the authors' own follow-up
work): under wear-out shapes, SOFR *underestimates* the series-system
MTTF — early-life failure rates are far below the average, so the
minimum of many wear-out lifetimes sits later than the exponential
algebra predicts.  The A10 bench quantifies that conservatism for the
reproduction's calibrated FIT fields.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.core.fit import FitAccount
from repro.errors import ReliabilityError


class LifetimeDistribution(abc.ABC):
    """A component-lifetime distribution parameterised by its mean."""

    name: str = "abstract"

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, mttf_hours: float, size: int) -> np.ndarray:
        """Draw ``size`` lifetimes with mean ``mttf_hours``.

        Raises:
            ReliabilityError: if ``mttf_hours`` is not positive.
        """

    def _check(self, mttf_hours: float) -> None:
        if mttf_hours <= 0.0 or not math.isfinite(mttf_hours):
            raise ReliabilityError(f"{self.name}: MTTF must be positive/finite")


class ExponentialLifetime(LifetimeDistribution):
    """Constant failure rate — the SOFR assumption, for cross-checking."""

    name = "exponential"

    def sample(self, rng: np.random.Generator, mttf_hours: float, size: int) -> np.ndarray:
        self._check(mttf_hours)
        return rng.exponential(mttf_hours, size=size)


class WeibullLifetime(LifetimeDistribution):
    """Weibull lifetimes; shape > 1 gives an increasing hazard (wear-out).

    Args:
        shape: the Weibull shape parameter beta.  2-4 is typical for
            wear-out mechanisms; 1 degenerates to exponential.
    """

    def __init__(self, shape: float = 2.0) -> None:
        if shape <= 0.0:
            raise ReliabilityError("Weibull shape must be positive")
        self.shape = shape
        self.name = f"weibull(beta={shape:g})"

    def sample(self, rng: np.random.Generator, mttf_hours: float, size: int) -> np.ndarray:
        self._check(mttf_hours)
        scale = mttf_hours / math.gamma(1.0 + 1.0 / self.shape)
        return scale * rng.weibull(self.shape, size=size)


class LognormalLifetime(LifetimeDistribution):
    """Lognormal lifetimes — the JEDEC-standard shape for EM and TDDB.

    Args:
        sigma: log-standard deviation (0.5 is a common EM population
            figure; larger = more spread).
    """

    def __init__(self, sigma: float = 0.5) -> None:
        if sigma <= 0.0:
            raise ReliabilityError("lognormal sigma must be positive")
        self.sigma = sigma
        self.name = f"lognormal(sigma={sigma:g})"

    def sample(self, rng: np.random.Generator, mttf_hours: float, size: int) -> np.ndarray:
        self._check(mttf_hours)
        mu = math.log(mttf_hours) - 0.5 * self.sigma * self.sigma
        return rng.lognormal(mu, self.sigma, size=size)


@dataclass(frozen=True)
class SeriesSystemResult:
    """Monte Carlo estimate of a series system's lifetime.

    Attributes:
        mttf_hours: mean of the sampled system lifetimes.
        std_error_hours: standard error of that mean.
        sofr_mttf_hours: the constant-rate (SOFR) prediction, for
            comparison.
        distribution: the component distribution used.
        n_samples: Monte Carlo sample count.
    """

    mttf_hours: float
    std_error_hours: float
    sofr_mttf_hours: float
    distribution: str
    n_samples: int

    @property
    def sofr_conservatism(self) -> float:
        """MC MTTF over the SOFR prediction (>1 means SOFR is pessimistic)."""
        return self.mttf_hours / self.sofr_mttf_hours


def component_mttfs_from_account(account: FitAccount) -> list[float]:
    """Per-(structure, mechanism) MTTFs in hours from a FIT ledger.

    Zero-FIT components (e.g. electromigration on a fully gated slice)
    cannot fail and are excluded from the series system.

    Raises:
        ReliabilityError: if no component has a positive failure rate.
    """
    mttfs = [1.0e9 / fit for fit in account.entries.values() if fit > 0.0]
    if not mttfs:
        raise ReliabilityError("no failing components in the account")
    return mttfs


def sofr_series_mttf(mttfs: list[float]) -> float:
    """The constant-rate series-system MTTF: 1 / Σ(1/MTTF_i).

    Raises:
        ReliabilityError: on an empty or non-positive input.
    """
    if not mttfs or any(m <= 0.0 for m in mttfs):
        raise ReliabilityError("need positive component MTTFs")
    return 1.0 / sum(1.0 / m for m in mttfs)


def series_system_mttf(
    mttfs: list[float],
    distribution: LifetimeDistribution,
    n_samples: int = 20_000,
    seed: int = 0,
) -> SeriesSystemResult:
    """Monte Carlo MTTF of a series system with arbitrary lifetimes.

    Each component's lifetime is drawn from ``distribution`` with its own
    mean; the system lifetime is the per-sample minimum.

    Raises:
        ReliabilityError: on an empty component list or non-positive
            sample count.
    """
    if n_samples <= 0:
        raise ReliabilityError("need a positive sample count")
    sofr = sofr_series_mttf(mttfs)
    rng = np.random.default_rng(seed)
    system = np.full(n_samples, np.inf)
    for mttf_hours in mttfs:
        np.minimum(system, distribution.sample(rng, mttf_hours, n_samples), out=system)
    mean = float(system.mean())
    std_error = float(system.std(ddof=1) / math.sqrt(n_samples))
    return SeriesSystemResult(
        mttf_hours=mean,
        std_error_hours=std_error,
        sofr_mttf_hours=sofr,
        distribution=distribution.name,
        n_samples=n_samples,
    )
