"""Seeded red-team search for wear-maximizing mission schedules.

"Targeted Wearout Attacks in Microprocessor Cores" (PAPERS.md) shows
that hostile schedules can concentrate wear far beyond what random
workloads inflict.  :class:`AdversarySearch` hunts for such schedules
over the mission space (which application runs, at which requested
frequency, per epoch) with three stacked strategies:

1. **random population** — seeded uniform missions; their mean wear is
   the *baseline* the attack is measured against;
2. **greedy coordinate ascent** — epoch-by-epoch exhaustive swaps from
   the best random schedule;
3. **simulated annealing** — Metropolis-accepted single-epoch mutations
   with a geometrically decaying temperature, to hop out of greedy's
   local optima.

Every evaluation is *exact* but incremental: a schedule's wear is a
linear fold of per-epoch rate matrices (open loop), so mutating one
epoch updates the summed ``(mechanisms, structures)`` damage matrix with
one ``±rate·hours`` delta instead of re-folding the whole mission.  The
whole search is a pure function of its seed.

The found schedule is the *survival gate*: the CI ``lifetime`` job (and
``tests/test_lifetime_adversary.py``) asserts both that the adversary
beats the random baseline by ≥25 % accrued wear and that the
:class:`~repro.core.controllers.WearAwareController` keeps the chip
within its lifetime target while running it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import LifetimeError
from repro.lifetime.simulator import LifetimeSimulator
from repro.workloads.generator import MissionEpoch, MissionSchedule, random_mission

#: Damage objectives the search can maximise: total Miner's-rule damage
#: across every (mechanism, structure) cell, or the single most-worn
#: cell (the targeted-attack shape).
OBJECTIVES = ("total", "peak")


@dataclass(frozen=True)
class AdversaryResult:
    """Outcome of one adversarial search.

    Attributes:
        baseline_wear: mean objective over the seeded-random population.
        best_wear: objective of the best schedule found.
        best_schedule: the wear-maximizing schedule itself.
        evaluations: schedules evaluated across all strategies.
        history: ``(strategy, objective)`` milestones, in search order.
    """

    baseline_wear: float
    best_wear: float
    best_schedule: MissionSchedule
    evaluations: int
    history: tuple[tuple[str, float], ...]

    @property
    def improvement(self) -> float:
        """Fractional wear gain over the random baseline (0.25 = +25 %)."""
        return self.best_wear / self.baseline_wear - 1.0


class _IncrementalEval:
    """Exact, delta-updated objective for one mutable schedule.

    Keeps the summed ``(M, S)`` damage matrix of the current epoch list;
    replacing epoch ``i`` costs two rate lookups and one elementwise
    update.  The objective is recomputed from the matrix, so ``peak`` is
    exact too (a max cannot be delta-updated, but the matrix can).
    """

    def __init__(self, search: "AdversarySearch", epochs: list[MissionEpoch]) -> None:
        self.search = search
        self.epochs = epochs
        self.matrix = np.zeros_like(search._rate_for(epochs[0]))
        for epoch in epochs:
            self.matrix = self.matrix + search._rate_for(epoch) * epoch.hours

    def objective(self) -> float:
        if self.search.objective == "peak":
            return float(self.matrix.max())
        return float(self.matrix.sum())

    def replace(self, index: int, epoch: MissionEpoch) -> float:
        """Swap epoch ``index`` in and return the new objective."""
        old = self.epochs[index]
        self.matrix = (
            self.matrix
            - self.search._rate_for(old) * old.hours
            + self.search._rate_for(epoch) * epoch.hours
        )
        self.epochs[index] = epoch
        return self.objective()

    def schedule(self) -> MissionSchedule:
        return MissionSchedule(tuple(self.epochs))


class AdversarySearch:
    """Hunts wear-maximizing schedules over a fixed mission shape.

    Args:
        simulator: provides the rate table (physics is shared with the
            defence — the adversary attacks the same model the
            controller defends).
        apps: applications the adversary may schedule.
        frequencies: requested frequencies it may pick (typically the
            DVS grid; the controller is free to override downward).
        n_epochs: mission length in epochs.
        epoch_hours: hours per epoch.
        seed: root of the whole search; same seed, same attack.
        objective: ``"total"`` or ``"peak"`` (see :data:`OBJECTIVES`).
    """

    def __init__(
        self,
        simulator: LifetimeSimulator,
        *,
        apps: Sequence[str],
        frequencies: Sequence[float],
        n_epochs: int,
        epoch_hours: float,
        seed: int = 0,
        objective: str = "total",
    ) -> None:
        if objective not in OBJECTIVES:
            raise LifetimeError(
                f"objective must be one of {OBJECTIVES}, got {objective!r}"
            )
        if not apps or not frequencies:
            raise LifetimeError("need at least one app and one frequency")
        if n_epochs <= 0 or epoch_hours <= 0.0:
            raise LifetimeError("need positive n_epochs and epoch_hours")
        self.simulator = simulator
        self.apps = tuple(str(a) for a in apps)
        self.frequencies = tuple(float(f) for f in frequencies)
        self.n_epochs = n_epochs
        self.epoch_hours = epoch_hours
        self.seed = seed
        self.objective = objective
        self.evaluations = 0

    # ---- physics lookups ----------------------------------------------

    def _rate_for(self, epoch: MissionEpoch) -> np.ndarray:
        return self.simulator.rate_table.rates_for(
            epoch.app, self.simulator.base_config, epoch.frequency_hz
        )

    def prewarm(self) -> None:
        """Evaluate every (app, frequency) cell once up front, so the
        search loop is pure numpy arithmetic."""
        for app in self.apps:
            for freq in self.frequencies:
                self._rate_for(MissionEpoch(app, freq, self.epoch_hours))

    def _score(self, schedule: MissionSchedule) -> float:
        self.evaluations += 1
        state = self.simulator.open_loop(schedule)
        return state.peak if self.objective == "peak" else state.total

    # ---- the search ----------------------------------------------------

    def search(
        self,
        *,
        n_random: int = 12,
        greedy_passes: int = 1,
        anneal_steps: int = 200,
        temperature: float = 0.05,
    ) -> AdversaryResult:
        """Run random → greedy → annealed search and return the best.

        Args:
            n_random: population size for the baseline phase.
            greedy_passes: full coordinate-ascent sweeps over the epochs.
            anneal_steps: Metropolis mutation steps.
            temperature: initial acceptance temperature, as a fraction
                of the incumbent objective (decays geometrically to 1 %
                of its starting value by the final step).

        Raises:
            LifetimeError: on non-positive search budgets.
        """
        if n_random <= 0:
            raise LifetimeError("need a positive random population")
        if greedy_passes < 0 or anneal_steps < 0:
            raise LifetimeError("search budgets must be non-negative")
        self.prewarm()
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 0xADE2]))
        history: list[tuple[str, float]] = []

        # Phase 1: seeded random population; its mean is the baseline.
        population = [
            random_mission(
                apps=self.apps,
                frequencies=self.frequencies,
                n_epochs=self.n_epochs,
                epoch_hours=self.epoch_hours,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            for _ in range(n_random)
        ]
        scores = [self._score(schedule) for schedule in population]
        baseline = float(np.mean(scores))
        best_index = int(np.argmax(scores))
        incumbent = _IncrementalEval(self, list(population[best_index].epochs))
        best = float(scores[best_index])
        history.append(("random", best))

        # Phase 2: greedy coordinate ascent — exhaustive single-epoch
        # swaps, epoch by epoch, keeping any strict improvement.
        choices = [
            MissionEpoch(app, freq, self.epoch_hours)
            for app in self.apps
            for freq in self.frequencies
        ]
        for _ in range(greedy_passes):
            for index in range(self.n_epochs):
                original = incumbent.epochs[index]
                chosen = original
                for candidate in choices:
                    self.evaluations += 1
                    score = incumbent.replace(index, candidate)
                    if score > best:
                        best = score
                        chosen = candidate
                incumbent.replace(index, chosen)
        history.append(("greedy", best))

        # Phase 3: simulated annealing from the greedy incumbent.  The
        # walker may go downhill; ``best``/``best_epochs`` track the
        # high-water mark separately.
        best_epochs = list(incumbent.epochs)
        current = incumbent.objective()
        t0 = max(temperature * max(current, 1e-300), 1e-300)
        decay = 0.01 ** (1.0 / max(anneal_steps, 1))
        t = t0
        for _ in range(anneal_steps):
            index = int(rng.integers(0, self.n_epochs))
            mutant = choices[int(rng.integers(0, len(choices)))]
            previous = incumbent.epochs[index]
            self.evaluations += 1
            score = incumbent.replace(index, mutant)
            delta = score - current
            if delta >= 0.0 or rng.random() < math.exp(delta / t):
                current = score
                if score > best:
                    best = score
                    best_epochs = list(incumbent.epochs)
            else:
                incumbent.replace(index, previous)
            t *= decay
        history.append(("anneal", best))

        return AdversaryResult(
            baseline_wear=baseline,
            best_wear=best,
            best_schedule=MissionSchedule(tuple(best_epochs)),
            evaluations=self.evaluations,
            history=tuple(history),
        )
