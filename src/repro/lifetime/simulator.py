"""The cumulative-damage lifetime simulator.

Integrates a :class:`~repro.workloads.generator.MissionSchedule` — a
phased workload history spanning months to decades — into a
:class:`~repro.lifetime.damage.WearState`, one epoch at a time:

- **vectorized physics, scalar fold**: every distinct (application,
  microarch config) pair is evaluated *once* over the whole DVS grid via
  :meth:`Platform.evaluate_batch`, yielding a cached table of
  per-(mechanism, structure) damage rates (:class:`RateTable`); each
  epoch then costs one elementwise multiply-add, so decade-long horizons
  run in milliseconds;
- **closed loop**: with a :class:`~repro.core.controllers.WearAwareController`
  attached, each epoch walks the degradation ladder — derate frequency,
  swap a cold spare, shed half a structure, or declare end-of-life
  cleanly — against *sensor* readings that a fault plan may drift
  (``lifetime.wear_sensor_drift``); the true trajectory never touches a
  drifted reading, so faults degrade decisions, not physics;
- **crash safety**: wear state is checkpointed into the telemetry
  stream (``lifetime.checkpoint`` records under a schedule-stable run
  id), floats round-tripping bitwise through JSON ``repr``; a SIGKILLed
  simulation resumes from the newest intact checkpoint and re-integrates
  to a **bit-identical** final state.  The ``lifetime.checkpoint_torn``
  fault site writes a checkpoint torn mid-frame; resume falls back to
  the previous good one (degrade, never corrupt).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.config.dvs import DEFAULT_VF_CURVE, OperatingPoint, VoltageFrequencyCurve
from repro.config.microarch import BASE_MICROARCH, MicroarchConfig, shed_structure
from repro.config.technology import STRUCTURE_NAMES
from repro.core.controllers import WearAwareController
from repro.core.ramp import RampModel
from repro.errors import LifetimeError
from repro.harness.platform import Platform
from repro.harness.sweep import SimulationCache
from repro.kernels.wear import wear_rate_fields
from repro.lifetime.damage import DamageModel, WearState
from repro.resilience import active_injector
from repro.telemetry import TelemetryRecord, TelemetryWriter, encode_frame, read_stream
from repro.workloads.generator import MissionSchedule
from repro.workloads.suite import workload_by_name

#: Maximum ladder rungs per epoch.  Spares and sheds are both finite
#: (≤ one spare per structure, ≤ 3 shed levels each for 3 structures),
#: so a correct ladder settles well within this bound; exceeding it
#: means the controller is cycling and is reported as an error.
MAX_LADDER_RUNGS = 16


class RateTable:
    """Lazily cached per-(app, config) wear-rate grids.

    One :meth:`Platform.evaluate_batch` call per distinct (application,
    microarch config) covers the whole DVS grid; epochs then look up
    their ``(n_mechanisms, n_structures)`` rate matrix by snapping the
    requested frequency to the nearest grid point.  Laziness matters for
    resume: a run restored at epoch *k* only evaluates the (app, config)
    pairs its remaining epochs actually touch.
    """

    def __init__(
        self,
        *,
        platform: Platform,
        cache: SimulationCache,
        ramp: RampModel,
        damage_model: DamageModel,
        vf_curve: VoltageFrequencyCurve = DEFAULT_VF_CURVE,
        dvs_steps: int = 11,
    ) -> None:
        self.platform = platform
        self.cache = cache
        self.ramp = ramp
        self.damage_model = damage_model
        self.vf_curve = vf_curve
        self.dvs_steps = dvs_steps
        self._entries: dict[tuple[str, str], dict[str, Any]] = {}

    def _entry(self, app: str, config: MicroarchConfig) -> dict[str, Any]:
        key = (app, config.describe())
        entry = self._entries.get(key)
        if entry is None:
            profile = workload_by_name(app)
            run = self.cache.run(profile, config=config)
            ops = self.vf_curve.grid(self.dvs_steps)
            batch = self.platform.evaluate_batch(run, ops)
            rates = wear_rate_fields(
                self.ramp,
                batch,
                asymmetry_coefficient=self.damage_model.asymmetry_coefficient,
            )
            entry = {"ops": ops, "rates": rates, "ips": batch.ips}
            self._entries[key] = entry
        return entry

    def _index(self, entry: dict[str, Any], frequency_hz: float) -> int:
        ops: tuple[OperatingPoint, ...] = entry["ops"]
        gaps = [abs(op.frequency_hz - frequency_hz) for op in ops]
        return gaps.index(min(gaps))

    def rates_for(
        self, app: str, config: MicroarchConfig, frequency_hz: float
    ) -> np.ndarray:
        """The ``(M, S)`` damage/hour matrix at the nearest grid point."""
        entry = self._entry(app, config)
        return entry["rates"][self._index(entry, frequency_hz)]

    def operating_point(
        self, app: str, config: MicroarchConfig, frequency_hz: float
    ) -> OperatingPoint:
        """The grid operating point an epoch frequency snaps to."""
        entry = self._entry(app, config)
        return entry["ops"][self._index(entry, frequency_hz)]

    def candidates(
        self, app: str, config: MicroarchConfig
    ) -> tuple[tuple[OperatingPoint, float], ...]:
        """Every grid point with its predicted total damage rate."""
        entry = self._entry(app, config)
        rates = entry["rates"]
        return tuple(
            (op, float(rates[i].sum())) for i, op in enumerate(entry["ops"])
        )


@dataclass
class LifetimeResult:
    """Outcome of one lifetime simulation.

    Attributes:
        state: final accrued wear.
        run_id: the telemetry stream identity (schedule-stable).
        epochs_run: epochs integrated *in this invocation*.
        end_of_life: the controller declared end-of-life.
        eol_epoch: epoch index at which end-of-life was declared.
        resumed_from: checkpoint epoch restored from, or ``None``.
        sheds: structures shed, in ladder order.
        swaps: structures whose cold spare was consumed, in order.
        config: the (possibly degraded) final microarch configuration.
        trace: per-epoch ``(epoch, frequency_hz, total_damage)`` rows
            when tracing was requested.
    """

    state: WearState
    run_id: str
    epochs_run: int = 0
    end_of_life: bool = False
    eol_epoch: int | None = None
    resumed_from: int | None = None
    sheds: tuple[str, ...] = ()
    swaps: tuple[str, ...] = ()
    config: MicroarchConfig = BASE_MICROARCH
    trace: tuple[tuple[int, float, float], ...] = field(default_factory=tuple)

    @property
    def within_target(self) -> bool:
        """Placeholder flag recomputed by callers that know the target."""
        return not self.end_of_life


class LifetimeSimulator:
    """Integrates mission schedules into cumulative wear trajectories.

    Args:
        platform: the power/thermal platform.
        cache: memoized workload simulations (one per (app, config)).
        ramp: a qualified RAMP model (fixes T_qual and the FIT target).
        damage_model: accrual parameters (thresholds, asymmetric aging).
        vf_curve: DVS law; its grid is the controller's candidate set.
        base_config: the healthy microarch configuration.
        telemetry_root: stream root for ``lifetime.*`` records; ``None``
            disables checkpointing (pure in-memory simulation).
        checkpoint_every: epochs between wear checkpoints.
        dvs_steps: DVS grid resolution for the rate table.
    """

    def __init__(
        self,
        *,
        platform: Platform,
        cache: SimulationCache,
        ramp: RampModel,
        damage_model: DamageModel | None = None,
        vf_curve: VoltageFrequencyCurve = DEFAULT_VF_CURVE,
        base_config: MicroarchConfig = BASE_MICROARCH,
        telemetry_root: str | os.PathLike | None = None,
        checkpoint_every: int = 32,
        dvs_steps: int = 11,
    ) -> None:
        if checkpoint_every <= 0:
            raise LifetimeError("checkpoint_every must be positive")
        self.platform = platform
        self.cache = cache
        self.ramp = ramp
        self.damage_model = damage_model or DamageModel()
        self.vf_curve = vf_curve
        self.base_config = base_config
        self.telemetry_root = Path(telemetry_root) if telemetry_root else None
        self.checkpoint_every = checkpoint_every
        self.rate_table = RateTable(
            platform=platform,
            cache=cache,
            ramp=ramp,
            damage_model=self.damage_model,
            vf_curve=vf_curve,
            dvs_steps=dvs_steps,
        )

    # ---- identities ----------------------------------------------------

    def run_id_for(self, schedule: MissionSchedule) -> str:
        """Schedule-stable stream identity: a killed and restarted
        process lands in the *same* run directory and can resume it."""
        return f"lifetime-{schedule.digest()[:12]}"

    # ---- open-loop fold ------------------------------------------------

    def open_loop(
        self, schedule: MissionSchedule, state: WearState | None = None
    ) -> WearState:
        """Fold a schedule at its requested frequencies — no controller,
        no telemetry, no faults.  This is the fast path the adversary
        evaluates thousands of schedules through, and the reference the
        split-additivity property is asserted against (folding ``A + B``
        equals folding ``A`` then ``B``, bitwise)."""
        state = state if state is not None else WearState.fresh()
        for epoch in schedule.epochs:
            rates = self.rate_table.rates_for(
                epoch.app, self.base_config, epoch.frequency_hz
            )
            state.accrue(rates, epoch.hours)
        return state

    # ---- checkpoint plumbing -------------------------------------------

    def _writer(self, run_id: str) -> TelemetryWriter | None:
        if self.telemetry_root is None:
            return None
        return TelemetryWriter(self.telemetry_root, run_id=run_id)

    def _checkpoint_payload(
        self,
        schedule: MissionSchedule,
        epoch: int,
        state: WearState,
        sheds: list[str],
        swaps: list[str],
        sensors: dict[str, float],
    ) -> dict[str, Any]:
        return {
            "epoch": epoch,
            "digest": schedule.digest(),
            "wear": state.as_payload(),
            "sheds": list(sheds),
            "swaps": list(swaps),
            "sensors": dict(sensors),
        }

    def _write_checkpoint(
        self, writer: TelemetryWriter | None, payload: dict[str, Any]
    ) -> None:
        if writer is None:
            return
        injector = active_injector()
        if injector is not None and injector.checkpoint_torn(
            f"{writer.run_id}:{payload['epoch']}"
        ):
            # Simulated kill -9 mid-checkpoint: append a frame cut in
            # half (newline-terminated so damage cannot cascade past its
            # own line) without consuming a sequence number.  Readers
            # count it as torn; resume falls back to the previous good
            # checkpoint.
            record = TelemetryRecord(
                kind="lifetime.checkpoint",
                run_id=writer.run_id,
                seq=0,
                ts=0.0,
                payload=payload,
            )
            frame = encode_frame(record)
            cut = max(1, len(frame) // 2)
            path = writer.active_segment
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, frame[:cut] + b"\n")
            finally:
                os.close(fd)
            return
        writer.append("lifetime.checkpoint", payload)

    def _latest_checkpoint(
        self, schedule: MissionSchedule, run_id: str
    ) -> dict[str, Any] | None:
        if self.telemetry_root is None:
            return None
        digest = schedule.digest()
        best: dict[str, Any] | None = None
        for record in read_stream(
            self.telemetry_root, run_id=run_id, kinds=("lifetime.checkpoint",)
        ):
            payload = record.payload
            if payload.get("digest") != digest:
                continue
            if best is None or payload.get("epoch", -1) > best.get("epoch", -1):
                best = payload
        return best

    # ---- the main loop -------------------------------------------------

    def simulate(
        self,
        schedule: MissionSchedule,
        *,
        controller: WearAwareController | None = None,
        resume: bool = False,
        stop_after_epochs: int | None = None,
        collect_trace: bool = False,
    ) -> LifetimeResult:
        """Integrate a schedule, optionally closed-loop and resumable.

        Args:
            schedule: the mission to integrate.
            controller: walk the degradation ladder each epoch; ``None``
                integrates open-loop (at the requested frequencies) but
                still checkpoints.
            resume: restore the newest intact checkpoint for this
                schedule from the telemetry stream and continue from it.
            stop_after_epochs: pause cleanly once this many epochs of
                the *schedule* are integrated (a final checkpoint is
                written, so a later ``resume=True`` call continues
                bit-identically) — the graceful analogue of the CI
                job's SIGKILL.
            collect_trace: record ``(epoch, frequency_hz, total)`` rows.

        Raises:
            LifetimeError: on a cycling ladder or malformed checkpoint.
        """
        run_id = self.run_id_for(schedule)
        state = WearState.fresh()
        config = self.base_config
        sheds: list[str] = []
        swaps: list[str] = []
        sensors: dict[str, float] = {name: 0.0 for name in STRUCTURE_NAMES}
        start_epoch = 0
        resumed_from: int | None = None

        if resume:
            checkpoint = self._latest_checkpoint(schedule, run_id)
            if checkpoint is not None:
                try:
                    state = WearState.from_payload(checkpoint["wear"])
                    sheds = [str(s) for s in checkpoint.get("sheds", [])]
                    swaps = [str(s) for s in checkpoint.get("swaps", [])]
                    sensors.update(
                        {
                            str(k): float(v)
                            for k, v in checkpoint.get("sensors", {}).items()
                        }
                    )
                    start_epoch = int(checkpoint["epoch"])
                except (KeyError, TypeError, ValueError) as exc:
                    raise LifetimeError(
                        f"malformed lifetime checkpoint: {exc}", run_id=run_id
                    ) from exc
                for structure in sheds:
                    shrunk = shed_structure(config, structure)
                    if shrunk is None:
                        raise LifetimeError(
                            "checkpoint shed history does not replay",
                            structure=structure,
                            run_id=run_id,
                        )
                    config = shrunk
                resumed_from = start_epoch

        writer = self._writer(run_id)
        if writer is not None:
            writer.append(
                "lifetime.spec",
                {
                    "digest": schedule.digest(),
                    "n_epochs": schedule.n_epochs,
                    "total_hours": schedule.total_hours,
                    "controller": controller is not None,
                    "checkpoint_every": self.checkpoint_every,
                    "resumed_from": resumed_from,
                },
            )

        end_epoch = schedule.n_epochs
        if stop_after_epochs is not None:
            end_epoch = min(end_epoch, max(stop_after_epochs, start_epoch))

        result = LifetimeResult(state=state, run_id=run_id, resumed_from=resumed_from)
        trace: list[tuple[int, float, float]] = []
        injector = active_injector()
        end_of_life = False
        eol_epoch: int | None = None
        epochs_run = 0
        epoch_index = start_epoch

        while epoch_index < end_epoch and not end_of_life:
            epoch = schedule.epochs[epoch_index]
            if controller is None:
                rates = self.rate_table.rates_for(
                    epoch.app, config, epoch.frequency_hz
                )
                chosen_hz = self.rate_table.operating_point(
                    epoch.app, config, epoch.frequency_hz
                ).frequency_hz
                state.accrue(rates, epoch.hours)
            else:
                # Sensor pass: the controller sees per-structure peak-cell
                # wear through (possibly drifting) sensors; readings are
                # sanitised with a monotone clamp, and the *true* state
                # below never uses them.
                true_peaks = state.damage.max(axis=0)
                readings: dict[str, float] = {}
                for s_index, structure in enumerate(STRUCTURE_NAMES):
                    exact = float(true_peaks[s_index])
                    reading = exact
                    if injector is not None:
                        factor = injector.wear_sensor_drift(
                            f"{run_id}:{epoch_index}:{structure}"
                        )
                        if factor is not None:
                            reading = exact * factor
                    reading = max(reading, sensors[structure])
                    sensors[structure] = reading
                    readings[structure] = reading

                chosen: OperatingPoint | None = None
                for _rung in range(MAX_LADDER_RUNGS):
                    sheddable = frozenset(
                        s
                        for s in ("window", "ialu", "fpu")
                        if shed_structure(config, s) is not None
                    )
                    decision = controller.decide(
                        elapsed_hours=state.hours,
                        epoch_hours=epoch.hours,
                        wear_total=state.total,
                        wear_by_structure=readings,
                        candidates=self.rate_table.candidates(epoch.app, config),
                        spares_used=frozenset(swaps),
                        sheddable=sheddable,
                    )
                    if decision.action == "run":
                        assert decision.op is not None
                        chosen = decision.op
                        break
                    if writer is not None:
                        writer.append(
                            "lifetime.controller",
                            {
                                "epoch": epoch_index,
                                "action": decision.action,
                                "structure": decision.structure,
                                "reason": decision.reason,
                            },
                        )
                    if decision.action == "spare":
                        assert decision.structure is not None
                        swaps.append(decision.structure)
                        state.reset_structure(decision.structure)
                        sensors[decision.structure] = 0.0
                        readings[decision.structure] = 0.0
                        continue
                    if decision.action == "shed":
                        assert decision.structure is not None
                        shrunk = shed_structure(config, decision.structure)
                        if shrunk is None:
                            raise LifetimeError(
                                "controller shed an unsheddable structure",
                                structure=decision.structure,
                            )
                        config = shrunk
                        sheds.append(decision.structure)
                        continue
                    if decision.action == "end_of_life":
                        end_of_life = True
                        eol_epoch = epoch_index
                        break
                    raise LifetimeError(
                        f"unknown controller action {decision.action!r}"
                    )
                else:
                    raise LifetimeError(
                        "degradation ladder did not settle "
                        f"within {MAX_LADDER_RUNGS} rungs",
                        epoch=epoch_index,
                    )
                if end_of_life:
                    break
                assert chosen is not None
                rates = self.rate_table.rates_for(
                    epoch.app, config, chosen.frequency_hz
                )
                chosen_hz = chosen.frequency_hz
                state.accrue(rates, epoch.hours)

            epochs_run += 1
            epoch_index += 1
            if collect_trace:
                trace.append((epoch_index - 1, chosen_hz, state.total))
            if epoch_index % self.checkpoint_every == 0 or epoch_index == end_epoch:
                self._write_checkpoint(
                    writer,
                    self._checkpoint_payload(
                        schedule, epoch_index, state, sheds, swaps, sensors
                    ),
                )

        if end_of_life and writer is not None:
            # End-of-life stops mid-stride: persist the terminal state.
            self._write_checkpoint(
                writer,
                self._checkpoint_payload(
                    schedule, epoch_index, state, sheds, swaps, sensors
                ),
            )
        if writer is not None:
            writer.append(
                "lifetime.done",
                {
                    "digest": schedule.digest(),
                    "epochs": epoch_index,
                    "end_of_life": end_of_life,
                    "total_damage": state.total,
                    "peak_damage": state.peak,
                    "hours": state.hours,
                },
            )

        result.state = state
        result.epochs_run = epochs_run
        result.end_of_life = end_of_life
        result.eol_epoch = eol_epoch
        result.sheds = tuple(sheds)
        result.swaps = tuple(swaps)
        result.config = config
        result.trace = tuple(trace)
        return result
