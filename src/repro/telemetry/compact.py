"""Background-safe compaction of a run's telemetry segments.

A long run (or a resumed one) leaves a trail of small segments, some
with torn tails from crashes and forced rotations.  Compaction folds a
run's **sealed** segments into one clean segment holding exactly the
complete records, in order — dropping the damaged frames for good and
reclaiming their space — while leaving the **active** (last) segment
alone so a live writer is never raced.

The merge is crash-safe by the same discipline as the result store:
the merged segment is written to a temporary file in the run directory
and ``os.replace``d into a name that sorts *before* every sealed
segment it replaces, and only then are the sealed originals unlinked.
A crash between those two steps leaves duplicate records on disk;
readers de-duplicate on (run_id, seq), so even that window is safe.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
from pathlib import Path

from repro.telemetry.stream import (
    SEGMENT_SUFFIX,
    encode_frame,
    run_segments,
    scan_segment,
)


@dataclasses.dataclass(frozen=True)
class CompactionResult:
    """What one :func:`compact_run` call did."""

    run_id: str
    segments_merged: int
    records_kept: int
    frames_dropped: int
    compacted_path: Path | None


def compact_run(
    root: str | os.PathLike,
    run_id: str,
    *,
    include_active: bool = False,
) -> CompactionResult:
    """Merge ``run_id``'s sealed segments into one clean segment.

    Args:
        root: the stream root directory.
        run_id: which run to compact.
        include_active: also fold the newest segment in.  Only safe when
            the producing run has finished (the default leaves it alone
            so compaction can run behind a live writer).

    Returns:
        A :class:`CompactionResult`; ``compacted_path`` is ``None`` when
        there was nothing to merge (fewer than two eligible segments and
        no damage to scrub).
    """
    segments = run_segments(root, run_id)
    eligible = segments if include_active else segments[:-1]
    if not eligible:
        return CompactionResult(run_id, 0, 0, 0, None)
    scans = [scan_segment(path) for path in eligible]
    dropped = sum(scan.torn + scan.invalid for scan in scans)
    if len(eligible) < 2 and dropped == 0:
        return CompactionResult(run_id, 0, 0, 0, None)
    seen: set[int] = set()
    records = []
    for scan in scans:
        for record in scan.records:
            if record.seq in seen:
                continue
            seen.add(record.seq)
            records.append(record)
    run_dir = Path(root) / run_id
    target = run_dir / f"{eligible[0].stem}-compact{SEGMENT_SUFFIX}"
    fd, tmp_name = tempfile.mkstemp(
        prefix=".compact-", suffix=".tmp", dir=run_dir
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            for record in records:
                handle.write(encode_frame(record))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    for path in eligible:
        if path == target:
            continue
        try:
            os.unlink(path)
        except OSError:
            pass
    return CompactionResult(
        run_id=run_id,
        segments_merged=len(eligible),
        records_kept=len(records),
        frames_dropped=dropped,
        compacted_path=target,
    )
