"""Segmented, CRC-framed, append-only telemetry segments.

One **frame** is one line::

    TREC1 <body-bytes> <crc32-hex8> <body>\\n

where ``body`` is the JSON-encoded record envelope (single line — JSON
string escapes keep embedded newlines out of the raw bytes), the length
is over the body's UTF-8 bytes, and the CRC32 is over the same bytes.
A frame is written with **one** ``write()`` call on an ``O_APPEND``
descriptor, so concurrent writers (pool workers appending fired-fault
records to a shared log) interleave at frame granularity, never inside
a frame.

A **segment** is a file of frames.  A writer appends to one active
segment and rotates to a fresh one at :data:`SEGMENT_MAX_BYTES`; a run's
stream is the ordered concatenation of its segments under
``<root>/<run_id>/``.

Torn-tail recovery: a process killed mid-``write`` leaves at most one
damaged frame. :func:`scan_segment` decodes every frame that passes the
length + CRC checks and counts (rather than raises on) the ones that do
not, so a reader always recovers every complete record.  The
``telemetry.torn_append`` fault site exercises exactly this: it
truncates one frame mid-write and forces a rotation, simulating a
``kill -9`` during an append followed by a restart.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
import zlib
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.telemetry.records import TelemetryRecord, validate_record

#: Frame marker; bump with the frame layout, not the record schema.
FRAME_MAGIC = "TREC1"

#: Rotation threshold for the active segment.
SEGMENT_MAX_BYTES = 1 << 20

#: Segment file suffix.
SEGMENT_SUFFIX = ".seg"

#: Conventional stream-root directory name inside a result store — the
#: engine, the sweep harness, and the decision service all write their
#: runs under ``<store-root>/telemetry/``.
STORE_DIRNAME = "telemetry"


def _injector():
    """The armed fault injector, if any (lazy import, cycle-free)."""
    from repro.resilience import active_injector

    return active_injector()


def encode_frame(record: TelemetryRecord) -> bytes:
    """The on-disk bytes of one record."""
    body = json.dumps(record.as_dict(), separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    head = f"{FRAME_MAGIC} {len(body)} {crc:08x} ".encode("ascii")
    return head + body + b"\n"


def decode_frame(line: bytes) -> dict | None:
    """The record envelope in one frame line, or ``None`` when damaged.

    Damage means: missing magic, malformed header, body length mismatch
    (a torn write), CRC mismatch (bit rot / an interleaved write), or a
    body that is not a JSON object.
    """
    parts = line.rstrip(b"\n").split(b" ", 3)
    if len(parts) != 4 or parts[0] != FRAME_MAGIC.encode("ascii"):
        return None
    try:
        length = int(parts[1])
        crc = int(parts[2], 16)
    except ValueError:
        return None
    body = parts[3]
    if len(body) != length or (zlib.crc32(body) & 0xFFFFFFFF) != crc:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def new_run_id(prefix: str) -> str:
    """A filesystem-safe, collision-resistant run identity."""
    # repro: ignore[RPR002] run identity, never part of a result
    stamp = time.time_ns()
    pid = os.getpid()  # repro: ignore[RPR002] run identity, not a result
    return f"{prefix}-{stamp:x}-{pid:x}"


class TelemetryWriter:
    """Appends records for one run to its segmented stream.

    Args:
        root: stream root directory (each run gets a subdirectory).
        run_id: the stream identity to write under; pass a stable id
            (e.g. a sweep's spec hash) to let a later process resume the
            same stream, or omit for a fresh :func:`new_run_id`.
        prefix: run-id prefix when ``run_id`` is omitted.
        segment_max_bytes: rotation threshold for the active segment.
        segment_path: write every frame to exactly this file instead of
            a per-run directory (single-segment mode — used for the
            shared fault log, where multiple processes append to one
            well-known path).  Rotation and the torn-append fault site
            are disabled in this mode.

    Thread-safe; one writer may be shared by every thread of a process.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        run_id: str | None = None,
        *,
        prefix: str = "run",
        segment_max_bytes: int = SEGMENT_MAX_BYTES,
        segment_path: str | os.PathLike | None = None,
    ) -> None:
        if (root is None) == (segment_path is None):
            raise ValueError(
                "pass exactly one of root= (segmented mode) or "
                "segment_path= (single-segment mode)"
            )
        self.run_id = run_id if run_id is not None else new_run_id(prefix)
        self.segment_max_bytes = segment_max_bytes
        self._segment_path = (
            Path(segment_path) if segment_path is not None else None
        )
        self._root = Path(root) if root is not None else None
        self._lock = threading.Lock()
        self._seq = 0
        self._segment_index = 0
        self._written_bytes = 0
        if self._root is not None:
            run_dir = self.run_dir
            run_dir.mkdir(parents=True, exist_ok=True)
            existing = sorted(run_dir.glob(f"*{SEGMENT_SUFFIX}"))
            if existing:
                # Resume the same stream identity: keep seq monotonic
                # past everything already recorded and never append to a
                # possibly-torn old tail — start a fresh segment.
                scans = [scan_segment(path) for path in existing]
                seqs = [
                    r.seq for scan in scans for r in scan.records
                ]
                self._seq = (max(seqs) + 1) if seqs else 0
                self._segment_index = (
                    _segment_index_after(existing[-1].name) + 1
                )

    # ---- paths ---------------------------------------------------------

    @property
    def run_dir(self) -> Path:
        assert self._root is not None
        return self._root / self.run_id

    @property
    def active_segment(self) -> Path:
        if self._segment_path is not None:
            return self._segment_path
        return self.run_dir / f"{self._segment_index:06d}{SEGMENT_SUFFIX}"

    # ---- writing -------------------------------------------------------

    def append(self, kind: str, payload: dict[str, Any]) -> TelemetryRecord:
        """Durably append one record; returns the record written.

        Append failures (unwritable directory, full disk) are swallowed:
        telemetry is an account of the run, and the run must never fail
        because its account could not be written.
        """
        with self._lock:
            record = TelemetryRecord(
                kind=kind,
                run_id=self.run_id,
                seq=self._seq,
                # repro: ignore[RPR002] log metadata, never in results
                ts=round(time.time(), 3),
                payload=payload,
            )
            self._seq += 1
            frame = encode_frame(record)
            torn_at = self._maybe_torn(record, frame)
            try:
                self._write_frame(frame if torn_at is None else frame[:torn_at])
            except OSError:
                return record
            if torn_at is not None:
                # A torn append is a simulated kill -9: seal the damaged
                # segment and continue in a fresh one, exactly like the
                # restarted process a real crash would hand over to.
                self._rotate()
            elif (
                self._segment_path is None
                and self._written_bytes >= self.segment_max_bytes
            ):
                self._rotate()
            return record

    def _maybe_torn(self, record: TelemetryRecord, frame: bytes) -> int | None:
        if self._segment_path is not None:
            return None
        injector = _injector()
        if injector is None:
            return None
        return injector.torn_append(
            f"{self.run_id}:{record.seq}", len(frame)
        )

    def _write_frame(self, data: bytes) -> None:
        path = self.active_segment
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        self._written_bytes += len(data)

    def _rotate(self) -> None:
        self._segment_index += 1
        self._written_bytes = 0


def _segment_index_after(name: str) -> int:
    """The numeric index a segment file name sorts as (0 on oddballs)."""
    stem = name[: -len(SEGMENT_SUFFIX)] if name.endswith(SEGMENT_SUFFIX) else name
    digits = stem.split("-", 1)[0]
    try:
        return int(digits)
    except ValueError:
        return 0


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class SegmentScan:
    """Everything one segment file yielded.

    Attributes:
        path: the segment scanned.
        records: every complete, schema-valid record, in file order.
        frames: total frame lines seen.
        torn: lines that failed the frame checks (length/CRC/magic) —
            torn appends, interleaved writes, bit rot.
        invalid: frames that decoded but failed envelope validation.
    """

    path: Path
    records: list[TelemetryRecord] = dataclasses.field(default_factory=list)
    frames: int = 0
    torn: int = 0
    invalid: int = 0
    problems: list[str] = dataclasses.field(default_factory=list)


def scan_segment(path: str | os.PathLike) -> SegmentScan:
    """Decode one segment, recovering every complete record.

    Never raises on damage: torn or corrupt frames are counted and
    skipped (a frame after a torn one is still recovered — frames are
    line-delimited, so damage cannot cascade past its own line).
    """
    scan = SegmentScan(path=Path(path))
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return scan
    for line in raw.split(b"\n"):
        if not line:
            continue
        scan.frames += 1
        envelope = decode_frame(line)
        if envelope is None:
            scan.torn += 1
            continue
        problems = validate_record(envelope)
        if problems:
            scan.invalid += 1
            scan.problems.extend(
                f"{Path(path).name}: {p}" for p in problems
            )
            continue
        scan.records.append(TelemetryRecord.from_dict(envelope))
    return scan


def run_segments(root: str | os.PathLike, run_id: str) -> list[Path]:
    """A run's segment files, in stream order."""
    run_dir = Path(root) / run_id
    return sorted(run_dir.glob(f"*{SEGMENT_SUFFIX}"))


def list_runs(root: str | os.PathLike) -> list[str]:
    """Every run id with at least one segment under ``root``."""
    base = Path(root)
    if not base.is_dir():
        return []
    return sorted(
        entry.name
        for entry in base.iterdir()
        if entry.is_dir() and any(entry.glob(f"*{SEGMENT_SUFFIX}"))
    )


def read_stream(
    source: str | os.PathLike,
    *,
    run_id: str | None = None,
    kinds: Sequence[str] | None = None,
) -> Iterator[TelemetryRecord]:
    """Stream records from a telemetry root (or one segment file).

    Args:
        source: a stream root directory, a single run directory, or a
            single segment file.
        run_id: restrict to one run (roots only).
        kinds: restrict to these kinds, or to a dotted prefix when an
            entry ends with ``"."`` (``("sweep.",)`` matches every sweep
            record).

    Records arrive in (run, segment, frame) order — within a run that is
    append order; damaged frames are silently skipped (use
    :func:`scan_stream` to audit them), and duplicate (run_id, seq)
    pairs — possible only in the crash window between a compaction's
    merge and its cleanup — yield their first occurrence once.
    """
    seen: dict[str, set[int]] = {}
    for scan in _scans(source, run_id=run_id):
        for record in scan.records:
            marks = seen.setdefault(record.run_id, set())
            if record.seq in marks:
                continue
            marks.add(record.seq)
            if kinds is not None and not _kind_match(record.kind, kinds):
                continue
            yield record


def scan_stream(
    source: str | os.PathLike, *, run_id: str | None = None
) -> list[SegmentScan]:
    """Per-segment audit of a stream (for ``repro report --check``)."""
    return list(_scans(source, run_id=run_id))


def _scans(
    source: str | os.PathLike, *, run_id: str | None
) -> Iterator[SegmentScan]:
    base = Path(source)
    if base.is_file():
        yield scan_segment(base)
        return
    if not base.is_dir():
        return
    direct = sorted(base.glob(f"*{SEGMENT_SUFFIX}"))
    if direct and run_id is None:
        # A single run directory.
        for path in direct:
            yield scan_segment(path)
        return
    for run in list_runs(base):
        if run_id is not None and run != run_id:
            continue
        for path in run_segments(base, run):
            yield scan_segment(path)


def _kind_match(kind: str, kinds: Sequence[str]) -> bool:
    for want in kinds:
        if want.endswith("."):
            if kind.startswith(want):
                return True
        elif kind == want:
            return True
    return False
