"""``repro report``: render one run's history from the telemetry stream.

The report is a pure fold over the stream — no producer keeps its own
summary file any more.  Each standard kind family contributes one
section:

- **engine**  — ``engine.*`` records: job counters and per-stage totals
  (the EventLog's accounting invariant, recomputed from durable data);
- **sweep**   — ``sweep.*`` records: per-sweep cell progress, the exact
  records ``--resume`` replays;
- **chaos**   — ``fault.fired`` records: injected faults by site;
- **fleet**   — ``serve.statz`` records: the decision service's last
  counters snapshot per run;
- **bench**   — ``bench.result`` records: benchmark names, headline
  metrics, and floors;
- **lifetime** — ``lifetime.*`` records: per-run wear-simulation
  progress (checkpoints, controller interventions, final damage).

``repro report --check`` additionally audits every segment: torn
frames, schema-invalid envelopes, and unknown kinds are listed, and the
check fails (exit 1) on any schema-invalid record.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any

from repro.telemetry.records import TelemetryRecord, is_known_kind
from repro.telemetry.stream import read_stream, scan_stream


@dataclasses.dataclass
class StreamReport:
    """The aggregated view ``repro report`` renders."""

    source: str
    records: int = 0
    runs: dict[str, int] = dataclasses.field(default_factory=dict)
    engine: dict[str, Any] = dataclasses.field(default_factory=dict)
    sweeps: dict[str, Any] = dataclasses.field(default_factory=dict)
    chaos: dict[str, Any] = dataclasses.field(default_factory=dict)
    fleet: dict[str, Any] = dataclasses.field(default_factory=dict)
    bench: dict[str, Any] = dataclasses.field(default_factory=dict)
    lifetime: dict[str, Any] = dataclasses.field(default_factory=dict)
    unknown_kinds: dict[str, int] = dataclasses.field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


def build_report(
    source: str | os.PathLike, *, run_id: str | None = None
) -> StreamReport:
    """Fold a telemetry stream into a :class:`StreamReport`."""
    report = StreamReport(source=str(source))
    for record in read_stream(source, run_id=run_id):
        report.records += 1
        report.runs[record.run_id] = report.runs.get(record.run_id, 0) + 1
        if record.kind.startswith("engine."):
            _fold_engine(report.engine, record)
        elif record.kind.startswith("sweep."):
            _fold_sweep(report.sweeps, record)
        elif record.kind == "fault.fired":
            _fold_chaos(report.chaos, record)
        elif record.kind == "serve.statz":
            _fold_fleet(report.fleet, record)
        elif record.kind == "bench.result":
            _fold_bench(report.bench, record)
        elif record.kind.startswith("lifetime."):
            _fold_lifetime(report.lifetime, record)
        elif not is_known_kind(record.kind):
            report.unknown_kinds[record.kind] = (
                report.unknown_kinds.get(record.kind, 0) + 1
            )
    return report


def _fold_engine(section: dict[str, Any], record: TelemetryRecord) -> None:
    counters = section.setdefault("counters", {})
    event_kind = record.kind.removeprefix("engine.")
    counters[event_kind] = counters.get(event_kind, 0) + 1
    if event_kind == "run_finished":
        stage = record.payload.get("stage", "")
        if stage:
            stages = section.setdefault("stages", {})
            entry = stages.setdefault(stage, {"jobs": 0, "wall_s": 0.0})
            entry["jobs"] += 1
            data = record.payload.get("data", {})
            if isinstance(data, dict):
                entry["wall_s"] = round(
                    entry["wall_s"] + float(data.get("duration_s", 0.0) or 0.0),
                    6,
                )


def _fold_sweep(section: dict[str, Any], record: TelemetryRecord) -> None:
    sweep = section.setdefault(
        record.run_id, {"cells_done": 0, "resets": 0, "spec": None}
    )
    if record.kind == "sweep.spec":
        sweep["spec"] = record.payload
    elif record.kind == "sweep.reset":
        sweep["resets"] += 1
        sweep["cells_done"] = 0
        sweep["cells"] = {}
    elif record.kind == "sweep.cell_done":
        cells = sweep.setdefault("cells", {})
        cell = str(record.payload.get("cell"))
        if cell not in cells:
            sweep["cells_done"] += 1
        cells[cell] = record.payload.get("decision_key")


def _fold_chaos(section: dict[str, Any], record: TelemetryRecord) -> None:
    by_site = section.setdefault("by_site", {})
    site = str(record.payload.get("site"))
    by_site[site] = by_site.get(site, 0) + 1
    section["fired"] = section.get("fired", 0) + 1
    plan = record.payload.get("plan")
    if plan:
        plans = section.setdefault("plans", {})
        plans[str(plan)] = plans.get(str(plan), 0) + 1


def _fold_fleet(section: dict[str, Any], record: TelemetryRecord) -> None:
    # Snapshots are cumulative; the latest one per run wins.
    snapshots = section.setdefault("latest", {})
    snapshots[record.run_id] = {
        "seq": record.seq,
        "uptime_s": record.payload.get("uptime_s"),
        "requests": record.payload.get("requests"),
    }
    section["snapshots"] = section.get("snapshots", 0) + 1


def _fold_bench(section: dict[str, Any], record: TelemetryRecord) -> None:
    results = section.setdefault("results", {})
    name = str(record.payload.get("name"))
    results[name] = {
        "mode": record.payload.get("mode"),
        "floor": record.payload.get("floor"),
        "headline": record.payload.get("headline"),
        "machine": record.payload.get("machine", {}).get("platform"),
    }


def _fold_lifetime(section: dict[str, Any], record: TelemetryRecord) -> None:
    run = section.setdefault(
        record.run_id,
        {
            "checkpoints": 0,
            "last_epoch": 0,
            "interventions": {},
            "done": None,
        },
    )
    if record.kind == "lifetime.spec":
        run["spec"] = {
            "n_epochs": record.payload.get("n_epochs"),
            "total_hours": record.payload.get("total_hours"),
            "controller": record.payload.get("controller"),
            "resumed_from": record.payload.get("resumed_from"),
        }
    elif record.kind == "lifetime.checkpoint":
        run["checkpoints"] += 1
        epoch = int(record.payload.get("epoch", 0) or 0)
        run["last_epoch"] = max(run["last_epoch"], epoch)
    elif record.kind == "lifetime.controller":
        action = str(record.payload.get("action"))
        run["interventions"][action] = run["interventions"].get(action, 0) + 1
    elif record.kind == "lifetime.done":
        run["done"] = {
            "epochs": record.payload.get("epochs"),
            "end_of_life": record.payload.get("end_of_life"),
            "total_damage": record.payload.get("total_damage"),
            "peak_damage": record.payload.get("peak_damage"),
            "hours": record.payload.get("hours"),
        }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_report(report: StreamReport) -> str:
    """Human-readable multi-section summary."""
    lines = [
        f"telemetry report for {report.source}",
        f"  {report.records} records across {len(report.runs)} run(s)",
    ]
    if report.engine:
        counters = report.engine.get("counters", {})
        shown = ", ".join(
            f"{k} {v}" for k, v in sorted(counters.items())
        )
        lines.append(f"engine: {shown or 'no events'}")
        for stage, entry in sorted(report.engine.get("stages", {}).items()):
            lines.append(
                f"  {stage:13s} {entry['jobs']:4d} jobs  "
                f"{entry['wall_s']:8.2f} s"
            )
    if report.sweeps:
        lines.append("sweeps:")
        for run, sweep in sorted(report.sweeps.items()):
            spec = sweep.get("spec") or {}
            shape = ""
            if spec:
                shape = (
                    f" ({len(spec.get('apps', []))} apps x "
                    f"{len(spec.get('tquals', []))} T_qual, "
                    f"mode {spec.get('mode')})"
                )
            lines.append(
                f"  {run}: {sweep['cells_done']} cell(s) done"
                f"{shape}"
                + (f", {sweep['resets']} reset(s)" if sweep["resets"] else "")
            )
    if report.chaos:
        lines.append(f"chaos: {report.chaos.get('fired', 0)} fault(s) fired")
        for site, n in sorted(report.chaos.get("by_site", {}).items()):
            lines.append(f"  {site:26s} {n:5d}")
    if report.fleet:
        lines.append("fleet:")
        for run, snap in sorted(report.fleet.get("latest", {}).items()):
            requests = snap.get("requests") or {}
            lines.append(
                f"  {run}: submitted {requests.get('submitted', 0)}, "
                f"computed {requests.get('computed', 0)}, "
                f"cache hits {requests.get('cache_hits', 0)}, "
                f"failed {requests.get('failed', 0)}"
            )
    if report.bench:
        lines.append("bench:")
        for name, entry in sorted(report.bench.get("results", {}).items()):
            headline = entry.get("headline") or {}
            shown = ", ".join(
                f"{k}={v}" for k, v in sorted(headline.items())
            )
            floor = entry.get("floor")
            lines.append(
                f"  {name} [{entry.get('mode')}]: {shown or 'no headline'}"
                + (f" (floor {floor})" if floor is not None else "")
            )
    if report.lifetime:
        lines.append("lifetime:")
        for run, entry in sorted(report.lifetime.items()):
            done = entry.get("done")
            if done:
                status = (
                    f"done at epoch {done.get('epochs')}, "
                    f"total damage {done.get('total_damage'):.4g}"
                    + (" (end of life)" if done.get("end_of_life") else "")
                )
            else:
                status = f"in flight, last checkpoint epoch {entry['last_epoch']}"
            interventions = entry.get("interventions", {})
            shown = ", ".join(
                f"{k} x{v}" for k, v in sorted(interventions.items())
            )
            lines.append(
                f"  {run}: {entry['checkpoints']} checkpoint(s), {status}"
                + (f"; interventions: {shown}" if shown else "")
            )
    if report.unknown_kinds:
        shown = ", ".join(
            f"{k} x{v}" for k, v in sorted(report.unknown_kinds.items())
        )
        lines.append(f"unknown kinds: {shown}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Checking
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class StreamCheck:
    """The audit ``repro report --check`` performs."""

    source: str
    segments: int = 0
    frames: int = 0
    records: int = 0
    torn: int = 0
    invalid: int = 0
    problems: list[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Torn tails are expected crash damage; schema-invalid records
        are producer bugs and fail the check."""
        return self.invalid == 0

    def render(self) -> str:
        lines = [
            f"telemetry check for {self.source}: "
            f"{self.records} valid record(s) in {self.segments} segment(s)",
            f"  frames {self.frames} | torn {self.torn} "
            f"| schema-invalid {self.invalid}",
        ]
        lines.extend(f"  problem: {p}" for p in self.problems[:20])
        if len(self.problems) > 20:
            lines.append(f"  ... and {len(self.problems) - 20} more")
        lines.append("check: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def check_stream(
    source: str | os.PathLike, *, run_id: str | None = None
) -> StreamCheck:
    """Audit every segment of a stream against the record schema."""
    check = StreamCheck(source=str(source))
    for scan in scan_stream(source, run_id=run_id):
        check.segments += 1
        check.frames += scan.frames
        check.records += len(scan.records)
        check.torn += scan.torn
        check.invalid += scan.invalid
        check.problems.extend(scan.problems)
    return check
