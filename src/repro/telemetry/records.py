"""The telemetry record envelope: one schema for every durable event.

Every run, sweep cell, injected fault, serve snapshot, and bench result
in this repository lands in the same envelope::

    {
      "schema_version": 1,          # bump when the envelope changes
      "kind":  "sweep.cell_done",   # dotted producer.event name
      "ts":    1754650000.123,      # wall-clock seconds (diagnostics only)
      "run_id": "sweep-ab12cd34",   # the producing run / writer identity
      "seq":   17,                  # monotonic within (run_id, process)
      "payload": {...}              # kind-specific JSON object
    }

``run_id`` + ``seq`` give every record a stable identity inside its
stream; ``ts`` is never used for ordering or results (readers order by
segment position and ``seq``), it exists so humans can line telemetry up
with external logs.

The envelope is deliberately *open* on ``kind``: producers register
nothing.  :data:`KNOWN_KINDS` names the kinds the standard producers
emit so ``repro report`` can label anything else as foreign without
rejecting it.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field
from typing import Any, Mapping

#: Version of the telemetry record envelope.  Bump when the meaning or
#: shape of the envelope itself changes; payload evolution is handled by
#: the individual kinds.
TELEMETRY_SCHEMA_VERSION = 1

#: Kinds the in-repo producers emit (prefix -> producer):
#:
#: - ``engine.*``   — one record per :class:`repro.engine.events.Event`
#: - ``sweep.*``    — checkpointed sweep lifecycle (spec / reset /
#:   cell_done), the records ``--resume`` replays
#: - ``fault.fired``— one record per injected fault
#: - ``serve.statz``— a decision-service counters snapshot
#: - ``bench.result``— one benchmark result (uniform keys)
#: - ``lifetime.*`` — cumulative-damage simulation lifecycle (spec /
#:   checkpoint / controller / done), the records ``--resume`` restores
#:   wear state from
KNOWN_KIND_PREFIXES = ("engine.", "sweep.", "fault.", "serve.", "bench.", "lifetime.")


@dataclass(frozen=True)
class TelemetryRecord:
    """One decoded stream record (see module docstring for the schema)."""

    kind: str
    run_id: str
    seq: int
    ts: float
    payload: dict = field(default_factory=dict)
    schema_version: int = TELEMETRY_SCHEMA_VERSION

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "ts": self.ts,
            "run_id": self.run_id,
            "seq": self.seq,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TelemetryRecord":
        """Decode one envelope; raises ``ValueError`` when malformed."""
        problems = validate_record(payload)
        if problems:
            raise ValueError(
                "malformed telemetry record: " + "; ".join(problems)
            )
        return cls(
            kind=payload["kind"],
            run_id=payload["run_id"],
            seq=int(payload["seq"]),
            ts=float(payload["ts"]),
            payload=dict(payload["payload"]),
            schema_version=int(payload["schema_version"]),
        )


def validate_record(payload: object) -> list[str]:
    """Schema problems with one decoded envelope ([] = valid).

    Used both by :meth:`TelemetryRecord.from_dict` and by
    ``repro report --check``, which validates every record a run emitted.
    """
    if not isinstance(payload, Mapping):
        return ["record is not a JSON object"]
    problems: list[str] = []
    version = payload.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        problems.append("schema_version must be an integer")
    elif version != TELEMETRY_SCHEMA_VERSION:
        problems.append(
            f"schema_version {version} is not the supported "
            f"{TELEMETRY_SCHEMA_VERSION}"
        )
    kind = payload.get("kind")
    if not isinstance(kind, str) or not kind:
        problems.append("kind must be a non-empty string")
    run_id = payload.get("run_id")
    if not isinstance(run_id, str) or not run_id:
        problems.append("run_id must be a non-empty string")
    seq = payload.get("seq")
    if (
        not isinstance(seq, numbers.Integral)
        or isinstance(seq, bool)
        or int(seq) < 0
    ):
        problems.append("seq must be a non-negative integer")
    ts = payload.get("ts")
    if isinstance(ts, bool) or not isinstance(ts, numbers.Real):
        problems.append("ts must be a number")
    body = payload.get("payload")
    if not isinstance(body, Mapping):
        problems.append("payload must be a JSON object")
    unknown = set(payload) - {
        "schema_version", "kind", "ts", "run_id", "seq", "payload"
    }
    if unknown:
        problems.append(
            "unknown envelope field(s): " + ", ".join(sorted(unknown))
        )
    return problems


def is_known_kind(kind: str) -> bool:
    """Whether a kind belongs to one of the standard in-repo producers."""
    return kind.startswith(KNOWN_KIND_PREFIXES)
