"""repro.telemetry — the unified, durable event plane.

One schema-versioned, append-only stream replaces the four ad-hoc
formats that grew up around the engine (in-memory EventLog dumps), the
resilience layer (fault JSONL), the sweep harness (per-spec journal
files), and the benchmarks (hand-rolled ``BENCH_*.json`` shapes):

- :mod:`repro.telemetry.records` — the typed record envelope
  (``schema_version`` / ``kind`` / ``ts`` / ``run_id`` / ``seq`` /
  ``payload``) and its validator;
- :mod:`repro.telemetry.stream` — CRC-framed, segmented append-only
  files with truncated-tail recovery, plus streaming readers with
  kind / run filters;
- :mod:`repro.telemetry.compact` — background-safe compaction of a
  run's sealed segments;
- :mod:`repro.telemetry.report` — the ``repro report`` aggregation:
  fleet / sweep / chaos / bench summaries and the ``--check`` audit.

Quickstart::

    from repro.telemetry import TelemetryWriter, read_stream

    writer = TelemetryWriter(".telemetry", prefix="demo")
    writer.append("demo.started", {"answer": 42})
    for record in read_stream(".telemetry", kinds=("demo.",)):
        print(record.kind, record.payload)

Durability model: every frame is one ``O_APPEND`` write, a killed
process damages at most the final frame of one segment, and readers
recover every complete record (the ``telemetry.torn_append`` fault site
proves this under the ``ci-default`` chaos plan).
"""

from __future__ import annotations

from repro.telemetry.compact import CompactionResult, compact_run
from repro.telemetry.records import (
    KNOWN_KIND_PREFIXES,
    TELEMETRY_SCHEMA_VERSION,
    TelemetryRecord,
    is_known_kind,
    validate_record,
)
from repro.telemetry.report import (
    StreamCheck,
    StreamReport,
    build_report,
    check_stream,
    render_report,
)
from repro.telemetry.stream import (
    FRAME_MAGIC,
    SEGMENT_MAX_BYTES,
    SEGMENT_SUFFIX,
    STORE_DIRNAME,
    SegmentScan,
    TelemetryWriter,
    decode_frame,
    encode_frame,
    list_runs,
    new_run_id,
    read_stream,
    run_segments,
    scan_segment,
    scan_stream,
)

__all__ = [
    "FRAME_MAGIC",
    "KNOWN_KIND_PREFIXES",
    "SEGMENT_MAX_BYTES",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryRecord",
    "TelemetryWriter",
    "SegmentScan",
    "SEGMENT_SUFFIX",
    "STORE_DIRNAME",
    "CompactionResult",
    "StreamCheck",
    "StreamReport",
    "build_report",
    "check_stream",
    "compact_run",
    "decode_frame",
    "encode_frame",
    "is_known_kind",
    "list_runs",
    "new_run_id",
    "read_stream",
    "render_report",
    "run_segments",
    "scan_segment",
    "scan_stream",
    "validate_record",
]
