"""The unified management-decision API shared by every oracle.

All of the repo's management policies (DRM, DTM, intra-application DRM,
the joint reliability+thermal oracle) answer the same question — "which
candidate should this application run at, and did it satisfy the policy's
constraint?" — so they share one frozen, keyword-only base record:

- ``profile_name`` — the application the decision is for;
- ``performance`` — speedup vs the base non-adaptive processor;
- ``fit`` — the application FIT at the choice (``nan`` for policies that
  do not track wear-out, e.g. DTM);
- ``meets_target`` — whether the policy's constraint was satisfiable.

Subclasses add the policy-specific fields (chosen operating point,
qualification temperature, adaptation mode, ...).  Every oracle's
``best`` entry point is keyword-only with consistent parameter names
(``t_qual_k``, ``t_limit_k``, ``mode``); the deprecated positional call
forms (and the ``meets_limit`` alias) were removed after one release of
``DeprecationWarning``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, kw_only=True)
class Decision:
    """What an oracle chose for one application, policy-agnostically.

    Attributes:
        profile_name: the application the decision applies to.
        performance: speedup vs the base non-adaptive processor at
            nominal V/f (1.0 = parity).
        fit: the application FIT at the choice; ``nan`` when the policy
            does not evaluate wear-out (DTM).
        meets_target: whether the policy's constraint is satisfied
            (False only when even the most conservative candidate
            violates it and the oracle fell back).
    """

    profile_name: str
    performance: float
    fit: float = math.nan
    meets_target: bool
