"""The unified management-decision API shared by every oracle.

All of the repo's management policies (DRM, DTM, intra-application DRM,
the joint reliability+thermal oracle) answer the same question — "which
candidate should this application run at, and did it satisfy the policy's
constraint?" — so they share one frozen, keyword-only base record:

- ``profile_name`` — the application the decision is for;
- ``performance`` — speedup vs the base non-adaptive processor;
- ``fit`` — the application FIT at the choice (``nan`` for policies that
  do not track wear-out, e.g. DTM);
- ``meets_target`` — whether the policy's constraint was satisfiable.

Subclasses add the policy-specific fields (chosen operating point,
qualification temperature, adaptation mode, ...).  Every oracle's
``best`` entry point is keyword-only with consistent parameter names
(``t_qual_k``, ``t_limit_k``, ``mode``); the old positional call forms
still work through :func:`resolve_deprecated_positional`, which emits a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass


@dataclass(frozen=True, kw_only=True)
class Decision:
    """What an oracle chose for one application, policy-agnostically.

    Attributes:
        profile_name: the application the decision applies to.
        performance: speedup vs the base non-adaptive processor at
            nominal V/f (1.0 = parity).
        fit: the application FIT at the choice; ``nan`` when the policy
            does not evaluate wear-out (DTM).
        meets_target: whether the policy's constraint is satisfied
            (False only when even the most conservative candidate
            violates it and the oracle fell back).
    """

    profile_name: str
    performance: float
    fit: float = math.nan
    meets_target: bool


def resolve_deprecated_positional(
    owner: str,
    positional: tuple,
    names: tuple[str, ...],
    keyword: dict,
) -> dict:
    """Fold legacy positional arguments into the keyword-only API.

    The oracles' ``best`` methods used to take their knobs positionally
    (``best(profile, 370.0, mode)``); the unified API is keyword-only.
    This shim maps any positional leftovers onto ``names`` in order,
    warns once per call site, and rejects ambiguous mixes.

    Args:
        owner: dotted method name for messages (``"DRMOracle.best"``).
        positional: the ``*args`` the caller supplied.
        names: the keyword parameters the positionals map to, in the
            legacy order.
        keyword: explicitly passed keyword values (omissions absent,
            not ``None``).

    Returns:
        The merged keyword mapping.

    Raises:
        TypeError: on too many positional arguments or a parameter
            given both ways.
    """
    merged = dict(keyword)
    if not positional:
        return merged
    if len(positional) > len(names):
        raise TypeError(
            f"{owner}() takes at most {len(names)} arguments after the "
            f"profile, got {len(positional)}"
        )
    shown = ", ".join(names[: len(positional)])
    warnings.warn(
        f"passing {shown} to {owner}() positionally is deprecated; "
        "use keyword arguments",
        DeprecationWarning,
        stacklevel=3,
    )
    for name, value in zip(names, positional):
        if name in merged:
            raise TypeError(f"{owner}() got multiple values for {name!r}")
        merged[name] = value
    return merged


def require_keyword(owner: str, **values):
    """Unpack required keyword parameters, raising ``TypeError`` on
    omissions (mirroring Python's own missing-argument errors)."""
    missing = [name for name, value in values.items() if value is None]
    if missing:
        shown = ", ".join(repr(m) for m in missing)
        raise TypeError(
            f"{owner}() missing required keyword argument(s): {shown}"
        )
    out = tuple(values.values())
    return out[0] if len(out) == 1 else out
