"""The designer's cost-performance menu (paper Section 7.1).

Two tools the paper's discussion implies but does not code up:

- **qualification frontier** — mean suite performance as a function of
  the qualification temperature, the "wide spectrum of T_qual values ...
  available to designers, for a reasonable performance tradeoff";
- **domain-oriented qualification** — the minimum T_qual at which every
  application *in a market segment* keeps a required fraction of base
  performance: "a processor designed for SPEC applications could be
  designed to a lower T_qual than a processor intended for multimedia
  applications", with DRM guarding the off-segment cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.drm import AdaptationMode, DRMOracle
from repro.errors import AdaptationError
from repro.workloads.characteristics import WorkloadProfile
from repro.workloads.suite import WORKLOAD_SUITE


@dataclass(frozen=True)
class FrontierPoint:
    """One point of the qualification cost-performance frontier.

    Attributes:
        t_qual_k: the qualification temperature (cost proxy).
        mean_performance: suite-average DRM performance.
        min_performance: the worst-off application's performance.
        all_feasible: whether every application could meet the target.
    """

    t_qual_k: float
    mean_performance: float
    min_performance: float
    all_feasible: bool


def qualification_frontier(
    oracle: DRMOracle,
    t_quals: tuple[float, ...],
    profiles: tuple[WorkloadProfile, ...] = WORKLOAD_SUITE,
    mode: AdaptationMode = AdaptationMode.DVS,
) -> list[FrontierPoint]:
    """Sweep T_qual and collect the suite-level performance statistics.

    Raises:
        AdaptationError: on an empty temperature grid or profile set.
    """
    if not t_quals or not profiles:
        raise AdaptationError("frontier needs temperatures and profiles")
    points = []
    for t in sorted(t_quals):
        perfs = []
        feasible = True
        for profile in profiles:
            decision = oracle.best(profile, t_qual_k=t, mode=mode)
            perfs.append(decision.performance)
            feasible = feasible and decision.meets_target
        points.append(
            FrontierPoint(
                t_qual_k=t,
                mean_performance=sum(perfs) / len(perfs),
                min_performance=min(perfs),
                all_feasible=feasible,
            )
        )
    return points


def cheapest_qualification(
    oracle: DRMOracle,
    profiles: tuple[WorkloadProfile, ...],
    t_quals: tuple[float, ...],
    min_performance: float = 0.95,
    mode: AdaptationMode = AdaptationMode.DVS,
) -> float:
    """Lowest T_qual at which every given profile keeps
    ``min_performance`` of base performance *and* meets the FIT target.

    This is the "application-oriented reliability qualification" design
    rule: qualify for the workloads the product will actually run.

    Raises:
        AdaptationError: if no temperature on the grid satisfies the
            segment (the grid's ceiling is too low or the bar too high).
    """
    if not profiles:
        raise AdaptationError("segment is empty")
    for t in sorted(t_quals):
        ok = True
        for profile in profiles:
            decision = oracle.best(profile, t_qual_k=t, mode=mode)
            if not decision.meets_target or decision.performance < min_performance:
                ok = False
                break
        if ok:
            return t
    raise AdaptationError(
        f"no T_qual on the grid keeps the segment at {min_performance:.0%} "
        "performance"
    )


def segment(profiles: tuple[WorkloadProfile, ...], category: str) -> tuple[WorkloadProfile, ...]:
    """The profiles of one market segment (``media``/``specint``/``specfp``).

    Raises:
        AdaptationError: for an unknown or empty segment.
    """
    chosen = tuple(p for p in profiles if p.category == category)
    if not chosen:
        raise AdaptationError(f"no profiles in segment {category!r}")
    return chosen
