"""Dynamic Thermal Management comparator (Section 7.3).

DTM picks the highest-performance DVS operating point that keeps the
hottest on-chip structure at or below the thermal design point T_limit.
Unlike DRM's T_qual, T_limit is a hard instantaneous cap: DRM is allowed
to exceed its temperature as long as the *time-averaged* FIT stays within
target, while DTM ignores voltage/utilisation effects on wear-out.

The paper's Figure 4 shows that the two policies choose different
frequencies — the DTM frequency/temperature curve is steeper, the curves
cross at an application-dependent point, and each policy violates the
other's constraint on one side of the crossover.  The bench for Figure 4
uses this class side by side with the DRM oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dvs import OperatingPoint, VoltageFrequencyCurve, DEFAULT_VF_CURVE
from repro.config.microarch import BASE_MICROARCH
from repro.constants import validate_temperature
from repro.errors import AdaptationError
from repro.harness.platform import Platform, PlatformEvaluation
from repro.harness.sweep import SimulationCache
from repro.workloads.characteristics import WorkloadProfile


@dataclass(frozen=True)
class DTMDecision:
    """DTM's choice for one (application, T_limit).

    Attributes:
        profile_name: the application.
        t_limit_k: the thermal design point.
        op: the chosen operating point.
        performance: speedup vs the base processor at nominal V/f.
        peak_temperature_k: hottest structure temperature at the choice.
        meets_limit: False only when even the slowest DVS point overheats.
    """

    profile_name: str
    t_limit_k: float
    op: OperatingPoint
    performance: float
    peak_temperature_k: float
    meets_limit: bool


class DTMOracle:
    """Oracle DVS-based dynamic thermal management.

    Args:
        platform / cache / vf_curve / dvs_steps: as in the DRM oracle;
        sharing the same cache and platform keeps the comparison apples
        to apples.
    """

    def __init__(
        self,
        platform: Platform | None = None,
        cache: SimulationCache | None = None,
        vf_curve: VoltageFrequencyCurve = DEFAULT_VF_CURVE,
        dvs_steps: int = 26,
    ) -> None:
        self.platform = platform or Platform(vf_curve=vf_curve)
        self.cache = cache or SimulationCache()
        self.vf_curve = vf_curve
        self.dvs_steps = dvs_steps
        self._base_evals: dict[str, PlatformEvaluation] = {}

    def _base_evaluation(self, profile: WorkloadProfile) -> PlatformEvaluation:
        cached = self._base_evals.get(profile.name)
        if cached is None:
            run = self.cache.run(profile, BASE_MICROARCH)
            cached = self.platform.evaluate(run, self.vf_curve.nominal)
            self._base_evals[profile.name] = cached
        return cached

    def best(self, profile: WorkloadProfile, t_limit_k: float) -> DTMDecision:
        """Highest-performance DVS point with peak temperature ≤ T_limit.

        Falls back to the coolest candidate (``meets_limit=False``) when
        the limit is unattainable even at the DVS floor.
        """
        validate_temperature(t_limit_k, what="T_limit")
        run = self.cache.run(profile, BASE_MICROARCH)
        base = self._base_evaluation(profile)
        best_ok: DTMDecision | None = None
        coolest: DTMDecision | None = None
        for op in self.vf_curve.grid(self.dvs_steps):
            evaluation = self.platform.evaluate(run, op)
            decision = DTMDecision(
                profile_name=profile.name,
                t_limit_k=t_limit_k,
                op=op,
                performance=evaluation.ips / base.ips,
                peak_temperature_k=evaluation.peak_temperature_k,
                meets_limit=evaluation.peak_temperature_k <= t_limit_k + 1e-9,
            )
            if decision.meets_limit and (
                best_ok is None or decision.performance > best_ok.performance
            ):
                best_ok = decision
            if coolest is None or decision.peak_temperature_k < coolest.peak_temperature_k:
                coolest = decision
        if best_ok is not None:
            return best_ok
        if coolest is None:
            raise AdaptationError("DVS grid is empty")
        return coolest
