"""Dynamic Thermal Management comparator (Section 7.3).

DTM picks the highest-performance DVS operating point that keeps the
hottest on-chip structure at or below the thermal design point T_limit.
Unlike DRM's T_qual, T_limit is a hard instantaneous cap: DRM is allowed
to exceed its temperature as long as the *time-averaged* FIT stays within
target, while DTM ignores voltage/utilisation effects on wear-out.

The paper's Figure 4 shows that the two policies choose different
frequencies — the DTM frequency/temperature curve is steeper, the curves
cross at an application-dependent point, and each policy violates the
other's constraint on one side of the crossover.  The bench for Figure 4
uses this class side by side with the DRM oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.dvs import OperatingPoint, VoltageFrequencyCurve, DEFAULT_VF_CURVE
from repro.config.microarch import BASE_MICROARCH
from repro.constants import validate_temperature
from repro.core.decision import Decision
from repro.errors import AdaptationError
from repro.harness.platform import Platform, PlatformEvaluation
from repro.harness.sweep import SimulationCache
from repro.workloads.characteristics import WorkloadProfile


@dataclass(frozen=True, kw_only=True)
class DTMDecision(Decision):
    """DTM's choice for one (application, T_limit).

    Extends the shared :class:`~repro.core.decision.Decision` record;
    ``meets_target`` is the thermal verdict (False only when even the
    slowest DVS point overheats) and ``fit`` stays ``nan`` — DTM is
    deliberately blind to wear-out.

    Attributes:
        t_limit_k: the thermal design point.
        op: the chosen operating point.
        peak_temperature_k: hottest structure temperature at the choice.
    """

    t_limit_k: float
    op: OperatingPoint
    peak_temperature_k: float


class DTMOracle:
    """Oracle DVS-based dynamic thermal management.

    Args:
        platform / cache / vf_curve / dvs_steps: as in the DRM oracle;
        sharing the same cache and platform keeps the comparison apples
        to apples.
    """

    def __init__(
        self,
        platform: Platform | None = None,
        cache: SimulationCache | None = None,
        vf_curve: VoltageFrequencyCurve = DEFAULT_VF_CURVE,
        dvs_steps: int = 26,
    ) -> None:
        self.platform = platform or Platform(vf_curve=vf_curve)
        self.cache = cache or SimulationCache()
        self.vf_curve = vf_curve
        self.dvs_steps = dvs_steps
        self._base_evals: dict[str, PlatformEvaluation] = {}

    def _base_evaluation(self, profile: WorkloadProfile) -> PlatformEvaluation:
        cached = self._base_evals.get(profile.name)
        if cached is None:
            run = self.cache.run(profile, BASE_MICROARCH)
            cached = self.platform.evaluate(run, self.vf_curve.nominal)
            self._base_evals[profile.name] = cached
        return cached

    def best(
        self, profile: WorkloadProfile, *, t_limit_k: float
    ) -> DTMDecision:
        """Highest-performance DVS point with peak temperature ≤ T_limit.

        Keyword-only: ``best(profile, t_limit_k=355.0)``.  The whole DVS
        grid is evaluated in one
        :meth:`~repro.harness.platform.Platform.evaluate_batch` call.

        Falls back to the coolest candidate (``meets_target=False``) when
        the limit is unattainable even at the DVS floor.
        """
        validate_temperature(t_limit_k, what="T_limit")
        grid = self.vf_curve.grid(self.dvs_steps)
        if not grid:
            raise AdaptationError("DVS grid is empty")
        run = self.cache.run(profile, BASE_MICROARCH)
        base = self._base_evaluation(profile)
        batch = self.platform.evaluate_batch(run, grid)
        perf = batch.ips / base.ips
        peak = batch.peak_temperature_k
        meets = peak <= t_limit_k + 1e-9
        if np.any(meets):
            chosen = np.flatnonzero(meets)
            pick = int(chosen[np.argmax(perf[chosen])])
        else:
            pick = int(np.argmin(peak))
        return DTMDecision(
            profile_name=profile.name,
            t_limit_k=t_limit_k,
            op=grid[pick],
            performance=float(perf[pick]),
            peak_temperature_k=float(peak[pick]),
            meets_target=bool(meets[pick]),
        )
