"""Compatibility shim: the lifetime distributions moved to
:mod:`repro.lifetime.distributions` when the static models grew into the
cumulative-damage subsystem (:mod:`repro.lifetime`).  Import from there;
this module re-exports the original names for existing callers.
"""

from repro.lifetime.distributions import (
    ExponentialLifetime,
    LifetimeDistribution,
    LognormalLifetime,
    SeriesSystemResult,
    WeibullLifetime,
    component_mttfs_from_account,
    series_system_mttf,
    sofr_series_mttf,
)

__all__ = [
    "ExponentialLifetime",
    "LifetimeDistribution",
    "LognormalLifetime",
    "SeriesSystemResult",
    "WeibullLifetime",
    "component_mttfs_from_account",
    "series_system_mttf",
    "sofr_series_mttf",
]
