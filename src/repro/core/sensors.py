"""The hardware-implementation view of RAMP.

Section 3 notes that "in real hardware, RAMP would require sensors and
counters that provide information on processor operating conditions".
This module models that interface: quantized on-die temperature sensors,
saturating activity counters, and the voltage/frequency status register —
then recomputes FIT from the *quantized* readings.  The sensor-error
tests verify that realistic sensor resolution barely perturbs the FIT a
hardware RAMP would report, which is what makes a hardware DRM loop
viable.

Fault injection: when an armed :class:`~repro.resilience.FaultPlan`
enables the sensor sites, :meth:`SensorBank.sample` passes each exact
temperature through the injector first — a *stuck* sensor reports one
fixed value for the whole run, a *noisy* one adds deterministic Gaussian
noise — before the usual clamping and quantization.  The chaos tests use
this to measure how much sensor pathology the hardware-RAMP FIT loop
tolerates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.technology import STRUCTURE_NAMES
from repro.errors import ReliabilityError
from repro.harness.platform import Interval


@dataclass(frozen=True)
class SensorSpec:
    """Resolution and range of the on-die instrumentation.

    Attributes:
        temperature_resolution_k: quantization step of the thermal diodes
            (1 K is typical of on-die sensors).
        temperature_range_k: (min, max) reportable temperature; readings
            saturate at the ends.
        activity_counter_bits: width of the per-structure activity
            counters; activity is reported as counts out of an epoch.
        epoch_cycles: cycles per sampling epoch.
    """

    temperature_resolution_k: float = 1.0
    temperature_range_k: tuple[float, float] = (273.0, 423.0)
    activity_counter_bits: int = 22
    epoch_cycles: int = 1_000_000

    def __post_init__(self) -> None:
        if self.temperature_resolution_k <= 0.0:
            raise ReliabilityError("sensor resolution must be positive")
        lo, hi = self.temperature_range_k
        if lo >= hi:
            raise ReliabilityError("sensor range must be increasing")
        if self.activity_counter_bits <= 0 or self.epoch_cycles <= 0:
            raise ReliabilityError("counter geometry must be positive")

    @property
    def counter_max(self) -> int:
        return (1 << self.activity_counter_bits) - 1


@dataclass(frozen=True)
class SensorReadings:
    """One epoch of quantized hardware readings.

    Attributes:
        temperatures: per-structure quantized temperature (K).
        activity_counts: per-structure saturating event counts.
        voltage_mv: the VRM status register, in millivolts.
        frequency_khz: the PLL status register, in kilohertz.
        epoch_cycles: the epoch length the counts are relative to.
    """

    temperatures: dict[str, float]
    activity_counts: dict[str, int]
    voltage_mv: int
    frequency_khz: int
    epoch_cycles: int

    def activity_factors(self) -> dict[str, float]:
        """Reconstruct activity factors from the counters."""
        return {
            name: min(1.0, count / self.epoch_cycles)
            for name, count in self.activity_counts.items()
        }


class SensorBank:
    """Quantizes exact platform conditions into hardware readings.

    Args:
        spec: sensor/counter geometry.
    """

    def __init__(self, spec: SensorSpec | None = None) -> None:
        self.spec = spec or SensorSpec()

    def sample(self, interval: Interval) -> SensorReadings:
        """Produce the readings hardware would report for an interval.

        With an armed fault plan, each temperature is routed through the
        injector's sensor sites (stuck / noisy) before clamping and
        quantization — faulty readings still land inside the sensor's
        reportable range, exactly as broken hardware would behave.
        """
        from repro.resilience import active_injector

        injector = active_injector()
        spec = self.spec
        lo, hi = spec.temperature_range_k
        res = spec.temperature_resolution_k
        temps = {}
        counts = {}
        for name in STRUCTURE_NAMES:
            exact_t = interval.temperatures[name]
            if injector is not None:
                exact_t = injector.sensor_temperature(name, exact_t)
            clamped = min(hi, max(lo, exact_t))
            temps[name] = round(clamped / res) * res
            events = int(round(interval.activity[name] * spec.epoch_cycles))
            counts[name] = min(spec.counter_max, events)
        return SensorReadings(
            temperatures=temps,
            activity_counts=counts,
            voltage_mv=int(round(interval.op.voltage_v * 1000)),
            frequency_khz=int(round(interval.op.frequency_hz / 1000)),
            epoch_cycles=spec.epoch_cycles,
        )


def interval_from_readings(readings: SensorReadings, interval: Interval) -> Interval:
    """Rebuild an interval using only what the hardware sensors report.

    The weight, config, and power bookkeeping come from the original
    interval (hardware knows its own configuration); temperatures,
    activity, and the operating point are replaced by the quantized
    values — this is what a hardware RAMP computes FIT from.
    """
    from repro.config.dvs import OperatingPoint

    return Interval(
        weight=interval.weight,
        temperatures=dict(readings.temperatures),
        activity=readings.activity_factors(),
        power=interval.power,
        op=OperatingPoint(
            frequency_hz=readings.frequency_khz * 1000.0,
            voltage_v=readings.voltage_mv / 1000.0,
        ),
        config=interval.config,
    )
