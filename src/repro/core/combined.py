"""Joint reliability + thermal management (the paper's conclusion).

Section 7.3 ends: "neither technique subsumes the other and future
systems must provide mechanisms to support both together."  This module
is that mechanism: a joint oracle that picks the best-performing
operating point satisfying **both** the lifetime FIT target (DRM's
budgetable, time-averaged constraint) and the instantaneous thermal
design point (DTM's hard cap).

The joint feasible region is the intersection, so the joint choice never
out-clocks either single policy; the bench quantifies how much
performance honouring both constraints costs relative to each alone —
and verifies the joint choice violates neither.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.dvs import OperatingPoint, VoltageFrequencyCurve, DEFAULT_VF_CURVE
from repro.config.microarch import BASE_MICROARCH
from repro.constants import TARGET_FIT, validate_temperature
from repro.core.decision import Decision
from repro.core.ramp import RampModel
from repro.errors import AdaptationError
from repro.harness.platform import Platform, PlatformEvaluation
from repro.harness.sweep import SimulationCache
from repro.workloads.characteristics import WorkloadProfile


@dataclass(frozen=True, kw_only=True)
class JointDecision(Decision):
    """The joint policy's choice for one (application, T_qual, T_limit).

    Extends the shared :class:`~repro.core.decision.Decision` record;
    ``meets_target`` is the conjunction of the two per-constraint
    verdicts below.

    Attributes:
        t_qual_k: reliability qualification temperature.
        t_limit_k: thermal design point.
        op: chosen operating point.
        peak_temperature_k: hottest structure temperature at the choice.
        meets_fit / meets_thermal: per-constraint verdicts (both True
            unless no candidate satisfies the pair, in which case the
            least-violating candidate is returned).
    """

    t_qual_k: float
    t_limit_k: float
    op: OperatingPoint
    peak_temperature_k: float
    meets_fit: bool
    meets_thermal: bool

    @property
    def feasible(self) -> bool:
        """Legacy alias of :attr:`meets_target`."""
        return self.meets_target


class JointOracle:
    """Oracle DVS management under simultaneous FIT and thermal caps.

    Args:
        ramp_factory: T_qual -> qualified RAMP model (share
            ``DRMOracle.ramp_for``).
        platform / cache / vf_curve / fit_target / dvs_steps: as in the
            single-constraint oracles.
    """

    def __init__(
        self,
        ramp_factory,
        platform: Platform | None = None,
        cache: SimulationCache | None = None,
        vf_curve: VoltageFrequencyCurve = DEFAULT_VF_CURVE,
        fit_target: float = TARGET_FIT,
        dvs_steps: int = 26,
    ) -> None:
        self.ramp_factory = ramp_factory
        self.platform = platform or Platform(vf_curve=vf_curve)
        self.cache = cache or SimulationCache()
        self.vf_curve = vf_curve
        self.fit_target = fit_target
        self.dvs_steps = dvs_steps
        self._base_evals: dict[str, PlatformEvaluation] = {}

    def _base_evaluation(self, profile: WorkloadProfile) -> PlatformEvaluation:
        cached = self._base_evals.get(profile.name)
        if cached is None:
            run = self.cache.run(profile, BASE_MICROARCH)
            cached = self.platform.evaluate(run, self.vf_curve.nominal)
            self._base_evals[profile.name] = cached
        return cached

    def best(
        self,
        profile: WorkloadProfile,
        *,
        t_qual_k: float,
        t_limit_k: float,
    ) -> JointDecision:
        """Best DVS point within both constraints.

        Keyword-only: ``best(profile, t_qual_k=370.0, t_limit_k=355.0)``.
        The whole DVS grid goes through one
        :meth:`~repro.harness.platform.Platform.evaluate_batch` call plus
        one batched RAMP pass.

        When the intersection is empty, returns the candidate minimising
        the larger of its two normalised violations.
        """
        validate_temperature(t_limit_k, what="T_limit")
        ramp: RampModel = self.ramp_factory(t_qual_k)
        grid = self.vf_curve.grid(self.dvs_steps)
        if not grid:
            raise AdaptationError("DVS grid is empty")
        target_fit = self.fit_target
        if target_fit <= 0.0:
            raise AdaptationError("FIT target must be positive")
        run = self.cache.run(profile, BASE_MICROARCH)
        base = self._base_evaluation(profile)
        batch = self.platform.evaluate_batch(run, grid)
        perf = batch.ips / base.ips
        fit = ramp.application_fit_batch(batch)
        peak = batch.peak_temperature_k
        meets_fit = fit <= target_fit + 1e-9
        meets_thermal = peak <= t_limit_k + 1e-9
        feasible = meets_fit & meets_thermal
        if np.any(feasible):
            chosen = np.flatnonzero(feasible)
            pick = int(chosen[np.argmax(perf[chosen])])
        else:
            violation = np.maximum(
                np.maximum(
                    fit / target_fit - 1.0,
                    (peak - t_limit_k) / max(t_limit_k, 1.0),
                ),
                0.0,
            )
            pick = int(np.argmin(violation))
        return JointDecision(
            profile_name=profile.name,
            t_qual_k=t_qual_k,
            t_limit_k=t_limit_k,
            op=grid[pick],
            performance=float(perf[pick]),
            fit=float(fit[pick]),
            peak_temperature_k=float(peak[pick]),
            meets_fit=bool(meets_fit[pick]),
            meets_thermal=bool(meets_thermal[pick]),
            meets_target=bool(feasible[pick]),
        )
