"""Joint reliability + thermal management (the paper's conclusion).

Section 7.3 ends: "neither technique subsumes the other and future
systems must provide mechanisms to support both together."  This module
is that mechanism: a joint oracle that picks the best-performing
operating point satisfying **both** the lifetime FIT target (DRM's
budgetable, time-averaged constraint) and the instantaneous thermal
design point (DTM's hard cap).

The joint feasible region is the intersection, so the joint choice never
out-clocks either single policy; the bench quantifies how much
performance honouring both constraints costs relative to each alone —
and verifies the joint choice violates neither.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dvs import OperatingPoint, VoltageFrequencyCurve, DEFAULT_VF_CURVE
from repro.config.microarch import BASE_MICROARCH
from repro.constants import TARGET_FIT, validate_temperature
from repro.core.ramp import RampModel
from repro.errors import AdaptationError
from repro.harness.platform import Platform, PlatformEvaluation
from repro.harness.sweep import SimulationCache
from repro.workloads.characteristics import WorkloadProfile


@dataclass(frozen=True)
class JointDecision:
    """The joint policy's choice for one (application, T_qual, T_limit).

    Attributes:
        profile_name: the application.
        t_qual_k: reliability qualification temperature.
        t_limit_k: thermal design point.
        op: chosen operating point.
        performance: speedup vs the base processor at nominal V/f.
        fit: application FIT at the choice.
        peak_temperature_k: hottest structure temperature at the choice.
        meets_fit / meets_thermal: per-constraint verdicts (both True
            unless no candidate satisfies the pair, in which case the
            least-violating candidate is returned).
    """

    profile_name: str
    t_qual_k: float
    t_limit_k: float
    op: OperatingPoint
    performance: float
    fit: float
    peak_temperature_k: float
    meets_fit: bool
    meets_thermal: bool

    @property
    def feasible(self) -> bool:
        return self.meets_fit and self.meets_thermal


class JointOracle:
    """Oracle DVS management under simultaneous FIT and thermal caps.

    Args:
        ramp_factory: T_qual -> qualified RAMP model (share
            ``DRMOracle.ramp_for``).
        platform / cache / vf_curve / fit_target / dvs_steps: as in the
            single-constraint oracles.
    """

    def __init__(
        self,
        ramp_factory,
        platform: Platform | None = None,
        cache: SimulationCache | None = None,
        vf_curve: VoltageFrequencyCurve = DEFAULT_VF_CURVE,
        fit_target: float = TARGET_FIT,
        dvs_steps: int = 26,
    ) -> None:
        self.ramp_factory = ramp_factory
        self.platform = platform or Platform(vf_curve=vf_curve)
        self.cache = cache or SimulationCache()
        self.vf_curve = vf_curve
        self.fit_target = fit_target
        self.dvs_steps = dvs_steps
        self._base_evals: dict[str, PlatformEvaluation] = {}

    def _base_evaluation(self, profile: WorkloadProfile) -> PlatformEvaluation:
        cached = self._base_evals.get(profile.name)
        if cached is None:
            run = self.cache.run(profile, BASE_MICROARCH)
            cached = self.platform.evaluate(run, self.vf_curve.nominal)
            self._base_evals[profile.name] = cached
        return cached

    def best(
        self,
        profile: WorkloadProfile,
        t_qual_k: float,
        t_limit_k: float,
    ) -> JointDecision:
        """Best DVS point within both constraints.

        When the intersection is empty, returns the candidate minimising
        the larger of its two normalised violations.
        """
        validate_temperature(t_limit_k, what="T_limit")
        ramp: RampModel = self.ramp_factory(t_qual_k)
        run = self.cache.run(profile, BASE_MICROARCH)
        base = self._base_evaluation(profile)
        best_ok: JointDecision | None = None
        least_bad: tuple[float, JointDecision] | None = None
        for op in self.vf_curve.grid(self.dvs_steps):
            evaluation = self.platform.evaluate(run, op)
            fit = ramp.application_reliability(evaluation).total_fit
            peak = evaluation.peak_temperature_k
            decision = JointDecision(
                profile_name=profile.name,
                t_qual_k=t_qual_k,
                t_limit_k=t_limit_k,
                op=op,
                performance=evaluation.ips / base.ips,
                fit=fit,
                peak_temperature_k=peak,
                meets_fit=fit <= self.fit_target + 1e-9,
                meets_thermal=peak <= t_limit_k + 1e-9,
            )
            if decision.feasible and (
                best_ok is None or decision.performance > best_ok.performance
            ):
                best_ok = decision
            violation = max(
                fit / self.fit_target - 1.0,
                (peak - t_limit_k) / max(t_limit_k, 1.0),
                0.0,
            )
            if least_bad is None or violation < least_bad[0]:
                least_bad = (violation, decision)
        if best_ok is not None:
            return best_ok
        if least_bad is None:
            raise AdaptationError("DVS grid is empty")
        return least_bad[1]
