"""Technology-scaling reliability study (extension).

Section 1.2 of the paper names three scaling-driven reasons lifetime
reliability is deteriorating, the first being that "device
miniaturization due to scaling is increasing processor power densities
... raising processor temperature, which exponentially accelerates
wear-out failures" (quantified in the authors' companion DSN-2004 paper).

This module makes that claim executable on the reproduction's stack: it
re-evaluates a fixed workload on cores whose *dynamic power density* is
scaled around the calibrated 65 nm point — past nodes below 1.0, future
nodes above — while reliability remains qualified at the 65 nm worst
case.  The temperature model (including the leakage-temperature fixed
point, itself exponential) turns density into temperature, and RAMP turns
temperature into FIT; the study reports the resulting failure-rate
trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dvs import OperatingPoint
from repro.core.ramp import RampModel
from repro.cpu.simulator import WorkloadRun
from repro.errors import ReliabilityError
from repro.harness.platform import Platform


@dataclass(frozen=True)
class ScalingScenario:
    """One point on the scaling trajectory.

    Attributes:
        label: display name (e.g. a nominal process node).
        power_density_scale: dynamic power density relative to the
            calibrated 65 nm core (past nodes < 1, future nodes > 1).
        vdd_scale: supply voltage relative to the 65 nm 1.0 V (non-ideal
            voltage scaling: older nodes ran higher Vdd).
        frequency_scale: clock relative to the 65 nm 4.0 GHz.
    """

    label: str
    power_density_scale: float
    vdd_scale: float = 1.0
    frequency_scale: float = 1.0

    def __post_init__(self) -> None:
        if min(self.power_density_scale, self.vdd_scale, self.frequency_scale) <= 0.0:
            raise ReliabilityError("scaling factors must be positive")


#: A representative density trajectory: dynamic power density roughly
#: doubles every two nodes, the paper's stated Section 1.2 mechanism.
#: Vdd and frequency stay at the 65 nm nominal in the default trajectory:
#: RAMP's TDDB fit constants (and qualification) are per-node quantities,
#: so sweeping absolute voltage across nodes under fixed constants would
#: mix oxide regimes — the per-scenario ``vdd_scale``/``frequency_scale``
#: knobs remain available for single-node what-ifs.
DEFAULT_TRAJECTORY: tuple[ScalingScenario, ...] = (
    ScalingScenario("180nm-density", power_density_scale=0.45),
    ScalingScenario("130nm-density", power_density_scale=0.60),
    ScalingScenario("90nm-density", power_density_scale=0.78),
    ScalingScenario("65nm", power_density_scale=1.00),
    ScalingScenario("45nm-density", power_density_scale=1.30),
    ScalingScenario("32nm-density", power_density_scale=1.65),
)


@dataclass(frozen=True)
class ScalingResult:
    """Outcome of one scenario.

    Attributes:
        scenario: the evaluated point.
        fit: application FIT under the 65 nm-qualified RAMP model.
        peak_temperature_k: hottest structure temperature.
        avg_power_w: total core power.
    """

    scenario: ScalingScenario
    fit: float
    peak_temperature_k: float
    avg_power_w: float


class ScalingStudy:
    """Evaluates a workload run along a scaling trajectory.

    Args:
        ramp: RAMP model qualified at the (65 nm) reference worst case —
            held fixed so the FIT trajectory isolates the operating-point
            shift, exactly the "reliability is not keeping up" framing.
        base_platform: supplies the technology and thermal parameters the
            scaled platforms share.
    """

    def __init__(self, ramp: RampModel, base_platform: Platform | None = None) -> None:
        self.ramp = ramp
        self.base_platform = base_platform or Platform()

    def _platform_for(self, scenario: ScalingScenario) -> Platform:
        return Platform(
            technology=self.base_platform.technology,
            vf_curve=self.base_platform.vf_curve,
            power_scale=scenario.power_density_scale,
        )

    def _operating_point(self, scenario: ScalingScenario) -> OperatingPoint:
        tech = self.base_platform.technology
        return OperatingPoint(
            frequency_hz=tech.frequency_nominal_hz * scenario.frequency_scale,
            voltage_v=tech.vdd_nominal_v * scenario.vdd_scale,
        )

    def evaluate(self, run: WorkloadRun, scenario: ScalingScenario) -> ScalingResult:
        """FIT, temperature, and power of ``run`` at one scenario."""
        platform = self._platform_for(scenario)
        evaluation = platform.evaluate(run, self._operating_point(scenario))
        reliability = self.ramp.application_reliability(evaluation)
        return ScalingResult(
            scenario=scenario,
            fit=reliability.total_fit,
            peak_temperature_k=evaluation.peak_temperature_k,
            avg_power_w=evaluation.avg_power_w,
        )

    def trajectory(
        self,
        run: WorkloadRun,
        scenarios: tuple[ScalingScenario, ...] = DEFAULT_TRAJECTORY,
    ) -> list[ScalingResult]:
        """Evaluate the whole trajectory, in order.

        Raises:
            ReliabilityError: if ``scenarios`` is empty.
        """
        if not scenarios:
            raise ReliabilityError("empty scaling trajectory")
        return [self.evaluate(run, s) for s in scenarios]
