"""Structural redundancy for lifetime enhancement (extension).

The paper's related-work section points at exploiting microarchitectural
redundancy to "increase useful processor lifetime", and the authors'
direct follow-up (ISCA 2005) builds exactly that on top of RAMP:
**structural duplication** (SD — cold spares that take over when a
structure wears out) and **graceful performance degradation** (GPD —
adaptive structures keep running, smaller, after a unit dies).

This module implements both on the reproduction's stack:

- a structure's lifetime is the minimum over its failure mechanisms of a
  sampled (wear-out-shaped) lifetime with the RAMP-calibrated mean;
- **SD**: a cold spare is unpowered (no wear) until the primary dies,
  so the structure's lifetime is the *sum* of two independent draws;
- **GPD**: when a duplicated adaptive structure (ALUs, FPUs, window
  slices) loses capacity, the processor keeps running in a degraded
  configuration whose performance comes from the real Arch-space
  simulations; the system dies when a non-redundant structure dies.

Outputs are Monte Carlo estimates of system MTTF and (for GPD) the
performance-weighted lifetime, with SOFR / no-redundancy baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fit import FitAccount
from repro.core.lifetime import LifetimeDistribution, LognormalLifetime
from repro.errors import ReliabilityError


@dataclass(frozen=True)
class RedundancyPlan:
    """Which structures carry cold spares.

    Attributes:
        spares: structure names with one cold spare each.
        area_overhead_mm2: silicon cost of the spares (for reporting).
    """

    spares: frozenset[str]
    area_overhead_mm2: float

    @classmethod
    def for_structures(cls, names: tuple[str, ...]) -> "RedundancyPlan":
        """Plan sparing the named structures; overhead = their areas."""
        from repro.config.technology import structure_by_name

        return cls(
            spares=frozenset(names),
            area_overhead_mm2=sum(structure_by_name(n).area_mm2 for n in names),
        )

    def can_swap(self, structure: str, used: frozenset[str] | set[str]) -> bool:
        """Whether a cold spare remains for ``structure``.

        Each planned structure carries exactly one spare; ``used`` names
        the structures whose spare was already consumed (the wear-aware
        controller's swap history).
        """
        return structure in self.spares and structure not in used


@dataclass(frozen=True)
class RedundancyResult:
    """Monte Carlo outcome of a redundancy evaluation.

    Attributes:
        mttf_hours: mean system lifetime.
        baseline_mttf_hours: the no-redundancy (series) mean under the
            same lifetime distribution.
        improvement: mttf over baseline.
        area_overhead_mm2: silicon cost of the plan.
        n_samples: Monte Carlo sample count.
    """

    mttf_hours: float
    baseline_mttf_hours: float
    area_overhead_mm2: float
    n_samples: int

    @property
    def improvement(self) -> float:
        return self.mttf_hours / self.baseline_mttf_hours


def structure_lifetimes(
    account: FitAccount,
    distribution: LifetimeDistribution,
    rng: np.random.Generator,
    n_samples: int,
) -> dict[str, np.ndarray]:
    """Sampled lifetimes per structure.

    A structure fails when its first mechanism does: per sample, the
    minimum over the structure's mechanism lifetimes (each drawn with its
    RAMP-calibrated mean).  Structures with zero total FIT are excluded
    (they cannot fail).

    Raises:
        ReliabilityError: if no structure can fail.
    """
    per_structure: dict[str, np.ndarray] = {}
    for (mech, struct), fit in account.entries.items():
        if fit <= 0.0:
            continue
        draws = distribution.sample(rng, 1.0e9 / fit, n_samples)
        if struct in per_structure:
            np.minimum(per_structure[struct], draws, out=per_structure[struct])
        else:
            per_structure[struct] = draws
    if not per_structure:
        raise ReliabilityError("no failing structures in the account")
    return per_structure


def evaluate_duplication(
    account: FitAccount,
    plan: RedundancyPlan,
    distribution: LifetimeDistribution | None = None,
    n_samples: int = 20_000,
    seed: int = 0,
) -> RedundancyResult:
    """System MTTF with cold spares on the planned structures.

    A spared structure's lifetime is the sum of two independent draws:
    the spare is unpowered (accumulating no wear) until the primary
    fails, then ages from fresh — the cold-spare idealisation of the
    follow-up paper.

    Raises:
        ReliabilityError: if the plan names a structure absent from the
            account or sampling is infeasible.
    """
    if n_samples <= 0:
        raise ReliabilityError("need a positive sample count")
    distribution = distribution or LognormalLifetime(0.5)
    rng = np.random.default_rng(seed)
    lifetimes = structure_lifetimes(account, distribution, rng, n_samples)
    unknown = plan.spares - set(lifetimes)
    if unknown:
        raise ReliabilityError(f"plan spares unknown structures: {sorted(unknown)}")

    baseline = np.full(n_samples, np.inf)
    for draws in lifetimes.values():
        np.minimum(baseline, draws, out=baseline)

    system = np.full(n_samples, np.inf)
    for struct, draws in lifetimes.items():
        if struct in plan.spares:
            # Fresh, independent spare: same FIT field, new draws.
            spare_rng_draws = structure_lifetimes(
                _only_structure(account, struct), distribution, rng, n_samples
            )[struct]
            draws = draws + spare_rng_draws
        np.minimum(system, draws, out=system)

    return RedundancyResult(
        mttf_hours=float(system.mean()),
        baseline_mttf_hours=float(baseline.mean()),
        area_overhead_mm2=plan.area_overhead_mm2,
        n_samples=n_samples,
    )


def _only_structure(account: FitAccount, struct: str) -> FitAccount:
    return FitAccount(
        {k: v for k, v in account.entries.items() if k[1] == struct}
    )


@dataclass(frozen=True)
class DegradationResult:
    """Graceful-performance-degradation outcome.

    Attributes:
        mttf_hours: mean lifetime-to-total-failure with GPD.
        baseline_mttf_hours: series-system mean (first failure kills).
        mean_relative_performance: lifetime-average performance relative
            to the healthy machine (degraded epochs drag it below 1).
        n_samples: Monte Carlo sample count.
    """

    mttf_hours: float
    baseline_mttf_hours: float
    mean_relative_performance: float
    n_samples: int

    @property
    def improvement(self) -> float:
        return self.mttf_hours / self.baseline_mttf_hours


def evaluate_degradation(
    account: FitAccount,
    degradable: dict[str, float],
    distribution: LifetimeDistribution | None = None,
    n_samples: int = 20_000,
    seed: int = 0,
) -> DegradationResult:
    """System lifetime when degradable structures fail soft.

    Args:
        account: the RAMP FIT ledger.
        degradable: structure name -> relative performance of the machine
            after that structure's first failure (e.g. ``{"fpu": 0.9}``:
            losing FPU capacity costs 10%).  A degradable structure takes
            two failures to kill the system (its remaining capacity keeps
            working and keeps wearing); others kill on the first.

    Raises:
        ReliabilityError: on unknown structures or bad performance values.
    """
    if any(not 0.0 < p <= 1.0 for p in degradable.values()):
        raise ReliabilityError("degraded performance must be in (0, 1]")
    if n_samples <= 0:
        raise ReliabilityError("need a positive sample count")
    distribution = distribution or LognormalLifetime(0.5)
    rng = np.random.default_rng(seed)
    lifetimes = structure_lifetimes(account, distribution, rng, n_samples)
    unknown = set(degradable) - set(lifetimes)
    if unknown:
        raise ReliabilityError(f"degradable set has unknown structures: {sorted(unknown)}")

    baseline = np.full(n_samples, np.inf)
    for draws in lifetimes.values():
        np.minimum(baseline, draws, out=baseline)

    # Hard structures: first failure is fatal.
    hard = np.full(n_samples, np.inf)
    for struct, draws in lifetimes.items():
        if struct not in degradable:
            np.minimum(hard, draws, out=hard)

    # Degradable structures: first failure at t1 degrades, the remaining
    # capacity fails after a second (independent) lifetime.
    first_failures = {}
    second_failures = {}
    for struct in degradable:
        t1 = lifetimes[struct]
        extra = structure_lifetimes(
            _only_structure(account, struct), distribution, rng, n_samples
        )[struct]
        first_failures[struct] = t1
        second_failures[struct] = t1 + extra
    system = hard.copy()
    for struct in degradable:
        np.minimum(system, second_failures[struct], out=system)

    # Lifetime-average performance: full speed until the earliest
    # degradable first-failure (if it precedes death), degraded after.
    weighted_time = system.copy()
    for struct, rel_perf in degradable.items():
        degraded_start = np.minimum(first_failures[struct], system)
        degraded_span = system - degraded_start
        weighted_time -= degraded_span * (1.0 - rel_perf)
    mean_rel_perf = float((weighted_time / system).mean())

    return DegradationResult(
        mttf_hours=float(system.mean()),
        baseline_mttf_hours=float(baseline.mean()),
        mean_relative_performance=mean_rel_perf,
        n_samples=n_samples,
    )
