"""The four intrinsic failure mechanisms modelled by RAMP (Section 3)."""

from repro.core.failure.base import FailureMechanism, StressConditions
from repro.core.failure.electromigration import Electromigration
from repro.core.failure.stress_migration import StressMigration
from repro.core.failure.tddb import TimeDependentDielectricBreakdown
from repro.core.failure.thermal_cycling import ThermalCycling

#: The standard mechanism set, in the paper's presentation order.
ALL_MECHANISMS: tuple[FailureMechanism, ...] = (
    Electromigration(),
    StressMigration(),
    TimeDependentDielectricBreakdown(),
    ThermalCycling(),
)

__all__ = [
    "FailureMechanism",
    "StressConditions",
    "Electromigration",
    "StressMigration",
    "TimeDependentDielectricBreakdown",
    "ThermalCycling",
    "ALL_MECHANISMS",
]
