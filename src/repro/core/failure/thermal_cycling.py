"""Thermal cycling fatigue (Coffin-Manson), Section 3.4 of the paper.

Temperature cycles accumulate fatigue damage, most pronounced at the
package/die interface (solder joints).  The paper models only the large,
low-frequency cycles (power-up/down, standby transitions) — validated
models for small high-frequency cycles do not exist — via the
Coffin-Manson relation on the number of cycles to failure:

    N_TC ∝ (1 / ΔT)^q

With a fixed cycling frequency folded into the proportionality constant,
the MTTF is

    MTTF_TC ∝ (1 / (T_average - T_ambient))^q

where T_average is the structure's average temperature over the run and
q = 2.35, the Coffin-Manson exponent for the package.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import CYCLE_COLD_TEMPERATURE_K, TC_COFFIN_MANSON_EXPONENT
from repro.core.failure.base import FailureMechanism, StressConditions


class ThermalCycling(FailureMechanism):
    """Coffin-Manson package-fatigue model.

    The ``temperature_k`` of the supplied conditions must be the
    *run-average* structure temperature — RAMP's accounting handles that
    (Section 3.6: "for thermal cycling, we calculate the average
    temperature over the entire run").

    Args:
        coffin_manson_exponent: q (2.35 for the package).
        ambient_k: the cold end of the modelled cycle (the powered-off
            room-temperature state, not the in-case air temperature).
    """

    name = "TC"
    scales_with_powered_area = False

    def __init__(
        self,
        coffin_manson_exponent: float = TC_COFFIN_MANSON_EXPONENT,
        ambient_k: float = CYCLE_COLD_TEMPERATURE_K,
    ) -> None:
        self.q = coffin_manson_exponent
        self.ambient_k = ambient_k

    def relative_mttf(self, conditions: StressConditions) -> float:
        """(1/(T_avg - T_ambient))^q; infinite when never above ambient."""
        delta = conditions.temperature_k - self.ambient_k
        if delta <= 0.0:
            return math.inf
        return (1.0 / delta) ** self.q

    def relative_fit_batch(
        self,
        temperature_k: np.ndarray,
        voltage_v: np.ndarray,
        frequency_hz: np.ndarray,
        activity: np.ndarray,
        v_nominal: float,
        f_nominal: float,
    ) -> np.ndarray:
        """Array form of :meth:`relative_mttf` reciprocal.

        ``temperature_k`` must carry *run-average* temperatures, exactly
        as the scalar contract requires.  Zero FIT wherever the average
        never rises above the cycle's cold end.
        """
        delta = temperature_k - self.ambient_k
        with np.errstate(divide="ignore", invalid="ignore"):
            mttf = (1.0 / delta) ** self.q
            fit = np.where(delta > 0.0, 1.0 / mttf, 0.0)
        return fit
