"""Stress migration, Section 3.2 of the paper.

Metal atoms migrate under thermo-mechanical stress caused by the
differing thermal-expansion rates of the materials in the device.  The
stress is proportional to the deviation of the operating temperature
from the metal deposition (stress-free) temperature:

    MTTF_SM ∝ |T_metal - T|^(-m) · exp(Ea / kT)

Two opposing temperature effects: the Arrhenius term accelerates
wear-out exponentially with temperature, while running *closer* to the
deposition temperature reduces the stress term.  The exponential effect
dominates in practice — the model reproduces that.

Constants for the sputtered copper interconnects modelled: m = 2.5,
Ea = 0.9 eV, T_metal = 500 K.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import (
    BOLTZMANN_EV_PER_K,
    SM_ACTIVATION_ENERGY_EV,
    SM_STRESS_EXPONENT,
)
from repro.core.failure.base import FailureMechanism, StressConditions


class StressMigration(FailureMechanism):
    """Thermo-mechanical stress-migration model.

    Args:
        stress_exponent: m (2.5 for the modelled copper).
        activation_energy_ev: Ea (0.9 eV).
        deposition_temperature_k: the stress-free temperature (500 K for
            sputtered deposition, per the paper).
    """

    name = "SM"
    scales_with_powered_area = False

    def __init__(
        self,
        stress_exponent: float = SM_STRESS_EXPONENT,
        activation_energy_ev: float = SM_ACTIVATION_ENERGY_EV,
        deposition_temperature_k: float = 500.0,
    ) -> None:
        self.m = stress_exponent
        self.ea_ev = activation_energy_ev
        self.t_metal_k = deposition_temperature_k

    def relative_mttf(self, conditions: StressConditions) -> float:
        """|T_metal - T|^(-m) · exp(Ea/kT); infinite at zero stress."""
        stress = abs(self.t_metal_k - conditions.temperature_k)
        if stress <= 0.0:
            return math.inf
        arrhenius = float(np.exp(
            self.ea_ev / (BOLTZMANN_EV_PER_K * conditions.temperature_k)
        ))
        return stress ** (-self.m) * arrhenius

    def relative_fit_batch(
        self,
        temperature_k: np.ndarray,
        voltage_v: np.ndarray,
        frequency_hz: np.ndarray,
        activity: np.ndarray,
        v_nominal: float,
        f_nominal: float,
    ) -> np.ndarray:
        """Array form of :meth:`relative_mttf` reciprocal (zero FIT at
        zero stress, i.e. exactly at the deposition temperature)."""
        stress = np.abs(self.t_metal_k - temperature_k)
        arrhenius = np.exp(self.ea_ev / (BOLTZMANN_EV_PER_K * temperature_k))
        with np.errstate(divide="ignore"):
            mttf = stress ** (-self.m) * arrhenius
            fit = np.where(stress > 0.0, 1.0 / mttf, 0.0)
        return fit
