"""Failure-mechanism interface.

Each mechanism computes a *relative MTTF*: the device-model expression
with its proportionality constant set to 1.  Reliability qualification
(:mod:`repro.core.qualification`) later fixes the constant per structure
so that worst-case operation exactly meets the FIT budget — exactly the
paper's procedure, where the constants stand in for the (unknown)
cost-vs-reliability function of materials and yield.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.constants import validate_temperature
from repro.errors import ReliabilityError


@dataclass(frozen=True)
class StressConditions:
    """The operating parameters a failure model sees for one structure.

    Attributes:
        temperature_k: the structure's temperature (for thermal cycling
            this is the run-average temperature; see the paper, Sec. 3.4).
        voltage_v: supply voltage.
        frequency_hz: clock frequency.
        activity: the structure's activity factor (switching probability
            proxy) in [0, 1].
        v_nominal / f_nominal: the base operating point, used to express
            current density relative to the nominal design point.
    """

    temperature_k: float
    voltage_v: float
    frequency_hz: float
    activity: float
    v_nominal: float = 1.0
    f_nominal: float = 4.0e9

    def __post_init__(self) -> None:
        validate_temperature(self.temperature_k, what="stress temperature")
        if self.voltage_v <= 0.0 or self.frequency_hz <= 0.0:
            raise ReliabilityError("voltage and frequency must be positive")
        if not 0.0 <= self.activity <= 1.0:
            raise ReliabilityError(f"activity {self.activity} outside [0, 1]")
        if self.v_nominal <= 0.0 or self.f_nominal <= 0.0:
            raise ReliabilityError("nominal operating point must be positive")

    @property
    def v_ratio(self) -> float:
        return self.voltage_v / self.v_nominal

    @property
    def f_ratio(self) -> float:
        # repro: ignore[RPR303] f_nominal validated positive in __post_init__
        return self.frequency_hz / self.f_nominal


class FailureMechanism(abc.ABC):
    """One intrinsic (wear-out) failure mechanism.

    Attributes:
        name: short identifier used in reports and budget keys.
        scales_with_powered_area: whether a structure's FIT from this
            mechanism shrinks proportionally when DRM powers down part of
            the structure (true for electromigration and TDDB — no
            current flow or supply voltage in a gated slice — false for
            the mechanical mechanisms).
    """

    name: str = "abstract"
    scales_with_powered_area: bool = False

    @abc.abstractmethod
    def relative_mttf(self, conditions: StressConditions) -> float:
        """The MTTF expression with unit proportionality constant.

        Returns ``math.inf`` when the mechanism cannot act at all under
        the given conditions (e.g. electromigration at zero activity).
        """

    def relative_fit(self, conditions: StressConditions) -> float:
        """Reciprocal of :meth:`relative_mttf` (0 when MTTF is infinite)."""
        mttf = self.relative_mttf(conditions)
        if mttf <= 0.0:
            raise ReliabilityError(
                f"{self.name}: non-positive relative MTTF {mttf!r}"
            )
        if math.isinf(mttf):
            return 0.0
        return 1.0 / mttf

    def relative_fit_batch(
        self,
        temperature_k: np.ndarray,
        voltage_v: np.ndarray,
        frequency_hz: np.ndarray,
        activity: np.ndarray,
        v_nominal: float,
        f_nominal: float,
    ) -> np.ndarray:
        """Vectorized :meth:`relative_fit` over broadcastable arrays.

        Inputs must already satisfy the :class:`StressConditions`
        invariants elementwise (temperature range, activity in [0, 1],
        positive voltage/frequency) — the batch kernel validates them
        once per grid instead of once per element.

        The four built-in mechanisms override this with closed-form
        array expressions; this fallback evaluates the scalar model per
        element so custom mechanisms stay correct without extra work.
        """
        t, v, f, a = np.broadcast_arrays(
            temperature_k, voltage_v, frequency_hz, activity
        )
        out = np.empty(t.shape, dtype=float)
        flat = out.reshape(-1)
        # repro: ignore[RPR310] documented scalar fallback: mechanisms
        # without a closed-form batch override evaluate per element.
        for i, (ti, vi, fi, ai) in enumerate(
            zip(t.reshape(-1), v.reshape(-1), f.reshape(-1), a.reshape(-1))
        ):
            flat[i] = self.relative_fit(
                StressConditions(
                    temperature_k=float(ti),
                    voltage_v=float(vi),
                    frequency_hz=float(fi),
                    activity=float(ai),
                    v_nominal=v_nominal,
                    f_nominal=f_nominal,
                )
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
