"""Electromigration (Black's equation), Section 3.1 of the paper.

Mass transport of conductor metal atoms under the electron wind.  The
accepted MTTF model is Black's equation:

    MTTF_EM ∝ (J - J_crit)^(-n) · exp(Ea / kT)

with J the interconnect current density and J_crit the critical density
required for electromigration.  J_crit is roughly two orders of magnitude
below J in real interconnects, so J - J_crit ≈ J.  Current density
relates to the switching probability p of the line as

    J = C · Vdd · f · p / (W · H)

The paper folds the line geometry (C, W, H) into the proportionality
constant and treats all interconnects in a structure as similar, using
the structure's activity factor for p — RAMP does exactly the same, so
the relative current density is (V/V0)·(f/f0)·p.

Model constants for the copper interconnects modelled: n = 1.1,
Ea = 0.9 eV (JEDEC JEP122-A via the paper).
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import (
    BOLTZMANN_EV_PER_K,
    EM_ACTIVATION_ENERGY_EV,
    EM_CURRENT_DENSITY_EXPONENT,
)
from repro.core.failure.base import FailureMechanism, StressConditions


class Electromigration(FailureMechanism):
    """Black's-equation electromigration model for copper interconnect.

    Args:
        current_density_exponent: Black's n (1.1 for copper).
        activation_energy_ev: Ea (0.9 eV for copper).
    """

    name = "EM"
    scales_with_powered_area = True

    def __init__(
        self,
        current_density_exponent: float = EM_CURRENT_DENSITY_EXPONENT,
        activation_energy_ev: float = EM_ACTIVATION_ENERGY_EV,
    ) -> None:
        self.n = current_density_exponent
        self.ea_ev = activation_energy_ev

    def relative_mttf(self, conditions: StressConditions) -> float:
        """(J_rel)^(-n) · exp(Ea/kT); infinite at zero current density."""
        j_rel = conditions.v_ratio * conditions.f_ratio * conditions.activity
        if j_rel <= 0.0:
            return math.inf
        arrhenius = float(np.exp(
            self.ea_ev / (BOLTZMANN_EV_PER_K * conditions.temperature_k)
        ))
        return j_rel ** (-self.n) * arrhenius

    def relative_fit_batch(
        self,
        temperature_k: np.ndarray,
        voltage_v: np.ndarray,
        frequency_hz: np.ndarray,
        activity: np.ndarray,
        v_nominal: float,
        f_nominal: float,
    ) -> np.ndarray:
        """Array form of :meth:`relative_mttf` reciprocal.

        Mirrors the scalar operation order (both paths use ``np.exp``),
        so per-element results match the scalar model exactly.
        """
        j_rel = (voltage_v / v_nominal) * (frequency_hz / f_nominal) * activity
        arrhenius = np.exp(self.ea_ev / (BOLTZMANN_EV_PER_K * temperature_k))
        with np.errstate(divide="ignore"):
            mttf = j_rel ** (-self.n) * arrhenius
            fit = np.where(j_rel > 0.0, 1.0 / mttf, 0.0)
        return fit
