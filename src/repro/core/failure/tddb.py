"""Time-dependent dielectric breakdown (gate-oxide wear-out), Section 3.3.

The gate dielectric wears down until a conductive path forms through it.
RAMP uses the unified ultra-thin-oxide model of Wu et al. (IBM), fitted
over a wide range of oxide thicknesses, voltages, and temperatures:

    MTTF_TDDB ∝ (1/V)^(a - b·T) · exp[(X + Y/T + Z·T) / (kT)]

The voltage exponent (a - b·T) is enormous (~100 at operating
temperatures), which is why the paper finds that small DVS voltage drops
reduce the TDDB FIT drastically — the dominant effect behind DVS beating
microarchitectural adaptation for DRM.

The ISCA-04 text lists the fitting parameters but they are garbled in the
available scan; the values below follow the
model as published in the companion RAMP papers (Srinivasan et al., DSN
2004 / IEEE Micro 2005): a = 78, |b| = 0.081 K^-1, X = 0.759 eV,
Y = -66.8 eV·K, Z = -8.37e-4 eV/K, with the sign of b chosen so the
voltage acceleration exponent (a - b·T ≈ 46 at 400 K) *decreases* with
temperature — the central experimental finding of Wu et al.'s
voltage/temperature interplay study.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import BOLTZMANN_EV_PER_K
from repro.core.failure.base import FailureMechanism, StressConditions
from repro.errors import ReliabilityError


class TimeDependentDielectricBreakdown(FailureMechanism):
    """Wu et al. unified TDDB model for ultra-thin gate oxides.

    Args:
        a, b: voltage-exponent fit (exponent is ``a - b*T``).
        x_ev, y_ev_k, z_ev_per_k: the temperature-activation fit.
    """

    name = "TDDB"
    scales_with_powered_area = True

    def __init__(
        self,
        a: float = 78.0,
        b: float = 0.081,
        x_ev: float = 0.759,
        y_ev_k: float = -66.8,  # repro: ignore[RPR302] eV·K fit term, not eV
        z_ev_per_k: float = -8.37e-4,
    ) -> None:
        self.a = a
        self.b = b
        self.x_ev = x_ev
        self.y_ev_k = y_ev_k
        self.z_ev_per_k = z_ev_per_k

    def voltage_exponent(self, temperature_k: float) -> float:
        """The effective voltage power ``a - b*T`` at a temperature."""
        return self.a - self.b * temperature_k

    def relative_mttf(self, conditions: StressConditions) -> float:
        """(1/V)^(a-bT) · exp[(X + Y/T + Z·T)/(kT)]."""
        t = conditions.temperature_k
        v = conditions.voltage_v
        exponent = self.voltage_exponent(t)
        activation = (
            self.x_ev + self.y_ev_k / t + self.z_ev_per_k * t
        ) / (BOLTZMANN_EV_PER_K * t)
        mttf = (1.0 / v) ** exponent * float(np.exp(activation))
        if not math.isfinite(mttf) or mttf <= 0.0:
            # The huge voltage exponent (~100) can overflow or underflow
            # float range for extreme (but validated) operating points;
            # surface that instead of propagating inf/0 into the FIT sum.
            raise ReliabilityError(
                f"TDDB relative MTTF degenerate ({mttf!r}) at "
                f"T={t!r} K, V={v!r} V"
            )
        return mttf

    def relative_fit_batch(
        self,
        temperature_k: np.ndarray,
        voltage_v: np.ndarray,
        frequency_hz: np.ndarray,
        activity: np.ndarray,
        v_nominal: float,
        f_nominal: float,
    ) -> np.ndarray:
        """Array form of :meth:`relative_mttf` reciprocal.

        The huge voltage exponent can underflow MTTF to zero at extreme
        operating points; those elements map to an infinite FIT rather
        than a divide-by-zero warning, and the caller's finite-check
        rejects them the same way the scalar path's error does.
        """
        t = temperature_k
        exponent = self.a - self.b * t
        activation = (
            self.x_ev + self.y_ev_k / t + self.z_ev_per_k * t
        ) / (BOLTZMANN_EV_PER_K * t)
        with np.errstate(divide="ignore"):
            mttf = (1.0 / voltage_v) ** exponent * np.exp(activation)
            fit = np.where(mttf > 0.0, 1.0 / mttf, np.inf)
        return np.broadcast_to(fit, np.broadcast(fit, activity).shape)
