"""Online RAMP: the deployable hardware monitoring loop.

The paper states that "in real hardware, RAMP would require sensors and
counters that provide information on processor operating conditions".
This module assembles that loop end to end:

1. :class:`~repro.core.sensors.SensorBank` quantizes the true operating
   conditions into what on-die instrumentation reports;
2. a hardware RAMP (:class:`~repro.core.ramp.RampModel` fed with the
   quantized interval) computes the epoch's FIT rate;
3. a :class:`~repro.core.budget.ReliabilityBudget` accumulates lifetime
   consumption and exposes the *sustainable* FIT rate — the setpoint a
   DRM actuator (DVS controller, scheduler) regulates to.

:class:`OnlineRampMonitor` is the passive measurement half of a hardware
DRM implementation; :mod:`repro.core.controllers` is the actuator half.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import TARGET_FIT
from repro.core.budget import ReliabilityBudget
from repro.core.ramp import RampModel
from repro.core.sensors import SensorBank, SensorReadings, interval_from_readings
from repro.errors import ReliabilityError
from repro.harness.platform import Interval


@dataclass(frozen=True)
class EpochRecord:
    """One monitored epoch.

    Attributes:
        readings: the quantized sensor snapshot the FIT came from.
        fit: the epoch's instantaneous (EM+SM+TDDB) FIT rate as hardware
            RAMP computes it.
        banked: the reliability bank after charging the epoch (FIT-hours).
        sustainable_fit: the rate affordable for the remaining lifetime.
        alarm: True when lifetime consumption is running over budget.
    """

    readings: SensorReadings
    fit: float
    banked: float
    sustainable_fit: float
    alarm: bool


class OnlineRampMonitor:
    """Hardware-style lifetime-reliability monitor.

    Args:
        ramp: qualified RAMP model (burned into the monitor at
            manufacture, in the hardware analogy).
        sensor_bank: instrumentation model; defaults to 1 K thermal
            diodes with 22-bit activity counters.
        epoch_hours: wall-clock length of one monitoring epoch.
        fit_target: the qualified sustained rate.
        horizon_hours: design lifetime (default ~30 years).
    """

    def __init__(
        self,
        ramp: RampModel,
        sensor_bank: SensorBank | None = None,
        epoch_hours: float = 1.0,
        fit_target: float = TARGET_FIT,
        horizon_hours: float = 30.0 * 8760.0,
    ) -> None:
        if epoch_hours <= 0.0:
            raise ReliabilityError("epoch length must be positive")
        self.ramp = ramp
        self.sensors = sensor_bank or SensorBank()
        self.epoch_hours = epoch_hours
        self.budget = ReliabilityBudget(
            fit_target=fit_target, horizon_hours=horizon_hours
        )
        self.history: list[EpochRecord] = []

    def observe(self, interval: Interval) -> EpochRecord:
        """Monitor one epoch of operation.

        ``interval`` carries the true conditions; the monitor only ever
        sees the quantized sensor readings derived from it, exactly as
        hardware would.
        """
        readings = self.sensors.sample(interval)
        quantized = interval_from_readings(readings, interval)
        fit = self.ramp.interval_fit(quantized).total
        self.budget.record(fit, self.epoch_hours)
        record = EpochRecord(
            readings=readings,
            fit=fit,
            banked=self.budget.banked,
            sustainable_fit=self.budget.sustainable_fit(),
            alarm=not self.budget.on_track,
        )
        self.history.append(record)
        return record

    @property
    def lifetime_average_fit(self) -> float:
        """Average FIT over everything observed so far."""
        return self.budget.average_fit

    @property
    def projected_mttf_years(self) -> float:
        """MTTF implied by the lifetime-average FIT observed so far.

        Raises:
            ReliabilityError: before any epoch has been observed.
        """
        avg = self.budget.average_fit
        if avg <= 0.0:
            raise ReliabilityError("no consumption observed yet")
        return 1.0e9 / avg / 8760.0

    def setpoint(self) -> float:
        """The FIT rate an actuator should regulate to right now.

        This is the bank-aware sustainable rate: above target when
        cool history has banked margin, below target when in debt.
        """
        return self.budget.sustainable_fit()
