"""Long-horizon reliability banking.

Section 4 of the paper observes that, like energy but unlike temperature,
reliability is a *long-term* resource: lifetime is consumed at the
instantaneous FIT rate and can be budgeted over time, so a hot interval
is acceptable if cooler intervals pay it back.  This module makes that
bank explicit — it is the bookkeeping a deployed DRM controller would
maintain, and the basis of the time-averaging ablation bench.

Under the SOFR constant-rate assumption, running for ``t`` hours at FIT
``λ`` consumes ``λ·t / 1e9`` expected failures; the qualified lifetime
budget is ``fit_target · horizon / 1e9``.  The bank tracks the
difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import TARGET_FIT
from repro.errors import ReliabilityError


@dataclass
class ReliabilityBudget:
    """A running ledger of lifetime-reliability consumption.

    Attributes:
        fit_target: the qualified sustained FIT rate.
        horizon_hours: the design lifetime the target is defined over.
        elapsed_hours: operation recorded so far.
        consumed: accumulated FIT-hours (in units of FIT·hours).
    """

    fit_target: float = TARGET_FIT
    horizon_hours: float = 30.0 * 8760.0
    elapsed_hours: float = 0.0
    consumed: float = 0.0
    _history: list[tuple[float, float]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.fit_target <= 0.0 or self.horizon_hours <= 0.0:
            raise ReliabilityError("target and horizon must be positive")

    def record(self, fit: float, duration_hours: float) -> None:
        """Charge ``duration_hours`` of operation at failure rate ``fit``.

        Raises:
            ReliabilityError: on negative rates or non-positive durations.
        """
        if fit < 0.0:
            raise ReliabilityError("FIT rate cannot be negative")
        if duration_hours <= 0.0:
            raise ReliabilityError("duration must be positive")
        self.elapsed_hours += duration_hours
        self.consumed += fit * duration_hours
        self._history.append((fit, duration_hours))

    @property
    def average_fit(self) -> float:
        """Lifetime-average FIT so far (0 before any operation)."""
        if not self._history:
            return 0.0
        return self.consumed / self.elapsed_hours

    @property
    def allowed(self) -> float:
        """FIT-hours the elapsed time was entitled to consume."""
        return self.fit_target * self.elapsed_hours

    @property
    def banked(self) -> float:
        """Unused FIT-hours (negative when over-consumed)."""
        return self.allowed - self.consumed

    @property
    def on_track(self) -> bool:
        """Whether lifetime consumption is within budget so far."""
        return self.banked >= -1e-9

    def remaining_budget(self) -> float:
        """FIT-hours available for the rest of the horizon.

        Raises:
            ReliabilityError: if the horizon is already exhausted.
        """
        remaining_hours = self.horizon_hours - self.elapsed_hours
        if remaining_hours <= 0.0:
            raise ReliabilityError("lifetime horizon exhausted")
        return self.fit_target * self.horizon_hours - self.consumed

    def sustainable_fit(self) -> float:
        """The constant FIT rate affordable for the remaining horizon.

        This is the quantity a banking DRM controller regulates to: above
        the target when the bank is positive, below when in debt.
        """
        remaining_hours = self.horizon_hours - self.elapsed_hours
        if remaining_hours <= 0.0:
            raise ReliabilityError("lifetime horizon exhausted")
        return max(0.0, self.remaining_budget() / remaining_hours)

    def can_afford(self, fit: float, duration_hours: float) -> bool:
        """Whether an excursion keeps the whole-horizon budget intact."""
        if fit < 0.0 or duration_hours <= 0.0:
            raise ReliabilityError("invalid excursion")
        return fit * duration_hours <= self.remaining_budget() + 1e-9
