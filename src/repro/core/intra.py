"""Intra-application DRM (the paper's stated future work, Section 8).

The paper's oracle adapts once per application run and explicitly "does
not represent the best possible DRM control algorithm because it does not
exploit intra-application variability".  This module adds that missing
oracle: a **per-phase DVS schedule** chosen so that the *run's
time-averaged FIT* stays within target while total instruction throughput
is maximised.

Because cool phases under-consume the reliability budget, an
intra-application schedule can run hot phases faster than any single
whole-run operating point could — banking inside a single run, the same
mechanism the paper invokes across time ("higher instantaneous FIT values
are compensated by lower values at other times") applied at phase
granularity.

Two search strategies:

- **exhaustive** — enumerate the per-phase grid product (exact oracle;
  feasible for the suite's 3-phase profiles on a reduced grid);
- **greedy** — start every phase at the DVS floor and repeatedly upgrade
  the phase with the best marginal throughput-per-FIT until no upgrade
  fits the budget (scales to many phases).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.config.dvs import OperatingPoint, VoltageFrequencyCurve, DEFAULT_VF_CURVE
from repro.config.microarch import BASE_MICROARCH
from repro.constants import TARGET_FIT
from repro.core.ramp import RampModel
from repro.errors import AdaptationError
from repro.harness.platform import Platform, PlatformEvaluation
from repro.harness.sweep import SimulationCache
from repro.workloads.characteristics import WorkloadProfile


@dataclass(frozen=True)
class IntraDecision:
    """A per-phase DVS schedule and its outcome.

    Attributes:
        profile_name: the application.
        t_qual_k: qualification temperature.
        schedule: one operating point per phase, in phase order.
        performance: speedup vs the base processor at nominal V/f.
        fit: the schedule's time-averaged application FIT.
        meets_target: whether the FIT target is satisfied.
        strategy: "exhaustive" or "greedy".
    """

    profile_name: str
    t_qual_k: float
    schedule: tuple[OperatingPoint, ...]
    performance: float
    fit: float
    meets_target: bool
    strategy: str

    @property
    def frequencies_ghz(self) -> tuple[float, ...]:
        return tuple(op.frequency_ghz for op in self.schedule)


class IntraAppOracle:
    """Oracle DRM with per-phase DVS schedules.

    Args:
        platform / cache / vf_curve / fit_target: as in
            :class:`~repro.core.drm.DRMOracle`; share them for
            apples-to-apples comparisons.
        ramp_factory: callable mapping T_qual to a qualified
            :class:`~repro.core.ramp.RampModel` (pass
            ``DRMOracle.ramp_for`` to share qualification).
        grid_steps: per-phase DVS candidates (the product space grows as
            ``grid_steps ** n_phases`` for the exhaustive strategy).
    """

    def __init__(
        self,
        ramp_factory,
        platform: Platform | None = None,
        cache: SimulationCache | None = None,
        vf_curve: VoltageFrequencyCurve = DEFAULT_VF_CURVE,
        fit_target: float = TARGET_FIT,
        grid_steps: int = 6,
    ) -> None:
        if grid_steps < 2:
            raise AdaptationError("need at least two DVS candidates per phase")
        self.ramp_factory = ramp_factory
        self.platform = platform or Platform(vf_curve=vf_curve)
        self.cache = cache or SimulationCache()
        self.vf_curve = vf_curve
        self.fit_target = fit_target
        self.grid_steps = grid_steps
        self._base_evals: dict[str, PlatformEvaluation] = {}

    def _base_evaluation(self, profile: WorkloadProfile) -> PlatformEvaluation:
        cached = self._base_evals.get(profile.name)
        if cached is None:
            run = self.cache.run(profile, BASE_MICROARCH)
            cached = self.platform.evaluate(run, self.vf_curve.nominal)
            self._base_evals[profile.name] = cached
        return cached

    def _evaluate_schedule(
        self, profile: WorkloadProfile, schedule: list[OperatingPoint], ramp: RampModel
    ) -> tuple[float, float]:
        """(performance, fit) of one per-phase schedule."""
        run = self.cache.run(profile, BASE_MICROARCH)
        evaluation = self.platform.evaluate_mixed(run, schedule)
        reliability = ramp.application_reliability(evaluation)
        perf = evaluation.ips / self._base_evaluation(profile).ips
        return perf, reliability.total_fit

    # ------------------------------------------------------------------

    def best_exhaustive(self, profile: WorkloadProfile, t_qual_k: float) -> IntraDecision:
        """Exact per-phase oracle over the grid product.

        Falls back to the minimum-FIT schedule (flagged infeasible) when
        nothing meets the target, mirroring the inter-application oracle.
        """
        ramp = self.ramp_factory(t_qual_k)
        run = self.cache.run(profile, BASE_MICROARCH)
        grid = self.vf_curve.grid(self.grid_steps)
        best: tuple[float, tuple[OperatingPoint, ...], float] | None = None
        fallback: tuple[float, tuple[OperatingPoint, ...], float] | None = None
        for combo in itertools.product(grid, repeat=len(run.phases)):
            perf, fit = self._evaluate_schedule(profile, list(combo), ramp)
            if fit <= self.fit_target + 1e-9:
                if best is None or perf > best[0]:
                    best = (perf, combo, fit)
            if fallback is None or fit < fallback[2]:
                fallback = (perf, combo, fit)
        chosen, meets = (best, True) if best is not None else (fallback, False)
        if chosen is None:
            raise AdaptationError("empty schedule space")
        return IntraDecision(
            profile_name=profile.name,
            t_qual_k=t_qual_k,
            schedule=chosen[1],
            performance=chosen[0],
            fit=chosen[2],
            meets_target=meets,
            strategy="exhaustive",
        )

    def best_greedy(self, profile: WorkloadProfile, t_qual_k: float) -> IntraDecision:
        """Greedy marginal-upgrade search (scales to many phases).

        Starts all phases at the DVS floor and repeatedly applies the
        single-phase frequency upgrade with the largest performance gain
        that keeps the schedule within the FIT target.
        """
        ramp = self.ramp_factory(t_qual_k)
        run = self.cache.run(profile, BASE_MICROARCH)
        grid = list(self.vf_curve.grid(self.grid_steps))
        levels = [0] * len(run.phases)

        def schedule_for(lv: list[int]) -> list[OperatingPoint]:
            return [grid[i] for i in lv]

        perf, fit = self._evaluate_schedule(profile, schedule_for(levels), ramp)
        feasible = fit <= self.fit_target + 1e-9
        improved = True
        while improved:
            improved = False
            best_step: tuple[float, int, float] | None = None
            for phase_idx in range(len(levels)):
                if levels[phase_idx] + 1 >= len(grid):
                    continue
                trial = list(levels)
                trial[phase_idx] += 1
                t_perf, t_fit = self._evaluate_schedule(
                    profile, schedule_for(trial), ramp
                )
                if t_fit <= self.fit_target + 1e-9 and t_perf > perf:
                    if best_step is None or t_perf > best_step[0]:
                        best_step = (t_perf, phase_idx, t_fit)
            if best_step is not None:
                perf, fit = best_step[0], best_step[2]
                levels[best_step[1]] += 1
                feasible = True
                improved = True
        return IntraDecision(
            profile_name=profile.name,
            t_qual_k=t_qual_k,
            schedule=tuple(schedule_for(levels)),
            performance=perf,
            fit=fit,
            meets_target=feasible,
            strategy="greedy",
        )
