"""Intra-application DRM (the paper's stated future work, Section 8).

The paper's oracle adapts once per application run and explicitly "does
not represent the best possible DRM control algorithm because it does not
exploit intra-application variability".  This module adds that missing
oracle: a **per-phase DVS schedule** chosen so that the *run's
time-averaged FIT* stays within target while total instruction throughput
is maximised.

Because cool phases under-consume the reliability budget, an
intra-application schedule can run hot phases faster than any single
whole-run operating point could — banking inside a single run, the same
mechanism the paper invokes across time ("higher instantaneous FIT values
are compensated by lower values at other times") applied at phase
granularity.

Two search strategies:

- **exhaustive** — enumerate the per-phase grid product (exact oracle;
  feasible for the suite's 3-phase profiles on a reduced grid);
- **greedy** — start every phase at the DVS floor and repeatedly upgrade
  the phase with the best marginal throughput-per-FIT until no upgrade
  fits the budget (scales to many phases).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config.dvs import OperatingPoint, VoltageFrequencyCurve, DEFAULT_VF_CURVE
from repro.config.microarch import BASE_MICROARCH
from repro.constants import TARGET_FIT
from repro.core.decision import Decision
from repro.core.ramp import RampModel
from repro.errors import AdaptationError
from repro.harness.platform import Platform, PlatformEvaluation
from repro.harness.sweep import SimulationCache
from repro.workloads.characteristics import WorkloadProfile


@dataclass(frozen=True, kw_only=True)
class IntraDecision(Decision):
    """A per-phase DVS schedule and its outcome.

    Extends the shared :class:`~repro.core.decision.Decision` record
    (profile_name / performance / fit / meets_target) with the schedule
    specifics:

    Attributes:
        t_qual_k: qualification temperature.
        schedule: one operating point per phase, in phase order.
        strategy: "exhaustive" or "greedy".
    """

    t_qual_k: float
    schedule: tuple[OperatingPoint, ...]
    strategy: str

    @property
    def frequencies_ghz(self) -> tuple[float, ...]:
        return tuple(op.frequency_ghz for op in self.schedule)


class IntraAppOracle:
    """Oracle DRM with per-phase DVS schedules.

    Args:
        platform / cache / vf_curve / fit_target: as in
            :class:`~repro.core.drm.DRMOracle`; share them for
            apples-to-apples comparisons.
        ramp_factory: callable mapping T_qual to a qualified
            :class:`~repro.core.ramp.RampModel` (pass
            ``DRMOracle.ramp_for`` to share qualification).
        grid_steps: per-phase DVS candidates (the product space grows as
            ``grid_steps ** n_phases`` for the exhaustive strategy).
    """

    def __init__(
        self,
        ramp_factory,
        platform: Platform | None = None,
        cache: SimulationCache | None = None,
        vf_curve: VoltageFrequencyCurve = DEFAULT_VF_CURVE,
        fit_target: float = TARGET_FIT,
        grid_steps: int = 6,
    ) -> None:
        if grid_steps < 2:
            raise AdaptationError("need at least two DVS candidates per phase")
        self.ramp_factory = ramp_factory
        self.platform = platform or Platform(vf_curve=vf_curve)
        self.cache = cache or SimulationCache()
        self.vf_curve = vf_curve
        self.fit_target = fit_target
        self.grid_steps = grid_steps
        self._base_evals: dict[str, PlatformEvaluation] = {}

    def _base_evaluation(self, profile: WorkloadProfile) -> PlatformEvaluation:
        cached = self._base_evals.get(profile.name)
        if cached is None:
            run = self.cache.run(profile, BASE_MICROARCH)
            cached = self.platform.evaluate(run, self.vf_curve.nominal)
            self._base_evals[profile.name] = cached
        return cached

    def _evaluate_schedules(
        self,
        profile: WorkloadProfile,
        schedules: Sequence[tuple[OperatingPoint, ...]],
        ramp: RampModel,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(performance, fit) arrays for a batch of per-phase schedules."""
        run = self.cache.run(profile, BASE_MICROARCH)
        batch = self.platform.evaluate_batch(run, schedules)
        perf = batch.ips / self._base_evaluation(profile).ips
        return perf, ramp.application_fit_batch(batch)

    def _evaluate_schedule(
        self, profile: WorkloadProfile, schedule: list[OperatingPoint], ramp: RampModel
    ) -> tuple[float, float]:
        """(performance, fit) of one per-phase schedule."""
        perf, fit = self._evaluate_schedules(profile, [tuple(schedule)], ramp)
        return float(perf[0]), float(fit[0])

    # ------------------------------------------------------------------

    #: Exhaustive-search batch size: the grid product is streamed through
    #: the kernel in chunks this large to bound peak memory.
    _CHUNK = 2048

    def best(
        self,
        profile: WorkloadProfile,
        *,
        t_qual_k: float,
        strategy: str = "greedy",
    ) -> IntraDecision:
        """The unified entry point: ``best(profile, t_qual_k=...,
        strategy="greedy"|"exhaustive")``.

        ``strategy`` defaults to the scalable greedy search.

        Raises:
            AdaptationError: for an unknown strategy.
        """
        if strategy == "exhaustive":
            return self.best_exhaustive(profile, t_qual_k=t_qual_k)
        if strategy == "greedy":
            return self.best_greedy(profile, t_qual_k=t_qual_k)
        raise AdaptationError(
            f"unknown intra-application strategy {strategy!r}"
        )

    def best_exhaustive(
        self, profile: WorkloadProfile, *, t_qual_k: float
    ) -> IntraDecision:
        """Exact per-phase oracle over the grid product.

        The product space is streamed through
        :meth:`~repro.harness.platform.Platform.evaluate_batch` in
        chunks, with running first-occurrence winners so the choice is
        identical to the original one-schedule-at-a-time loop.

        Falls back to the minimum-FIT schedule (flagged infeasible) when
        nothing meets the target, mirroring the inter-application oracle.
        """
        ramp = self.ramp_factory(t_qual_k)
        run = self.cache.run(profile, BASE_MICROARCH)
        grid = self.vf_curve.grid(self.grid_steps)
        best: tuple[float, tuple[OperatingPoint, ...], float] | None = None
        fallback: tuple[float, tuple[OperatingPoint, ...], float] | None = None
        combos = itertools.product(grid, repeat=len(run.phases))
        while True:
            chunk = list(itertools.islice(combos, self._CHUNK))
            if not chunk:
                break
            perf, fit = self._evaluate_schedules(profile, chunk, ramp)
            ok = np.flatnonzero(fit <= self.fit_target + 1e-9)
            if ok.size:
                j = int(ok[np.argmax(perf[ok])])
                if best is None or perf[j] > best[0]:
                    best = (float(perf[j]), chunk[j], float(fit[j]))
            j = int(np.argmin(fit))
            if fallback is None or fit[j] < fallback[2]:
                fallback = (float(perf[j]), chunk[j], float(fit[j]))
        chosen, meets = (best, True) if best is not None else (fallback, False)
        if chosen is None:
            raise AdaptationError("empty schedule space")
        return IntraDecision(
            profile_name=profile.name,
            t_qual_k=t_qual_k,
            schedule=chosen[1],
            performance=chosen[0],
            fit=chosen[2],
            meets_target=meets,
            strategy="exhaustive",
        )

    def best_greedy(
        self, profile: WorkloadProfile, *, t_qual_k: float
    ) -> IntraDecision:
        """Greedy marginal-upgrade search (scales to many phases).

        Starts all phases at the DVS floor and repeatedly applies the
        single-phase frequency upgrade with the largest performance gain
        that keeps the schedule within the FIT target; each round's
        candidate upgrades are evaluated as one batch.
        """
        ramp = self.ramp_factory(t_qual_k)
        run = self.cache.run(profile, BASE_MICROARCH)
        grid = list(self.vf_curve.grid(self.grid_steps))
        levels = [0] * len(run.phases)

        def schedule_for(lv: list[int]) -> list[OperatingPoint]:
            return [grid[i] for i in lv]

        perf, fit = self._evaluate_schedule(profile, schedule_for(levels), ramp)
        feasible = fit <= self.fit_target + 1e-9
        improved = True
        while improved:
            improved = False
            upgradable = [
                i for i in range(len(levels)) if levels[i] + 1 < len(grid)
            ]
            if not upgradable:
                break
            trials = []
            for phase_idx in upgradable:
                trial = list(levels)
                trial[phase_idx] += 1
                trials.append(tuple(schedule_for(trial)))
            t_perf, t_fit = self._evaluate_schedules(profile, trials, ramp)
            ok = np.flatnonzero(
                (t_fit <= self.fit_target + 1e-9) & (t_perf > perf)
            )
            if ok.size:
                j = int(ok[np.argmax(t_perf[ok])])
                perf, fit = float(t_perf[j]), float(t_fit[j])
                levels[upgradable[j]] += 1
                feasible = True
                improved = True
        return IntraDecision(
            profile_name=profile.name,
            t_qual_k=t_qual_k,
            schedule=tuple(schedule_for(levels)),
            performance=perf,
            fit=fit,
            meets_target=feasible,
            strategy="greedy",
        )
