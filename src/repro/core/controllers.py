"""Feedback DRM controllers (the paper's stated future work).

The paper evaluates DRM with an oracle that knows each application's
behaviour in advance.  Its conclusion section promises "specific adaptive
control algorithms ... that offer the promise of close to optimal choice
of adaptive configurations".  This module implements the natural first
candidate: a proportional-integral DVS controller regulated on the
reliability bank of :class:`~repro.core.budget.ReliabilityBudget` — run
epoch by epoch over an application's phases with no foreknowledge.

The controller ablation bench compares it against the oracle: it should
approach oracle performance while keeping the lifetime-average FIT at or
below target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.config.dvs import OperatingPoint, VoltageFrequencyCurve, DEFAULT_VF_CURVE
from repro.constants import FIT_DEVICE_HOURS, HOURS_PER_YEAR
from repro.core.budget import ReliabilityBudget
from repro.core.ramp import RampModel
from repro.core.redundancy import RedundancyPlan
from repro.cpu.simulator import WorkloadRun
from repro.errors import AdaptationError
from repro.harness.platform import Platform


@dataclass(frozen=True)
class ControllerEpoch:
    """One control epoch's record.

    Attributes:
        op: the operating point used during the epoch.
        fit: the FIT rate observed during the epoch.
        performance: speedup vs the base processor for this epoch's phase.
        banked: the reliability bank after the epoch (FIT-hours).
    """

    op: OperatingPoint
    fit: float
    performance: float
    banked: float


@dataclass(frozen=True)
class ControllerTrace:
    """The full closed-loop history of one controller run."""

    epochs: tuple[ControllerEpoch, ...]

    @property
    def average_performance(self) -> float:
        return sum(e.performance for e in self.epochs) / len(self.epochs)

    @property
    def average_fit(self) -> float:
        return sum(e.fit for e in self.epochs) / len(self.epochs)

    @property
    def final_banked(self) -> float:
        return self.epochs[-1].banked


class FeedbackDVSController:
    """PI controller stepping the DVS frequency against the FIT error.

    Each epoch the controller runs one phase of the application at its
    current frequency, observes the FIT rate RAMP reports, and moves the
    frequency proportionally to the (target − observed) error plus an
    integral term fed by the reliability bank.  Anti-windup comes free:
    the frequency is clamped to the DVS range.

    Args:
        platform: the power/thermal platform.
        ramp: a qualified RAMP model (fixes T_qual and the target).
        vf_curve: DVS law (provides the actuator range).
        kp: proportional gain in GHz per (fraction of target) error.
        ki: integral gain in GHz per (fraction of an hour's budget) banked.
        epoch_hours: wall-clock length charged to the bank per epoch.
    """

    def __init__(
        self,
        platform: Platform,
        ramp: RampModel,
        vf_curve: VoltageFrequencyCurve = DEFAULT_VF_CURVE,
        kp: float = 0.8,
        ki: float = 0.15,
        epoch_hours: float = 1.0,
    ) -> None:
        if kp < 0.0 or ki < 0.0:
            raise AdaptationError("controller gains must be non-negative")
        if epoch_hours <= 0.0:
            raise AdaptationError("epoch length must be positive")
        self.platform = platform
        self.ramp = ramp
        self.vf_curve = vf_curve
        self.kp = kp
        self.ki = ki
        self.epoch_hours = epoch_hours

    def _clamp(self, frequency_hz: float) -> float:
        return min(self.vf_curve.f_max_hz, max(self.vf_curve.f_min_hz, frequency_hz))

    def run(
        self,
        run: WorkloadRun,
        n_epochs: int,
        start_frequency_hz: float | None = None,
    ) -> ControllerTrace:
        """Drive the application for ``n_epochs`` closed-loop epochs.

        Each epoch uses the whole multi-phase evaluation of the workload
        at the current operating point (phases repeat cyclically in real
        time; their time-weighted mix is what an epoch observes).

        Raises:
            AdaptationError: if ``n_epochs`` is not positive.
        """
        if n_epochs <= 0:
            raise AdaptationError("need at least one epoch")
        target = self.ramp.qualified.fit_target
        if target <= 0.0:
            raise AdaptationError("qualified FIT target must be positive")
        budget = ReliabilityBudget(fit_target=target)
        base_eval = self.platform.evaluate(run, self.vf_curve.nominal)
        f = self._clamp(
            start_frequency_hz
            if start_frequency_hz is not None
            else self.vf_curve.f_nominal_hz
        )
        epochs = []
        for _ in range(n_epochs):
            op = self.vf_curve.operating_point(f)
            evaluation = self.platform.evaluate(run, op)
            reliability = self.ramp.application_reliability(evaluation)
            fit = reliability.total_fit
            budget.record(fit, self.epoch_hours)
            perf = evaluation.ips / base_eval.ips
            epochs.append(
                ControllerEpoch(
                    op=op, fit=fit, performance=perf, banked=budget.banked
                )
            )
            # PI update: proportional on the rate error, integral on the
            # bank (both normalised to the target so gains are unitless-ish).
            error = (target - fit) / target
            bank_term = budget.banked / (target * max(budget.elapsed_hours, 1.0))
            f = self._clamp(
                f + (self.kp * error + self.ki * bank_term) * 1e9
            )
        return ControllerTrace(epochs=tuple(epochs))


@dataclass(frozen=True)
class WearDecision:
    """One rung of the wear-aware degradation ladder.

    Attributes:
        action: ``"run"`` (execute the epoch at :attr:`op`), ``"spare"``
            (swap in a cold spare for :attr:`structure`), ``"shed"``
            (power down half of :attr:`structure`), or ``"end_of_life"``
            (no rung left — retire the chip cleanly).
        op: the chosen operating point (``run`` only).
        structure: the structure acted on (``spare``/``shed`` only).
        reason: human-readable rationale, recorded in telemetry.
    """

    action: str
    op: OperatingPoint | None = None
    structure: str | None = None
    reason: str = ""


class WearAwareController(FeedbackDVSController):
    """Degradation-ladder controller regulated on *accrued damage*.

    Where :class:`FeedbackDVSController` regulates the instantaneous FIT
    rate against the qualification target, this controller reads the
    cumulative wear state the lifetime simulator maintains and paces the
    chip so its remaining lifetime stays above target:

    1. **derate** — pick the fastest DVS operating point whose predicted
       damage for the coming epoch fits the remaining linear damage
       allowance (``elapsed · target_rate − accrued``);
    2. **spare** — when a structure's most-worn cell passes
       :attr:`shed_threshold` (or outright fails), swap in a cold spare
       from the redundancy plan, resetting that structure's wear;
    3. **shed** — with no spare left, power down half of the structure's
       slices (:func:`repro.config.microarch.shed_structure`), removing
       their EM/TDDB wear at a performance cost;
    4. **end of life** — when a cell has consumed its lifetime and no
       rung remains, declare end-of-life *cleanly* instead of crashing.

    :meth:`decide` is pure: all state (wear, spares used, sheddable set,
    candidate operating points with predicted damage rates) comes in as
    arguments, so the simulator can checkpoint and resume around it
    bit-identically.

    Args:
        platform / ramp / vf_curve / kp / ki / epoch_hours: as for
            :class:`FeedbackDVSController` (the PI path is inherited and
            still available for rate-regulated epochs).
        lifetime_target_years: required service life.  Defaults to the
            SOFR life implied by the qualified FIT target
            (``1e9 / fit_target`` hours).
        fail_threshold: damage fraction at which a cell has consumed its
            lifetime (Miner's rule: 1.0).
        shed_threshold: damage fraction at which the controller starts
            swapping/shedding pre-emptively.
        redundancy_plan: cold-spare inventory (``None`` = no spares).
    """

    def __init__(
        self,
        platform: Platform,
        ramp: RampModel,
        vf_curve: VoltageFrequencyCurve = DEFAULT_VF_CURVE,
        kp: float = 0.8,
        ki: float = 0.15,
        epoch_hours: float = 1.0,
        *,
        lifetime_target_years: float | None = None,
        fail_threshold: float = 1.0,
        shed_threshold: float = 0.85,
        redundancy_plan: RedundancyPlan | None = None,
    ) -> None:
        super().__init__(platform, ramp, vf_curve, kp, ki, epoch_hours)
        if not 0.0 < shed_threshold < fail_threshold:
            raise AdaptationError(
                "need 0 < shed_threshold < fail_threshold, got "
                f"{shed_threshold} / {fail_threshold}"
            )
        if lifetime_target_years is None:
            target = ramp.qualified.fit_target
            if target <= 0.0:
                raise AdaptationError("qualified FIT target must be positive")
            lifetime_target_years = FIT_DEVICE_HOURS / target / HOURS_PER_YEAR
        if lifetime_target_years <= 0.0:
            raise AdaptationError("lifetime target must be positive")
        self.lifetime_target_years = lifetime_target_years
        self.fail_threshold = fail_threshold
        self.shed_threshold = shed_threshold
        self.redundancy_plan = redundancy_plan

    @property
    def lifetime_target_hours(self) -> float:
        return self.lifetime_target_years * HOURS_PER_YEAR

    @property
    def target_damage_rate(self) -> float:
        """Total damage fraction per hour that exactly spends the target
        lifetime — the linear allowance the pacing rung budgets against."""
        return 1.0 / self.lifetime_target_hours

    def decide(
        self,
        *,
        elapsed_hours: float,
        epoch_hours: float,
        wear_total: float,
        wear_by_structure: Mapping[str, float],
        candidates: Sequence[tuple[OperatingPoint, float]],
        spares_used: frozenset[str] = frozenset(),
        sheddable: frozenset[str] = frozenset(),
    ) -> WearDecision:
        """Choose the next rung given the current wear state.

        Args:
            elapsed_hours: simulated hours already accrued.
            epoch_hours: length of the epoch about to run.
            wear_total: summed damage over all (mechanism, structure)
                cells — the SOFR-analogue lifetime consumption.
            wear_by_structure: each structure's *most-worn cell* damage
                fraction (the threshold rungs trigger per cell, not on
                structure sums).
            candidates: ``(operating point, predicted total damage/hour)``
                pairs for the epoch's workload at the *current* degraded
                configuration.
            spares_used: structures whose cold spare is already consumed.
            sheddable: structures :func:`shed_structure` can still shrink.

        Raises:
            AdaptationError: on an empty candidate set or bad epoch.
        """
        if not candidates:
            raise AdaptationError("need at least one candidate operating point")
        if epoch_hours <= 0.0:
            raise AdaptationError("epoch length must be positive")

        worst_structure = max(wear_by_structure, key=wear_by_structure.__getitem__)
        worst = wear_by_structure[worst_structure]
        plan = self.redundancy_plan

        if worst >= self.fail_threshold:
            if plan is not None and plan.can_swap(worst_structure, spares_used):
                return WearDecision(
                    action="spare",
                    structure=worst_structure,
                    reason=f"{worst_structure} consumed {worst:.3f} of its "
                    "lifetime; swapping in its cold spare",
                )
            return WearDecision(
                action="end_of_life",
                structure=worst_structure,
                reason=f"{worst_structure} consumed {worst:.3f} of its "
                "lifetime with no spare left",
            )
        if worst >= self.shed_threshold:
            if plan is not None and plan.can_swap(worst_structure, spares_used):
                return WearDecision(
                    action="spare",
                    structure=worst_structure,
                    reason=f"{worst_structure} at {worst:.3f} wear; swapping "
                    "pre-emptively",
                )
            if worst_structure in sheddable:
                return WearDecision(
                    action="shed",
                    structure=worst_structure,
                    reason=f"{worst_structure} at {worst:.3f} wear with no "
                    "spare; powering down half its slices",
                )

        # Pacing rung: the fastest operating point whose predicted damage
        # fits the remaining linear allowance.
        allowance = (elapsed_hours + epoch_hours) * self.target_damage_rate
        allowed = allowance - wear_total
        ranked = sorted(candidates, key=lambda c: c[0].frequency_hz, reverse=True)
        for op, rate in ranked:
            if rate * epoch_hours <= allowed:
                return WearDecision(
                    action="run",
                    op=op,
                    reason=f"fastest point within allowance ({rate:.3e}/h)",
                )
        shed_options = [s for s in sheddable]
        if shed_options:
            # Overdrawn at every operating point: shed the most-worn
            # sheddable structure to cut the damage-rate floor.
            shed_options.sort(key=lambda s: wear_by_structure.get(s, 0.0), reverse=True)
            return WearDecision(
                action="shed",
                structure=shed_options[0],
                reason="no operating point fits the lifetime allowance; "
                f"shedding {shed_options[0]}",
            )
        op, rate = ranked[-1]
        return WearDecision(
            action="run",
            op=op,
            reason=f"overdrawn; running the slowest point ({rate:.3e}/h)",
        )
