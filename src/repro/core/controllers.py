"""Feedback DRM controllers (the paper's stated future work).

The paper evaluates DRM with an oracle that knows each application's
behaviour in advance.  Its conclusion section promises "specific adaptive
control algorithms ... that offer the promise of close to optimal choice
of adaptive configurations".  This module implements the natural first
candidate: a proportional-integral DVS controller regulated on the
reliability bank of :class:`~repro.core.budget.ReliabilityBudget` — run
epoch by epoch over an application's phases with no foreknowledge.

The controller ablation bench compares it against the oracle: it should
approach oracle performance while keeping the lifetime-average FIT at or
below target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dvs import OperatingPoint, VoltageFrequencyCurve, DEFAULT_VF_CURVE
from repro.core.budget import ReliabilityBudget
from repro.core.ramp import RampModel
from repro.cpu.simulator import WorkloadRun
from repro.errors import AdaptationError
from repro.harness.platform import Platform


@dataclass(frozen=True)
class ControllerEpoch:
    """One control epoch's record.

    Attributes:
        op: the operating point used during the epoch.
        fit: the FIT rate observed during the epoch.
        performance: speedup vs the base processor for this epoch's phase.
        banked: the reliability bank after the epoch (FIT-hours).
    """

    op: OperatingPoint
    fit: float
    performance: float
    banked: float


@dataclass(frozen=True)
class ControllerTrace:
    """The full closed-loop history of one controller run."""

    epochs: tuple[ControllerEpoch, ...]

    @property
    def average_performance(self) -> float:
        return sum(e.performance for e in self.epochs) / len(self.epochs)

    @property
    def average_fit(self) -> float:
        return sum(e.fit for e in self.epochs) / len(self.epochs)

    @property
    def final_banked(self) -> float:
        return self.epochs[-1].banked


class FeedbackDVSController:
    """PI controller stepping the DVS frequency against the FIT error.

    Each epoch the controller runs one phase of the application at its
    current frequency, observes the FIT rate RAMP reports, and moves the
    frequency proportionally to the (target − observed) error plus an
    integral term fed by the reliability bank.  Anti-windup comes free:
    the frequency is clamped to the DVS range.

    Args:
        platform: the power/thermal platform.
        ramp: a qualified RAMP model (fixes T_qual and the target).
        vf_curve: DVS law (provides the actuator range).
        kp: proportional gain in GHz per (fraction of target) error.
        ki: integral gain in GHz per (fraction of an hour's budget) banked.
        epoch_hours: wall-clock length charged to the bank per epoch.
    """

    def __init__(
        self,
        platform: Platform,
        ramp: RampModel,
        vf_curve: VoltageFrequencyCurve = DEFAULT_VF_CURVE,
        kp: float = 0.8,
        ki: float = 0.15,
        epoch_hours: float = 1.0,
    ) -> None:
        if kp < 0.0 or ki < 0.0:
            raise AdaptationError("controller gains must be non-negative")
        if epoch_hours <= 0.0:
            raise AdaptationError("epoch length must be positive")
        self.platform = platform
        self.ramp = ramp
        self.vf_curve = vf_curve
        self.kp = kp
        self.ki = ki
        self.epoch_hours = epoch_hours

    def _clamp(self, frequency_hz: float) -> float:
        return min(self.vf_curve.f_max_hz, max(self.vf_curve.f_min_hz, frequency_hz))

    def run(
        self,
        run: WorkloadRun,
        n_epochs: int,
        start_frequency_hz: float | None = None,
    ) -> ControllerTrace:
        """Drive the application for ``n_epochs`` closed-loop epochs.

        Each epoch uses the whole multi-phase evaluation of the workload
        at the current operating point (phases repeat cyclically in real
        time; their time-weighted mix is what an epoch observes).

        Raises:
            AdaptationError: if ``n_epochs`` is not positive.
        """
        if n_epochs <= 0:
            raise AdaptationError("need at least one epoch")
        target = self.ramp.qualified.fit_target
        if target <= 0.0:
            raise AdaptationError("qualified FIT target must be positive")
        budget = ReliabilityBudget(fit_target=target)
        base_eval = self.platform.evaluate(run, self.vf_curve.nominal)
        f = self._clamp(
            start_frequency_hz
            if start_frequency_hz is not None
            else self.vf_curve.f_nominal_hz
        )
        epochs = []
        for _ in range(n_epochs):
            op = self.vf_curve.operating_point(f)
            evaluation = self.platform.evaluate(run, op)
            reliability = self.ramp.application_reliability(evaluation)
            fit = reliability.total_fit
            budget.record(fit, self.epoch_hours)
            perf = evaluation.ips / base_eval.ips
            epochs.append(
                ControllerEpoch(
                    op=op, fit=fit, performance=perf, banked=budget.banked
                )
            )
            # PI update: proportional on the rate error, integral on the
            # bank (both normalised to the target so gains are unitless-ish).
            error = (target - fit) / target
            bank_term = budget.banked / (target * max(budget.elapsed_hours, 1.0))
            f = self._clamp(
                f + (self.kp * error + self.ki * bank_term) * 1e9
            )
        return ControllerTrace(epochs=tuple(epochs))
