"""RAMP and DRM: the paper's primary contribution.

- :mod:`repro.core.failure` — the four device-level wear-out models
  (electromigration, stress migration, TDDB, thermal cycling);
- :mod:`repro.core.fit` — FIT/MTTF algebra and the sum-of-failure-rates
  combination;
- :mod:`repro.core.qualification` — calibration of the proportionality
  constants to a target FIT at a chosen qualification point (the paper's
  cost proxy);
- :mod:`repro.core.ramp` — the RAMP engine: time-averaged, per-structure,
  per-mechanism FIT accounting for an application run;
- :mod:`repro.core.drm` — the dynamic-reliability-management oracle
  (Arch / DVS / ArchDVS adaptation searches);
- :mod:`repro.core.dtm` — the dynamic-thermal-management comparator;
- :mod:`repro.core.budget` — long-horizon reliability banking;
- :mod:`repro.core.sensors` — the hardware-implementation view of RAMP;
- :mod:`repro.core.controllers` — feedback DRM controllers (the paper's
  future work);
- :mod:`repro.core.intra` — per-phase (intra-application) DRM schedules
  (the paper's future work);
- :mod:`repro.core.online` — the deployable hardware monitoring loop
  (sensors + RAMP + reliability bank);
- :mod:`repro.core.scaling` — the technology-scaling reliability study
  (Section 1.2 made executable).
"""

from repro.core.failure import (
    ALL_MECHANISMS,
    Electromigration,
    FailureMechanism,
    StressConditions,
    StressMigration,
    ThermalCycling,
    TimeDependentDielectricBreakdown,
)
from repro.core.decision import Decision
from repro.core.fit import FitAccount, sofr_total_fit, time_averaged_fit
from repro.core.qualification import QualificationPoint, QualifiedReliabilityModel, calibrate
from repro.core.ramp import AppReliability, RampModel
from repro.core.drm import AdaptationMode, DRMDecision, DRMOracle
from repro.core.dtm import DTMDecision, DTMOracle

__all__ = [
    "ALL_MECHANISMS",
    "Electromigration",
    "FailureMechanism",
    "StressConditions",
    "StressMigration",
    "ThermalCycling",
    "TimeDependentDielectricBreakdown",
    "Decision",
    "FitAccount",
    "sofr_total_fit",
    "time_averaged_fit",
    "QualificationPoint",
    "QualifiedReliabilityModel",
    "calibrate",
    "AppReliability",
    "RampModel",
    "AdaptationMode",
    "DRMDecision",
    "DRMOracle",
    "DTMDecision",
    "DTMOracle",
]
