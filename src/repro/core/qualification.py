"""Reliability qualification: calibrating the cost proxy, Section 3.7.

A processor is qualified to a target failure rate (FIT_target ≈ 4000,
i.e. ~30-year MTTF).  The per-structure, per-mechanism proportionality
constants that achieve this depend on materials, design, and yield — the
cost of reliability qualification.  Since that cost function is not
public, the paper (and this reproduction) uses the *qualification
operating point* as a proxy: the constants are chosen so that sustained
operation at (T_qual, V_qual, f_qual, p_qual) produces exactly the
target FIT, with the budget split evenly across the four mechanisms and
across structures in proportion to area.

Higher T_qual ⇒ the processor survives harsher sustained conditions ⇒
more expensive qualification.  Sweeping T_qual is how the paper explores
the cost axis (Figure 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config.technology import STRUCTURES, TechnologyParameters, DEFAULT_TECHNOLOGY
from repro.constants import FIT_DEVICE_HOURS, TARGET_FIT, validate_temperature
from repro.core.failure import ALL_MECHANISMS, FailureMechanism, StressConditions
from repro.errors import QualificationError


@dataclass(frozen=True)
class QualificationPoint:
    """The worst-case operating point used to qualify the processor.

    Attributes:
        temperature_k: T_qual — the paper's cost proxy.
        voltage_v: V_qual (the base processor's nominal voltage).
        frequency_hz: f_qual (the base processor's nominal frequency).
        activity: p_qual per structure — the highest activity factor
            observed for that structure across the application suite on
            the timing simulator.
    """

    temperature_k: float
    voltage_v: float
    frequency_hz: float
    activity: dict[str, float]

    def __post_init__(self) -> None:
        validate_temperature(self.temperature_k, what="T_qual")
        if self.voltage_v <= 0.0 or self.frequency_hz <= 0.0:
            raise QualificationError("V_qual and f_qual must be positive")
        missing = {s.name for s in STRUCTURES} - set(self.activity)
        if missing:
            raise QualificationError(f"p_qual missing structures: {sorted(missing)}")

    def conditions_for(
        self, structure: str, technology: TechnologyParameters
    ) -> StressConditions:
        """The stress conditions one structure sees at the qual point."""
        return StressConditions(
            temperature_k=self.temperature_k,
            voltage_v=self.voltage_v,
            frequency_hz=self.frequency_hz,
            activity=self.activity[structure],
            v_nominal=technology.vdd_nominal_v,
            f_nominal=technology.frequency_nominal_hz,
        )


@dataclass(frozen=True)
class QualifiedReliabilityModel:
    """The outcome of qualification: calibrated constants and budgets.

    Attributes:
        point: the qualification point the constants were solved for.
        fit_target: the qualified total processor FIT.
        constants: MTTF proportionality constant (hours) keyed by
            (mechanism name, structure name).
        budgets: the FIT budget each (mechanism, structure) pair was
            given — useful for ablations of the even split.
        technology: the process the model is qualified for.
    """

    point: QualificationPoint
    fit_target: float
    constants: dict[tuple[str, str], float]
    budgets: dict[tuple[str, str], float]
    technology: TechnologyParameters

    def constant(self, mechanism: str, structure: str) -> float:
        """Look up one calibrated constant.

        Raises:
            QualificationError: for unknown keys.
        """
        try:
            return self.constants[(mechanism, structure)]
        except KeyError:
            raise QualificationError(
                f"no constant for mechanism {mechanism!r} / structure {structure!r}"
            ) from None


def calibrate(
    point: QualificationPoint,
    fit_target: float = TARGET_FIT,
    mechanisms: tuple[FailureMechanism, ...] = ALL_MECHANISMS,
    technology: TechnologyParameters = DEFAULT_TECHNOLOGY,
    mechanism_shares: dict[str, float] | None = None,
) -> QualifiedReliabilityModel:
    """Solve the proportionality constants for a qualification point.

    The target failure rate is split evenly across mechanisms (or by
    ``mechanism_shares``, for the budget-split ablation) and across
    structures proportionally to area.  Each constant is then the unique
    value that makes the structure's FIT under the qualification
    conditions equal its budget.

    Raises:
        QualificationError: if the target is non-positive, shares are
            invalid, or a mechanism cannot act at the qualification point
            (infinite relative MTTF means no finite constant exists).
    """
    if fit_target <= 0.0:
        raise QualificationError("FIT target must be positive")
    if mechanism_shares is None:
        mechanism_shares = {m.name: 1.0 / len(mechanisms) for m in mechanisms}
    if set(mechanism_shares) != {m.name for m in mechanisms}:
        raise QualificationError("mechanism_shares must cover exactly the mechanisms")
    share_total = sum(mechanism_shares.values())
    if abs(share_total - 1.0) > 1e-9 or any(v < 0 for v in mechanism_shares.values()):
        raise QualificationError("mechanism shares must be non-negative and sum to 1")

    total_area = sum(s.area_mm2 for s in STRUCTURES)
    constants: dict[tuple[str, str], float] = {}
    budgets: dict[tuple[str, str], float] = {}
    for mech in mechanisms:
        mech_budget = fit_target * mechanism_shares[mech.name]
        for spec in STRUCTURES:
            budget = mech_budget * spec.area_mm2 / total_area
            key = (mech.name, spec.name)
            budgets[key] = budget
            if budget <= 0.0:
                constants[key] = float("inf")
                continue
            conditions = point.conditions_for(spec.name, technology)
            rel = mech.relative_mttf(conditions)
            if math.isinf(rel):
                raise QualificationError(
                    f"{mech.name} cannot act on {spec.name!r} at the "
                    "qualification point; choose a stressier point"
                )
            target_mttf_hours = FIT_DEVICE_HOURS / budget
            constants[key] = target_mttf_hours / rel
    return QualifiedReliabilityModel(
        point=point,
        fit_target=fit_target,
        constants=constants,
        budgets=budgets,
        technology=technology,
    )
