"""Dynamic Reliability Management: the oracle adaptation study (Sec. 4-5).

The paper evaluates DRM's *potential* with an oracle that, for each
application and each qualification point T_qual, picks the adaptation
configuration with the best performance whose application FIT stays
within the qualified target.  Three adaptation spaces:

- **Arch** — the 18 microarchitectural configurations (window size,
  ALU/FPU count) at the base voltage and frequency.  Since the base
  machine is already the most aggressive configuration, Arch can only
  throttle: its relative performance is capped at 1.0.
- **DVS** — frequency 2.5-5.0 GHz with the Pentium-M-style V(f) law, on
  the most aggressive microarchitecture.
- **ArchDVS** — the cross product.

Every microarchitecture needs one cycle-level simulation per
application; DVS points are evaluated analytically from that simulation,
then run through the power/thermal fixed point and RAMP.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

import numpy as np

from repro.config.dvs import OperatingPoint, VoltageFrequencyCurve, DEFAULT_VF_CURVE
from repro.config.microarch import BASE_MICROARCH, MicroarchConfig, arch_adaptation_space
from repro.config.technology import STRUCTURE_NAMES
from repro.constants import TARGET_FIT
from repro.core.decision import Decision
from repro.core.qualification import QualificationPoint, calibrate
from repro.core.ramp import AppReliability, RampModel
from repro.errors import AdaptationError
from repro.harness.platform import Platform, PlatformEvaluation
from repro.harness.sweep import SimulationCache
from repro.workloads.characteristics import WorkloadProfile
from repro.workloads.suite import WORKLOAD_SUITE


class AdaptationMode(enum.Enum):
    """Which adaptation space the DRM oracle searches."""

    ARCH = "arch"
    DVS = "dvs"
    ARCHDVS = "archdvs"


@dataclass(frozen=True, kw_only=True)
class DRMDecision(Decision):
    """The oracle's choice for one (application, T_qual, mode).

    Extends the shared :class:`~repro.core.decision.Decision` record
    (profile_name / performance / fit / meets_target) with the DRM
    specifics:

    Attributes:
        t_qual_k: the qualification temperature (cost proxy).
        mode: the adaptation space searched.
        config: chosen microarchitecture.
        op: chosen operating point.
    """

    t_qual_k: float
    mode: AdaptationMode
    config: MicroarchConfig
    op: OperatingPoint


class DRMOracle:
    """Oracle DRM search over the adaptation spaces.

    Args:
        platform: the power/thermal platform (a default one if omitted).
        cache: cycle-level simulation cache (shared across benches).
        vf_curve: DVS law.
        fit_target: the qualified processor failure rate (~4000 FIT).
        dvs_steps: DVS grid resolution.
        suite: applications used to derive p_qual (per-structure worst
            activity), per the paper's methodology.
    """

    def __init__(
        self,
        platform: Platform | None = None,
        cache: SimulationCache | None = None,
        vf_curve: VoltageFrequencyCurve = DEFAULT_VF_CURVE,
        fit_target: float = TARGET_FIT,
        dvs_steps: int = 26,
        suite: tuple[WorkloadProfile, ...] = WORKLOAD_SUITE,
    ) -> None:
        self.platform = platform or Platform(vf_curve=vf_curve)
        self.cache = cache or SimulationCache()
        self.vf_curve = vf_curve
        self.fit_target = fit_target
        self.dvs_steps = dvs_steps
        self.suite = suite
        self._p_qual: dict[str, float] | None = None
        self._ramp_models: dict[float, RampModel] = {}
        self._base_evals: dict[str, PlatformEvaluation] = {}

    # ---- qualification ------------------------------------------------

    def p_qual(self) -> dict[str, float]:
        """Per-structure worst-case activity across the suite.

        The paper fixes p_qual to the highest activity factor obtained
        across the application suite from the timing simulator; we keep
        it per structure so electromigration qualification is worst case
        for every structure individually.
        """
        if self._p_qual is None:
            worst = {name: 0.0 for name in STRUCTURE_NAMES}
            for profile in self.suite:
                run = self.cache.run(profile, BASE_MICROARCH)
                for pr in run.phases:
                    for name, a in pr.stats.activity.items():
                        worst[name] = max(worst[name], a)
            self._p_qual = worst
        return self._p_qual

    def qualification_point(self, t_qual_k: float) -> QualificationPoint:
        """Build the qualification point for a given T_qual."""
        tech = self.platform.technology
        return QualificationPoint(
            temperature_k=t_qual_k,
            voltage_v=tech.vdd_nominal_v,
            frequency_hz=tech.frequency_nominal_hz,
            activity=self.p_qual(),
        )

    def ramp_for(self, t_qual_k: float) -> RampModel:
        """The RAMP model qualified at ``t_qual_k`` (memoised)."""
        model = self._ramp_models.get(t_qual_k)
        if model is None:
            qualified = calibrate(
                self.qualification_point(t_qual_k),
                fit_target=self.fit_target,
                technology=self.platform.technology,
            )
            model = RampModel(qualified)
            self._ramp_models[t_qual_k] = model
        return model

    # ---- evaluation ----------------------------------------------------

    def base_evaluation(self, profile: WorkloadProfile) -> PlatformEvaluation:
        """The base non-adaptive processor at nominal V/f (memoised)."""
        cached = self._base_evals.get(profile.name)
        if cached is None:
            run = self.cache.run(profile, BASE_MICROARCH)
            cached = self.platform.evaluate(run, self.vf_curve.nominal)
            self._base_evals[profile.name] = cached
        return cached

    def evaluate_candidate(
        self,
        profile: WorkloadProfile,
        config: MicroarchConfig,
        op: OperatingPoint,
        ramp: RampModel,
    ) -> tuple[float, AppReliability, PlatformEvaluation]:
        """(performance, reliability, evaluation) of one candidate."""
        run = self.cache.run(profile, config)
        evaluation = self.platform.evaluate(run, op)
        reliability = ramp.application_reliability(evaluation)
        performance = evaluation.ips / self.base_evaluation(profile).ips
        return performance, reliability, evaluation

    def candidates(self, mode: AdaptationMode) -> list[tuple[MicroarchConfig, OperatingPoint]]:
        """The adaptation space for a mode."""
        nominal = self.vf_curve.nominal
        grid = self.vf_curve.grid(self.dvs_steps)
        if mode is AdaptationMode.ARCH:
            return [(c, nominal) for c in arch_adaptation_space()]
        if mode is AdaptationMode.DVS:
            return [(BASE_MICROARCH, op) for op in grid]
        if mode is AdaptationMode.ARCHDVS:
            return [
                (c, op) for c in arch_adaptation_space() for op in grid
            ]
        raise AdaptationError(f"unknown adaptation mode {mode!r}")

    # ---- the oracle -----------------------------------------------------

    def best(
        self,
        profile: WorkloadProfile,
        *,
        t_qual_k: float,
        mode: AdaptationMode = AdaptationMode.ARCHDVS,
    ) -> DRMDecision:
        """Best-performing candidate within the FIT target.

        Keyword-only: ``best(profile, t_qual_k=370.0, mode=...)``.
        ``mode`` defaults to the full ArchDVS space.

        The whole adaptation space is evaluated through
        :meth:`~repro.harness.platform.Platform.evaluate_batch` — one
        batched grid per microarchitecture (DVS points share a
        simulation) — and the winner is selected with first-occurrence
        argmax semantics, matching the original per-candidate loop.

        If no candidate meets the target (a drastically under-designed
        processor), the oracle throttles as far as the adaptation space
        allows: it returns the best-performing candidate at the minimum
        achievable FIT, flagged ``meets_target=False``.
        """
        ramp = self.ramp_for(t_qual_k)
        cands = self.candidates(mode)
        if not cands:
            raise AdaptationError("adaptation space is empty")
        base_ips = self.base_evaluation(profile).ips
        perf_parts = []
        fit_parts = []
        # The candidate list is config-major, so each groupby run is one
        # microarchitecture's full DVS sub-grid: one simulation, one
        # batched evaluation.
        for config, group in itertools.groupby(cands, key=lambda ca: ca[0]):
            ops = [op for _, op in group]
            run = self.cache.run(profile, config)
            batch = self.platform.evaluate_batch(run, ops)
            perf_parts.append(batch.ips / base_ips)
            fit_parts.append(ramp.application_fit_batch(batch))
        perf = np.concatenate(perf_parts)
        fit = np.concatenate(fit_parts)
        meets = fit <= self.fit_target + 1e-9
        if np.any(meets):
            chosen = np.flatnonzero(meets)
        else:
            floor = float(fit.min()) * (1.0 + 1e-9)
            chosen = np.flatnonzero(fit <= floor)
        pick = int(chosen[np.argmax(perf[chosen])])
        config, op = cands[pick]
        return DRMDecision(
            profile_name=profile.name,
            t_qual_k=t_qual_k,
            mode=mode,
            config=config,
            op=op,
            performance=float(perf[pick]),
            fit=float(fit[pick]),
            meets_target=bool(meets[pick]),
        )
