"""The RAMP engine: application-level FIT accounting (Sections 3.5-3.6).

Given a qualified reliability model and a platform evaluation (the
per-interval temperature/voltage/frequency/activity samples of one
application run), RAMP computes:

- the **instantaneous FIT** of every structure under every mechanism per
  interval (EM, SM, TDDB);
- the **time-averaged FIT** across intervals (the paper's extension of
  the SOFR averaging to time);
- the **thermal-cycling FIT** from each structure's run-average
  temperature (cycle depth is a whole-run property);
- the **SOFR total** — the application's FIT value.

Powered-down structure area (DRM's Arch adaptation) removes its share of
the EM and TDDB FIT: a gated slice has no current flow and no supply
voltage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.config.technology import STRUCTURE_NAMES
from repro.constants import FIT_DEVICE_HOURS
from repro.core.failure import ALL_MECHANISMS, FailureMechanism, StressConditions
from repro.core.fit import FitAccount, time_averaged_fit
from repro.core.qualification import QualifiedReliabilityModel
from repro.errors import ReliabilityError
from repro.harness.platform import Interval, PlatformEvaluation

if TYPE_CHECKING:  # pragma: no cover - the kernel package imports nothing here
    from repro.kernels.batch import BatchEvaluation


@dataclass(frozen=True)
class AppReliability:
    """The reliability outcome of one application run.

    Attributes:
        account: per-(mechanism, structure) time-averaged FIT.
        fit_target: the qualification target it is judged against.
    """

    account: FitAccount
    fit_target: float

    @property
    def total_fit(self) -> float:
        return self.account.total

    @property
    def meets_target(self) -> bool:
        """Whether the run stays within the qualified failure rate."""
        return self.total_fit <= self.fit_target + 1e-9

    @property
    def mttf_years(self) -> float:
        return self.account.mttf_years()

    @property
    def margin(self) -> float:
        """Unused reliability budget as a fraction of the target
        (negative when the target is violated).

        Raises:
            ReliabilityError: if the recorded target is not positive.
        """
        target = self.fit_target
        if target <= 0.0:
            raise ReliabilityError("fit_target must be positive")
        return (target - self.total_fit) / target


class RampModel:
    """Evaluates FIT for intervals and whole application runs.

    Args:
        qualified: the calibrated constants from
            :func:`repro.core.qualification.calibrate`.
        mechanisms: failure mechanisms (must match the calibration).
    """

    def __init__(
        self,
        qualified: QualifiedReliabilityModel,
        mechanisms: tuple[FailureMechanism, ...] = ALL_MECHANISMS,
    ) -> None:
        calibrated = {m for m, _ in qualified.constants}
        if {m.name for m in mechanisms} != calibrated:
            raise ReliabilityError(
                "mechanism set does not match the qualified model "
                f"({sorted(calibrated)})"
            )
        self.qualified = qualified
        self.mechanisms = mechanisms
        self._cycling = [m for m in mechanisms if m.name == "TC"]
        self._instantaneous = [m for m in mechanisms if m.name != "TC"]

    # ------------------------------------------------------------------

    def _structure_fit(
        self,
        mech: FailureMechanism,
        structure: str,
        conditions: StressConditions,
        powered_fraction: float,
    ) -> float:
        constant = self.qualified.constant(mech.name, structure)
        if math.isinf(constant):
            return 0.0
        rel_fit = mech.relative_fit(conditions)
        fit = FIT_DEVICE_HOURS * rel_fit / constant
        if mech.scales_with_powered_area:
            fit *= powered_fraction
        return fit

    def interval_fit(self, interval: Interval) -> FitAccount:
        """Instantaneous FIT for one interval (EM, SM, TDDB only).

        Thermal cycling is deliberately absent: its stress (cycle depth)
        is a property of the whole run, not of an instant.
        """
        tech = self.qualified.technology
        entries: dict[tuple[str, str], float] = {}
        for mech in self._instantaneous:
            for structure, temp in interval.temperatures.items():
                conditions = StressConditions(
                    temperature_k=temp,
                    voltage_v=interval.op.voltage_v,
                    frequency_hz=interval.op.frequency_hz,
                    activity=interval.activity[structure],
                    v_nominal=tech.vdd_nominal_v,
                    f_nominal=tech.frequency_nominal_hz,
                )
                entries[(mech.name, structure)] = self._structure_fit(
                    mech,
                    structure,
                    conditions,
                    interval.config.powered_fraction(structure),
                )
        return FitAccount(entries)

    def application_reliability(self, evaluation: PlatformEvaluation) -> AppReliability:
        """Time-averaged FIT for an application run (Section 3.6)."""
        if not evaluation.intervals:
            raise ReliabilityError("evaluation has no intervals")
        instantaneous = FitAccount.weighted_average(
            [(self.interval_fit(iv), iv.weight) for iv in evaluation.intervals]
        )
        entries = dict(instantaneous.entries)
        # Thermal cycling from run-average temperatures.
        tech = self.qualified.technology
        avg_temps = evaluation.avg_temperature_by_structure
        some_interval = evaluation.intervals[0]
        for mech in self._cycling:
            for structure, avg_t in avg_temps.items():
                conditions = StressConditions(
                    temperature_k=avg_t,
                    voltage_v=some_interval.op.voltage_v,
                    frequency_hz=some_interval.op.frequency_hz,
                    activity=some_interval.activity[structure],
                    v_nominal=tech.vdd_nominal_v,
                    f_nominal=tech.frequency_nominal_hz,
                )
                entries[(mech.name, structure)] = self._structure_fit(
                    mech,
                    structure,
                    conditions,
                    some_interval.config.powered_fraction(structure),
                )
        return AppReliability(
            account=FitAccount(entries), fit_target=self.qualified.fit_target
        )

    # ------------------------------------------------------------------

    def _constants_array(self, mech: FailureMechanism) -> np.ndarray:
        """Calibrated proportionality constants in canonical structure
        order (``inf`` entries make the corresponding FIT vanish, exactly
        as the scalar path's early return does)."""
        return np.array(
            [self.qualified.constant(mech.name, n) for n in STRUCTURE_NAMES]
        )

    def application_fit_fields_batch(self, batch: "BatchEvaluation") -> np.ndarray:
        """Per-(mechanism, structure) time-averaged FIT for a whole batch.

        The tensor analogue of :meth:`application_reliability`, kept at
        full resolution: EM, SM and TDDB are evaluated per ``(candidate,
        interval, structure)`` cell and time-averaged per candidate;
        thermal cycling is evaluated from each candidate's run-average
        structure temperatures.  Returns shape ``(n_candidates,
        n_mechanisms, n_structures)`` with mechanisms in
        :attr:`mechanisms` order and structures in canonical
        ``STRUCTURE_NAMES`` order — the fields the cumulative-damage
        simulator (:mod:`repro.lifetime`) integrates per epoch.
        """
        tech = self.qualified.technology
        v_nom = tech.vdd_nominal_v
        f_nom = tech.frequency_nominal_hz
        pf = np.array(
            [batch.run.config.powered_fraction(n) for n in STRUCTURE_NAMES]
        )
        volt = batch.voltage_v[:, :, None]
        freq = batch.frequency_hz[:, :, None]
        avg_t = batch.avg_temperature_by_structure_k

        fields = np.zeros(
            (batch.n_candidates, len(self.mechanisms), len(STRUCTURE_NAMES))
        )
        for m_index, mech in enumerate(self.mechanisms):
            if mech.name == "TC":
                # Thermal cycling from run-average temperatures, with the
                # first interval's operating conditions (mirroring the
                # scalar path).
                rel = mech.relative_fit_batch(
                    temperature_k=avg_t,
                    voltage_v=batch.voltage_v[:, :1],
                    frequency_hz=batch.frequency_hz[:, :1],
                    activity=batch.activity[:, 0, :],
                    v_nominal=v_nom,
                    f_nominal=f_nom,
                )
                fit = FIT_DEVICE_HOURS * rel / self._constants_array(mech)
                if mech.scales_with_powered_area:
                    fit = fit * pf
                fields[:, m_index, :] = fit
                continue
            rel = mech.relative_fit_batch(
                temperature_k=batch.temperatures_k,
                voltage_v=volt,
                frequency_hz=freq,
                activity=batch.activity,
                v_nominal=v_nom,
                f_nominal=f_nom,
            )
            fit = FIT_DEVICE_HOURS * rel / self._constants_array(mech)
            if mech.scales_with_powered_area:
                fit = fit * pf
            fields[:, m_index, :] = time_averaged_fit(fit, batch.weights)
        return fields

    def application_fit_batch(self, batch: "BatchEvaluation") -> np.ndarray:
        """Time-averaged SOFR FIT for every candidate of a batch at once.

        The per-candidate total of :meth:`application_fit_fields_batch`,
        summed in mechanism order so the result stays bit-identical to
        the pre-refactor accumulation.  Shape ``(n_candidates,)``.
        """
        fields = self.application_fit_fields_batch(batch)
        total = np.zeros(batch.n_candidates)
        for m_index in range(fields.shape[1]):
            total += fields[:, m_index, :].sum(axis=1)
        return total

    def worst_instant_fit(self, evaluation: PlatformEvaluation) -> float:
        """The highest instantaneous (EM+SM+TDDB) FIT in any interval.

        Used by the time-averaging ablation: worst-case qualification
        effectively budgets to this value, while the paper's insight is
        that the *average* is what determines lifetime consumption.
        """
        return max(self.interval_fit(iv).total for iv in evaluation.intervals)
