"""FIT accounting and the sum-of-failure-rates (SOFR) model, Section 3.5.

Industry combines per-component, per-mechanism failure rates under two
assumptions: (1) the processor is a series failure system (the first
failing structure kills the chip); (2) each mechanism has a constant
failure rate (exponential lifetimes).  Then the processor failure rate
is the plain sum of the per-structure per-mechanism rates, and
MTTF = 1/λ_total.  The paper's extension — also used here — is averaging
instantaneous FIT values over time with the same underlying assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import fit_to_mttf_hours, fit_to_mttf_years
from repro.errors import ReliabilityError


@dataclass(frozen=True)
class FitAccount:
    """A per-(structure, mechanism) FIT ledger.

    Attributes:
        entries: FIT value keyed by (mechanism name, structure name).
    """

    entries: dict[tuple[str, str], float]

    def __post_init__(self) -> None:
        bad = {k: v for k, v in self.entries.items() if v < 0.0}
        if bad:
            raise ReliabilityError(f"negative FIT entries: {bad}")

    @property
    def total(self) -> float:
        """The SOFR processor FIT: sum over structures and mechanisms."""
        return sum(self.entries.values())

    def by_mechanism(self) -> dict[str, float]:
        """FIT aggregated per failure mechanism."""
        out: dict[str, float] = {}
        for (mech, _), fit in self.entries.items():
            out[mech] = out.get(mech, 0.0) + fit
        return out

    def by_structure(self) -> dict[str, float]:
        """FIT aggregated per structure."""
        out: dict[str, float] = {}
        for (_, struct), fit in self.entries.items():
            out[struct] = out.get(struct, 0.0) + fit
        return out

    def dominant_mechanism(self) -> str:
        """The mechanism contributing the most FIT."""
        per_mech = self.by_mechanism()
        if not per_mech:
            raise ReliabilityError("empty FIT account")
        return max(per_mech, key=per_mech.get)

    def mttf_hours(self) -> float:
        """Processor MTTF implied by the SOFR total."""
        return fit_to_mttf_hours(self.total)

    def mttf_years(self) -> float:
        """Processor MTTF in years."""
        return fit_to_mttf_years(self.total)

    @staticmethod
    def weighted_average(accounts: list[tuple["FitAccount", float]]) -> "FitAccount":
        """Time-weighted average of FIT accounts (Section 3.6).

        Raises:
            ReliabilityError: if empty, weights are non-positive, or the
                accounts do not share the same key set.
        """
        if not accounts:
            raise ReliabilityError("nothing to average")
        total_w = sum(w for _, w in accounts)
        if total_w <= 0.0:
            raise ReliabilityError("weights must sum to a positive value")
        keys = set(accounts[0][0].entries)
        merged = {k: 0.0 for k in keys}
        for account, weight in accounts:
            if set(account.entries) != keys:
                raise ReliabilityError("FIT accounts have mismatched keys")
            for k, fit in account.entries.items():
                merged[k] += fit * (weight / total_w)
        return FitAccount(merged)


def time_averaged_fit(
    fit_cps: np.ndarray, weights_cp: np.ndarray
) -> np.ndarray:
    """Tensor form of :meth:`FitAccount.weighted_average` for one mechanism.

    Args:
        fit_cps: instantaneous FIT, ``(candidates, phases, structures)``.
        weights_cp: interval time weights, ``(candidates, phases)``.

    Returns:
        Time-averaged FIT per candidate and structure,
        ``(candidates, structures)``.

    Raises:
        ReliabilityError: if any candidate's weights do not sum to a
            positive value.
    """
    total_w = weights_cp.sum(axis=1)
    if not np.all(total_w > 0.0):
        raise ReliabilityError("weights must sum to a positive value")
    w_norm = weights_cp / total_w[:, None]
    return (fit_cps * w_norm[:, :, None]).sum(axis=1)


def sofr_total_fit(fits: list[float]) -> float:
    """Sum-of-failure-rates combination of independent FIT values.

    Raises:
        ReliabilityError: on negative inputs.
    """
    if any(f < 0.0 for f in fits):
        raise ReliabilityError("FIT values must be non-negative")
    return float(sum(fits))
