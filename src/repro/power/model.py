"""Combined power model: dynamic + leakage, with thermal feedback.

Leakage depends on temperature while temperature depends on total power,
so the two are solved as a fixed point: the
:class:`~repro.harness.platform.Platform` iterates power -> temperature ->
leakage until the total converges.  This module provides the per-iteration
evaluation plus a standalone evaluation at uniform temperature for tests
and quick estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dvs import OperatingPoint
from repro.config.microarch import MicroarchConfig
from repro.config.technology import STRUCTURE_NAMES, TechnologyParameters, DEFAULT_TECHNOLOGY
from repro.power.dynamic import DynamicPowerModel
from repro.power.leakage import LeakagePowerModel


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-structure power at one evaluation point.

    Attributes:
        dynamic: per-structure dynamic power (W).
        leakage: per-structure leakage power (W).
    """

    dynamic: dict[str, float]
    leakage: dict[str, float]

    def structure_total(self, name: str) -> float:
        """Total (dynamic + leakage) power of one structure."""
        return self.dynamic[name] + self.leakage[name]

    def totals(self) -> dict[str, float]:
        """Per-structure total power."""
        return {n: self.structure_total(n) for n in self.dynamic}

    @property
    def total_w(self) -> float:
        """Whole-core power in watts."""
        return sum(self.dynamic.values()) + sum(self.leakage.values())

    @property
    def total_dynamic_w(self) -> float:
        return sum(self.dynamic.values())

    @property
    def total_leakage_w(self) -> float:
        return sum(self.leakage.values())


class PowerModel:
    """Evaluates total per-structure power for one accounting interval.

    Args:
        technology: process parameters (defaults to the paper's 65 nm).
        dynamic_scale: global multiplier on dynamic power density (used by
            the technology-scaling study; 1.0 = the calibrated 65 nm core).
    """

    def __init__(
        self,
        technology: TechnologyParameters = DEFAULT_TECHNOLOGY,
        dynamic_scale: float = 1.0,
    ) -> None:
        self.technology = technology
        self.dynamic = DynamicPowerModel(technology, scale=dynamic_scale)
        self.leakage = LeakagePowerModel(technology)

    def evaluate(
        self,
        activity: dict[str, float],
        config: MicroarchConfig,
        op: OperatingPoint,
        temperatures: dict[str, float],
    ) -> PowerBreakdown:
        """Power breakdown given per-structure temperatures."""
        return PowerBreakdown(
            dynamic=self.dynamic.structure_power(activity, config, op),
            leakage=self.leakage.structure_power(temperatures, config, op),
        )

    def evaluate_uniform(
        self,
        activity: dict[str, float],
        config: MicroarchConfig,
        op: OperatingPoint,
        temperature_k: float,
    ) -> PowerBreakdown:
        """Power breakdown assuming one uniform die temperature."""
        temps = {name: temperature_k for name in STRUCTURE_NAMES}
        return self.evaluate(activity, config, op, temps)
