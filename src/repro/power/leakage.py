"""Leakage power with exponential temperature dependence.

The paper models a leakage power density of 0.5 W/mm^2 at 383 K for the
65 nm process (from industry data, assuming aggressive leakage-control
techniques) and applies the technique of Heo et al. for its temperature
dependence:

    P_leak(T) = P_leak(T_ref) * exp(k * (T - T_ref)),   k = 0.017 for 65 nm

Leakage also scales with supply voltage (sub-threshold leakage is roughly
linear in V over a DVS range); we include that linear factor so DVS
lowers leakage as well as dynamic power.  Powered-down structure slices
have no supply voltage and therefore no leakage.
"""

from __future__ import annotations

import numpy as np

from repro.config.dvs import OperatingPoint
from repro.config.microarch import MicroarchConfig
from repro.config.technology import STRUCTURES, TechnologyParameters
from repro.constants import validate_temperature


class LeakagePowerModel:
    """Computes per-structure leakage power from temperature.

    Args:
        technology: supplies the leakage density, reference temperature,
            and the exponential temperature coefficient.
    """

    def __init__(self, technology: TechnologyParameters) -> None:
        self.technology = technology

    def density_at(self, temperature_k: float) -> float:
        """Leakage power density (W/mm^2) at ``temperature_k``."""
        validate_temperature(temperature_k, what="leakage temperature")
        tech = self.technology
        return tech.leakage_density_w_per_mm2 * float(np.exp(
            tech.leakage_temp_coefficient_per_k
            * (temperature_k - tech.leakage_reference_temp_k)
        ))

    def structure_power(
        self,
        temperatures: dict[str, float],
        config: MicroarchConfig,
        op: OperatingPoint,
    ) -> dict[str, float]:
        """Leakage power per structure in watts.

        Args:
            temperatures: per-structure temperature in kelvin.
            config: microarchitecture (powered-down slices do not leak).
            op: operating point (leakage scales ~linearly with V).
        """
        v_ratio = op.voltage_v / self.technology.vdd_nominal_v
        powers = {}
        for spec in STRUCTURES:
            t = temperatures[spec.name]
            powers[spec.name] = (
                self.density_at(t)
                * spec.area_mm2
                * config.powered_fraction(spec.name)
                * v_ratio
            )
        return powers
