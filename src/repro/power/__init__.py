"""Architectural power model (the Wattch substitute).

Per-structure dynamic power driven by the simulator's activity factors,
with Wattch-style aggressive clock gating (10% of maximum power charged
to a structure when it is not accessed), plus area-based leakage power
with the exponential temperature dependence of Heo et al. — the same
modelling choices as Section 6.3 of the paper.
"""

from repro.power.dynamic import DynamicPowerModel, CLOCK_GATE_FLOOR
from repro.power.leakage import LeakagePowerModel
from repro.power.model import PowerModel, PowerBreakdown

__all__ = [
    "DynamicPowerModel",
    "CLOCK_GATE_FLOOR",
    "LeakagePowerModel",
    "PowerModel",
    "PowerBreakdown",
]
