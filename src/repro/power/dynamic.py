"""Per-structure dynamic power.

Wattch-style model: each structure has a calibrated maximum dynamic power
at the nominal operating point; its actual dynamic power is

    P_dyn = P_max * (floor + (1 - floor) * activity)
                  * (V / V_nom)^2 * (f / f_nom) * powered_fraction

- ``floor`` is the clock-gating residue: the paper charges 10% of maximum
  power to a component in cycles it is not accessed.
- The V^2·f factor is the standard CMOS dynamic-energy scaling; combined
  with the linear V(f) DVS curve it yields the near-cubic
  power-vs-frequency relationship the paper leans on.
- ``powered_fraction`` accounts for DRM's microarchitectural adaptation:
  powered-down window entries and functional units (with their selection
  logic, result-bus slices, wake-up and register ports) draw nothing.
"""

from __future__ import annotations

from repro.config.dvs import OperatingPoint
from repro.config.microarch import MicroarchConfig
from repro.config.technology import STRUCTURES, TechnologyParameters
from repro.errors import ConfigurationError

#: Fraction of maximum power charged to an idle (clock-gated) structure.
CLOCK_GATE_FLOOR = 0.10


class DynamicPowerModel:
    """Computes per-structure dynamic power from activity factors.

    Args:
        technology: supplies the nominal voltage and frequency.
        gate_floor: idle-power fraction under clock gating (default 10%).
        scale: global multiplier on the calibrated peak powers — the
            power-density knob used by the technology-scaling study.
    """

    def __init__(
        self,
        technology: TechnologyParameters,
        gate_floor: float = CLOCK_GATE_FLOOR,
        scale: float = 1.0,
    ) -> None:
        if not 0.0 <= gate_floor <= 1.0:
            raise ConfigurationError("gate floor must be in [0, 1]")
        if scale <= 0.0:
            raise ConfigurationError("power scale must be positive")
        self.technology = technology
        self.gate_floor = gate_floor
        self.scale = scale

    def structure_power(
        self,
        activity: dict[str, float],
        config: MicroarchConfig,
        op: OperatingPoint,
    ) -> dict[str, float]:
        """Dynamic power per structure in watts.

        Args:
            activity: per-structure activity factors in [0, 1].
            config: microarchitecture (for powered-down fractions).
            op: the voltage/frequency operating point.

        Raises:
            ConfigurationError: if an activity factor is missing or out of
                range.
        """
        v_ratio = op.voltage_v / self.technology.vdd_nominal_v
        f_ratio = op.frequency_hz / self.technology.frequency_nominal_hz
        scale = v_ratio * v_ratio * f_ratio
        powers = {}
        for spec in STRUCTURES:
            try:
                a = activity[spec.name]
            except KeyError:
                raise ConfigurationError(
                    f"activity missing structure {spec.name!r}"
                ) from None
            if not 0.0 <= a <= 1.0:
                raise ConfigurationError(
                    f"activity[{spec.name!r}] = {a} outside [0, 1]"
                )
            gated = self.gate_floor + (1.0 - self.gate_floor) * a
            powers[spec.name] = (
                spec.peak_dynamic_w
                * self.scale
                * gated
                * scale
                * config.powered_fraction(spec.name)
            )
        return powers
