"""The evaluable platform: CPU stats -> power -> temperature -> intervals.

A :class:`Platform` takes a cycle-level :class:`~repro.cpu.simulator.WorkloadRun`
(simulated once, at the base clock) and evaluates what happens when that
workload executes at an arbitrary DVS operating point:

1. per-phase performance is rescaled with the analytical
   :class:`~repro.cpu.analytical.FrequencyScalingModel` (off-chip latency
   is fixed in nanoseconds);
2. per-phase activity factors are rescaled by the IPC ratio (activity is
   events per cycle, so it tracks IPC);
3. power and temperature are solved as a fixed point per phase (leakage
   depends on temperature and vice versa), with the heat sink initialised
   by the paper's two-pass methodology;
4. the result is a list of :class:`Interval` records — exactly the
   (T, V, f, p) samples RAMP's time-averaged FIT accounting consumes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Sequence

from repro.config.dvs import OperatingPoint, VoltageFrequencyCurve, DEFAULT_VF_CURVE
from repro.config.microarch import MicroarchConfig
from repro.config.technology import (
    STRUCTURE_NAMES,
    TechnologyParameters,
    DEFAULT_TECHNOLOGY,
)
from repro.cpu.analytical import FrequencyScalingModel
from repro.cpu.simulator import WorkloadRun
from repro.errors import ThermalError
from repro.kernels.batch import (
    BatchEvaluation,
    BatchKernel,
    Candidate,
    MAX_FIXED_POINT_ITERS,
    TEMP_TOLERANCE_K,
)
from repro.power.model import PowerBreakdown, PowerModel
from repro.thermal.floorplan import build_default_floorplan
from repro.thermal.heatsink import TwoPassThermalModel
from repro.thermal.rc_network import (
    DEFAULT_THERMAL_PARAMETERS,
    ThermalParameters,
    ThermalRCNetwork,
)

#: Convergence tolerance and iteration budget for the scalar reference
#: path — shared with the batched kernel so the two never drift.
_TEMP_TOLERANCE_K = TEMP_TOLERANCE_K
_MAX_FIXED_POINT_ITERS = MAX_FIXED_POINT_ITERS


@dataclass(frozen=True)
class Interval:
    """One RAMP accounting interval (the analogue of the paper's 1 s samples).

    Attributes:
        weight: fraction of run time spent in this interval.
        temperatures: per-structure temperature (K).
        activity: per-structure activity factor at this operating point.
        power: the power breakdown that produced the temperatures.
        op: voltage/frequency operating point.
        config: microarchitectural configuration.
    """

    weight: float
    temperatures: dict[str, float]
    activity: dict[str, float]
    power: PowerBreakdown
    op: OperatingPoint
    config: MicroarchConfig


@dataclass(frozen=True)
class PlatformEvaluation:
    """Everything the reliability and management layers need from one run.

    Attributes:
        intervals: per-phase conditions, time-weighted.
        sink_temperature_k: the converged heat-sink temperature.
        ips: absolute performance (instructions per second).
        avg_power_w: time-weighted average total power.
        peak_temperature_k: hottest structure temperature in any interval.
    """

    intervals: tuple[Interval, ...]
    sink_temperature_k: float
    ips: float
    avg_power_w: float

    @property
    def peak_temperature_k(self) -> float:
        return max(max(i.temperatures.values()) for i in self.intervals)

    @property
    def avg_temperature_by_structure(self) -> dict[str, float]:
        """Time-weighted average temperature per structure (drives the
        thermal-cycling FIT, which depends on the average cycle depth)."""
        avg = {name: 0.0 for name in STRUCTURE_NAMES}
        for interval in self.intervals:
            for name in STRUCTURE_NAMES:
                avg[name] += interval.temperatures[name] * interval.weight
        return avg


class Platform:
    """CPU + power + thermal wired together.

    Args:
        technology: process parameters (Table 1 defaults).
        thermal_params: package-stack parameters.
        vf_curve: the DVS voltage/frequency law.
        power_scale: global dynamic-power-density multiplier (the
            technology-scaling study's knob; 1.0 = calibrated 65 nm).
    """

    def __init__(
        self,
        technology: TechnologyParameters = DEFAULT_TECHNOLOGY,
        thermal_params: ThermalParameters = DEFAULT_THERMAL_PARAMETERS,
        vf_curve: VoltageFrequencyCurve = DEFAULT_VF_CURVE,
        power_scale: float = 1.0,
    ) -> None:
        self.technology = technology
        self.vf_curve = vf_curve
        self.power_scale = power_scale
        self.power_model = PowerModel(technology, dynamic_scale=power_scale)
        self.floorplan = build_default_floorplan(technology)
        self.network = ThermalRCNetwork(self.floorplan, thermal_params)
        self.thermal = TwoPassThermalModel(self.network)
        self._kernel: BatchKernel | None = None
        self._kernel_lock = threading.Lock()
        self._eval_memo: OrderedDict | None = None
        self._eval_memo_capacity = 0
        self._eval_memo_lock = threading.Lock()
        self._eval_memo_hits = 0
        self._eval_memo_misses = 0

    def fingerprint(self) -> dict:
        """Canonical JSON-ready description of the platform's physics.

        Everything that can change an evaluation's numbers is included:
        technology constants, package-stack parameters, the DVS law, and
        the dynamic-power scale.  The job engine hashes this into the
        cache keys of power/thermal-dependent jobs, so cached decisions
        are invalidated when the modelled hardware changes.
        """
        return {
            "technology": asdict(self.technology),
            "thermal": asdict(self.network.params),
            "vf_curve": asdict(self.vf_curve),
            "power_scale": self.power_scale,
        }

    # ------------------------------------------------------------------

    @property
    def kernel(self) -> BatchKernel:
        """The batched evaluation kernel bound to this platform's physics.

        Built lazily and reused for every grid: the thermal topology, the
        Cholesky factor, and the structure-to-node permutation are all
        candidate-independent.
        """
        # Double-checked: service worker threads share one Platform, and
        # two of them racing the lazy build would each construct a
        # kernel with only one surviving — wasted Cholesky work and a
        # torn read on CPython-without-GIL.  The fast path stays
        # lock-free once built.
        if self._kernel is None:
            with self._kernel_lock:
                if self._kernel is None:
                    self._kernel = BatchKernel(
                        self.power_model, self.network, self.thermal.solver
                    )
        return self._kernel

    # ---- evaluation memo ----------------------------------------------

    def enable_evaluation_memo(self, capacity: int = 256) -> None:
        """Memoise :meth:`evaluate_batch` results in a bounded LRU.

        Off by default (sweeps stream millions of one-shot grids through
        the kernel; caching them would only burn memory).  The decision
        service turns it on so concurrent requests that differ only in
        their reliability knob (e.g. two DRM queries for the same
        application at different ``t_qual_k``) share one grid
        evaluation: the candidate tensors, fixed point, and thermal
        solve run once, and each request applies its own RAMP model to
        the shared :class:`~repro.kernels.batch.BatchEvaluation`.

        Entries are keyed on ``(id(run), schedules, max_iters,
        salvage)``.  Keying on ``id`` is sound because every cached
        evaluation holds a strong reference to its run (``batch.run``),
        so the id cannot be recycled while the entry lives.
        """
        if capacity < 1:
            raise ValueError("evaluation memo capacity must be >= 1")
        with self._eval_memo_lock:
            self._eval_memo = OrderedDict()
            self._eval_memo_capacity = capacity

    def disable_evaluation_memo(self) -> None:
        """Drop the memo and return to uncached evaluation."""
        with self._eval_memo_lock:
            self._eval_memo = None
            self._eval_memo_capacity = 0

    def evaluation_memo_stats(self) -> dict[str, int]:
        """Hit/miss/size counters for the memo (zeros when disabled)."""
        with self._eval_memo_lock:
            return {
                "enabled": int(self._eval_memo is not None),
                "size": len(self._eval_memo) if self._eval_memo is not None else 0,
                "capacity": self._eval_memo_capacity,
                "hits": self._eval_memo_hits,
                "misses": self._eval_memo_misses,
            }

    def evaluate_batch(
        self,
        run: WorkloadRun,
        candidates: Sequence[Candidate],
        *,
        max_iters: int = MAX_FIXED_POINT_ITERS,
        salvage: bool = True,
    ) -> BatchEvaluation:
        """Evaluate a whole candidate grid against one run in one call.

        This is the **primary evaluation API**: every per-structure
        quantity is computed as a ``(candidates, phases, structures)``
        tensor and the leakage/temperature fixed point iterates over the
        entire grid simultaneously with per-row convergence masking.  The
        oracles (DRM, DTM, intra-application, joint) all route through
        it; :meth:`evaluate` and :meth:`evaluate_mixed` are single-row
        convenience wrappers.

        Args:
            run: one simulated workload (a single microarchitecture).
            candidates: a sequence of operating points (each applied
                uniformly to every phase) and/or per-phase schedules.
            max_iters: fixed-point iteration budget.
            salvage: repair unconverged / non-finite candidates per row
                (clean re-run, then extended budget, then masked with a
                :class:`~repro.errors.DegradedResultWarning`) instead of
                failing the whole grid; the returned evaluation's
                ``salvage`` report records what happened.

        Raises:
            ValueError: for an empty grid, a run without phases, a
                schedule of the wrong length, or non-positive durations.
            InputValidationError: if the run carries non-finite activity
                factors — named by structure and phase instead of
                propagating silently into powers and FIT sums.
            ThermalError: with ``salvage=False``, if any candidate's
                fixed point fails to converge — the message names the
                offending rows.
        """
        if self._eval_memo is None:
            return self.kernel.evaluate(run, candidates, max_iters, salvage=salvage)
        schedules = self.kernel._normalise(run, candidates)
        key = (id(run), schedules, max_iters, salvage)
        with self._eval_memo_lock:
            if self._eval_memo is not None:
                hit = self._eval_memo.get(key)
                if hit is not None:
                    self._eval_memo.move_to_end(key)
                    self._eval_memo_hits += 1
                    return hit
                self._eval_memo_misses += 1
        batch = self.kernel.evaluate(run, schedules, max_iters, salvage=salvage)
        with self._eval_memo_lock:
            if self._eval_memo is not None:
                self._eval_memo[key] = batch
                while len(self._eval_memo) > self._eval_memo_capacity:
                    self._eval_memo.popitem(last=False)
        return batch

    def evaluate(self, run: WorkloadRun, op: OperatingPoint) -> PlatformEvaluation:
        """Evaluate a run at one operating point.

        Convenience wrapper over :meth:`evaluate_batch` with a
        single-candidate grid.
        """
        return self.evaluate_batch(run, [op]).evaluation(0)

    def evaluate_mixed(
        self, run: WorkloadRun, ops: Sequence[OperatingPoint]
    ) -> PlatformEvaluation:
        """Evaluate a run with a per-phase operating point.

        This is the substrate for intra-application DRM: each phase may
        run at its own DVS point; phase durations (hence RAMP interval
        weights) follow from each phase's own frequency, and the heat
        sink settles to the schedule's time-weighted average power.
        Convenience wrapper over :meth:`evaluate_batch` with a
        single-schedule grid.

        Raises:
            ThermalError: if the fixed point fails to converge.
            ValueError: if ``ops`` does not match the phase count, the
                run has no phases, or any phase duration is non-positive.
        """
        return self.evaluate_batch(run, [tuple(ops)]).evaluation(0)

    def _evaluate_mixed_reference(
        self, run: WorkloadRun, ops: Sequence[OperatingPoint]
    ) -> PlatformEvaluation:
        """The original scalar (dict-walking) evaluation path.

        Kept as the ground truth the batched kernel is verified against
        (equivalence tests) and as the baseline the kernel benchmark
        times; production code routes through :meth:`evaluate_batch`.

        Raises:
            ThermalError: if the fixed point fails to converge.
            ValueError: if ``ops`` does not match the phase count, the
                run has no phases, or any phase duration is non-positive.
        """
        if not run.phases:
            raise ValueError(
                f"run of {run.profile.name!r} has no phases to evaluate"
            )
        if len(ops) != len(run.phases):
            raise ValueError(
                f"need one operating point per phase "
                f"({len(run.phases)}), got {len(ops)}"
            )
        f_base = self.technology.frequency_nominal_hz
        phases = []
        total_time = 0.0
        total_instr = 0
        for pr, op in zip(run.phases, ops):
            fsm = FrequencyScalingModel.from_stats(pr.stats, f_base)
            ipc_scale = fsm.ipc_at(op.frequency_hz) / fsm.ipc_at(f_base)
            activity = {
                name: min(1.0, a * ipc_scale)
                for name, a in pr.stats.activity.items()
            }
            time_s = pr.stats.instructions / fsm.ips_at(op.frequency_hz)
            phases.append((activity, time_s))
            total_time += time_s
            total_instr += pr.stats.instructions
        if any(t <= 0.0 for _, t in phases):
            raise ValueError("every phase must have a positive duration")
        if total_time <= 0.0:
            raise ValueError("total run time must be positive")
        weights = [t / total_time for _, t in phases]

        temps, sink, powers = self._solve_thermal_fixed_point(
            [a for a, _ in phases], weights, run.config, ops
        )
        intervals = tuple(
            Interval(
                weight=w,
                temperatures=t,
                activity=a,
                power=p,
                op=op,
                config=run.config,
            )
            for (a, _), w, t, p, op in zip(phases, weights, temps, powers, ops)
        )
        avg_power = sum(p.total_w * w for p, w in zip(powers, weights))
        return PlatformEvaluation(
            intervals=intervals,
            sink_temperature_k=sink,
            ips=total_instr / total_time,
            avg_power_w=avg_power,
        )

    def performance_relative_to_base(
        self, evaluation: PlatformEvaluation, base_evaluation: PlatformEvaluation
    ) -> float:
        """Speedup (or slowdown) vs the base non-adaptive processor."""
        return evaluation.ips / base_evaluation.ips

    # ------------------------------------------------------------------

    def _solve_thermal_fixed_point(
        self,
        activities: list[dict[str, float]],
        weights: list[float],
        config: MicroarchConfig,
        ops: list[OperatingPoint],
    ) -> tuple[list[dict[str, float]], float, list[PowerBreakdown]]:
        """Iterate leakage(T) <-> T(power) to convergence.

        Returns (per-phase temperatures, sink temperature, per-phase
        power breakdowns).

        Raises:
            ThermalError: if the fixed point fails to converge.
        """
        guess = self.network.params.ambient_k + 40.0
        temps = [
            {name: guess for name in STRUCTURE_NAMES} for _ in activities
        ]
        sink = self.network.params.ambient_k
        for _ in range(_MAX_FIXED_POINT_ITERS):
            powers = [
                self.power_model.evaluate(a, config, op, t)
                for a, t, op in zip(activities, temps, ops)
            ]
            phase_powers = [
                (p.totals(), w) for p, w in zip(powers, weights)
            ]
            sink = self.thermal.sink_temperature(phase_powers)
            new_temps = [
                self.thermal.solver.solve_with_fixed_sink(p, sink)
                for p, _ in phase_powers
            ]
            delta = max(
                abs(new_temps[i][name] - temps[i][name])
                for i in range(len(temps))
                for name in STRUCTURE_NAMES
            )
            temps = new_temps
            if delta < _TEMP_TOLERANCE_K:
                return temps, sink, powers
        raise ThermalError(
            "leakage/temperature fixed point did not converge "
            f"(last delta {delta:.3f} K)"
        )
