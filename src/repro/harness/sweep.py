"""Caching for expensive cycle-level simulations.

The DRM sweeps evaluate 9 applications x 18 microarchitectural
configurations; each (application, configuration) pair needs exactly one
cycle-level simulation, after which every DVS point is an analytical
rescale.  :class:`SimulationCache` memoises those runs in memory and,
optionally, on disk (as JSON of the per-phase statistics) so repeated
bench invocations skip straight to the reliability math.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.config.microarch import BASE_MICROARCH, MicroarchConfig
from repro.cpu.simulator import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    CycleSimulator,
    PhaseResult,
    WorkloadRun,
)
from repro.cpu.stats import SimulationStats
from repro.workloads.characteristics import WorkloadProfile
from repro.workloads.phases import Phase


class SimulationCache:
    """Memoised access to cycle-level workload runs.

    Args:
        instructions / warmup / seed: forwarded to the simulator; part of
            the cache key.
        disk_dir: optional directory for a persistent JSON cache.
    """

    def __init__(
        self,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup: int = DEFAULT_WARMUP,
        seed: int = 42,
        disk_dir: str | os.PathLike | None = None,
    ) -> None:
        self.instructions = instructions
        self.warmup = warmup
        self.seed = seed
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._memory: dict[tuple[str, str], WorkloadRun] = {}

    def _key(self, profile: WorkloadProfile, config: MicroarchConfig) -> tuple[str, str]:
        return (profile.name, config.describe())

    def _disk_path(self, key: tuple[str, str]) -> Path:
        name = f"{key[0]}_{key[1]}_{self.instructions}_{self.warmup}_{self.seed}.json"
        return self.disk_dir / name

    def run(
        self, profile: WorkloadProfile, config: MicroarchConfig = BASE_MICROARCH
    ) -> WorkloadRun:
        """Return the (possibly cached) cycle-level run."""
        key = self._key(profile, config)
        cached = self._memory.get(key)
        if cached is not None:
            return cached
        if self.disk_dir is not None:
            path = self._disk_path(key)
            if path.exists():
                run = _load_run(path, profile, config)
                self._memory[key] = run
                return run
        simulator = CycleSimulator(
            config=config,
            instructions=self.instructions,
            warmup=self.warmup,
            seed=self.seed,
        )
        run = simulator.run(profile)
        self._memory[key] = run
        if self.disk_dir is not None:
            _store_run(self._disk_path(key), run)
        return run


def _store_run(path: Path, run: WorkloadRun) -> None:
    payload = {
        "phases": [
            {
                "phase": {
                    "name": pr.phase.name,
                    "weight": pr.phase.weight,
                    "ilp_scale": pr.phase.ilp_scale,
                    "miss_scale": pr.phase.miss_scale,
                    "fp_scale": pr.phase.fp_scale,
                },
                "stats": {
                    "instructions": pr.stats.instructions,
                    "cycles": pr.stats.cycles,
                    "activity": pr.stats.activity,
                    "mem_stall_cycles": pr.stats.mem_stall_cycles,
                    "branch_mispredict_rate": pr.stats.branch_mispredict_rate,
                    "l1d_miss_rate": pr.stats.l1d_miss_rate,
                    "l1i_miss_rate": pr.stats.l1i_miss_rate,
                    "l2_miss_rate": pr.stats.l2_miss_rate,
                    "lsq_forwards": pr.stats.lsq_forwards,
                    "ras_mispredicts": pr.stats.ras_mispredicts,
                },
            }
            for pr in run.phases
        ]
    }
    path.write_text(json.dumps(payload))


def _load_run(path: Path, profile: WorkloadProfile, config: MicroarchConfig) -> WorkloadRun:
    payload = json.loads(path.read_text())
    phases = []
    for entry in payload["phases"]:
        phase = Phase(**entry["phase"])
        stats = SimulationStats(config=config, **entry["stats"])
        phases.append(PhaseResult(phase=phase, stats=stats))
    return WorkloadRun(profile=profile, config=config, phases=tuple(phases))
