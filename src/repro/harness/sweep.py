"""Caching for expensive cycle-level simulations.

The DRM sweeps evaluate 9 applications x 18 microarchitectural
configurations; each (application, configuration) pair needs exactly one
cycle-level simulation, after which every DVS point is an analytical
rescale.  :class:`SimulationCache` memoises those runs in memory and,
optionally, on disk, so repeated bench invocations skip straight to the
reliability math.

The disk layer is the engine's content-addressed
:class:`~repro.engine.store.ResultStore`: entries are keyed by a SHA-256
over *all* simulation inputs (full profile, full config, budgets, seed,
schema version), not by a ``describe()``-derived filename — so two
configs can never collide, keys are always filesystem-safe, and editing a
profile invalidates its cached runs.  A corrupt or truncated entry is
struck (self-healed on the first strike, quarantined on a repeat) and the
simulation simply re-runs; a damaged cache can never crash a sweep.

For parallel population of the cache (Fig-2-style 162-simulation
sweeps), see :meth:`SimulationCache.run_many`, which routes through
:class:`repro.engine.Engine`.

For whole DRM sweeps that must survive being killed mid-run, see
:class:`DRMSweepRunner`: every finished (application, T_qual) cell is
recorded as a ``sweep.cell_done`` record on the store's telemetry
stream, and a ``resume`` run replays the stream to restore the finished
cells (emitting ``resumed`` events) and recomputes only the rest.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

from repro.config.microarch import BASE_MICROARCH, MicroarchConfig
from repro.cpu.simulator import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    CycleSimulator,
    WorkloadRun,
)
from repro.engine.jobs import simulate_cache_key
from repro.engine.store import (
    DECODE_ERRORS,
    ResultStore,
    decode_workload_run,
    encode_workload_run,
)
from repro.workloads.characteristics import WorkloadProfile


class SimulationCache:
    """Memoised access to cycle-level workload runs.

    Args:
        instructions / warmup / seed: forwarded to the simulator; part of
            the cache key.
        disk_dir: optional directory for the persistent content-addressed
            store (shared freely between processes and with the engine).
    """

    def __init__(
        self,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup: int = DEFAULT_WARMUP,
        seed: int = 42,
        disk_dir: str | os.PathLike | None = None,
    ) -> None:
        self.instructions = instructions
        self.warmup = warmup
        self.seed = seed
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.store = ResultStore(self.disk_dir) if self.disk_dir is not None else None
        self._memory: dict[str, WorkloadRun] = {}
        # The decision service shares one cache across its worker
        # threads; the memo is the only mutable state, so it alone is
        # locked — simulations (and store I/O) run outside the lock.
        self._memory_lock = threading.Lock()

    def _key(self, profile: WorkloadProfile, config: MicroarchConfig) -> str:
        return simulate_cache_key(
            profile, config, self.instructions, self.warmup, self.seed
        )

    def run(
        self, profile: WorkloadProfile, config: MicroarchConfig = BASE_MICROARCH
    ) -> WorkloadRun:
        """Return the (possibly cached) cycle-level run.

        Lookup order: in-memory memo, then the disk store, then a fresh
        simulation.  Undecodable store entries are struck (self-healed
        first, quarantined on a repeat) and the simulation re-runs —
        corruption degrades to recomputation, never to an exception.
        """
        key = self._key(profile, config)
        with self._memory_lock:
            cached = self._memory.get(key)
        if cached is not None:
            return cached
        if self.store is not None:
            payload = self.store.get(key)
            if payload is not None:
                try:
                    run = decode_workload_run(payload, profile, config)
                except DECODE_ERRORS:
                    self.store.invalidate(key)
                else:
                    self.store.absolve(key)
                    with self._memory_lock:
                        self._memory[key] = run
                    return run
        simulator = CycleSimulator(
            config=config,
            instructions=self.instructions,
            warmup=self.warmup,
            seed=self.seed,
        )
        run = simulator.run(profile)
        with self._memory_lock:
            self._memory[key] = run
        if self.store is not None:
            self.store.put(key, "simulate", encode_workload_run(run))
        return run

    def run_many(
        self,
        profiles,
        configs=None,
        max_workers: int | None = None,
    ) -> dict[tuple[str, str], WorkloadRun]:
        """Populate the cache for (profile × config) pairs in parallel.

        Suite profiles only (the engine addresses them by name).  With a
        disk store the simulations fan out across worker processes and
        land in the shared store; without one the pairs run serially
        in-process (worker memory would be unreachable).  Either way the
        in-memory memo ends up warm and the returned runs are identical
        to what sequential :meth:`run` calls would produce.

        Returns ``{(profile.name, config.describe()): WorkloadRun}``.
        """
        from repro.engine import Engine

        if configs is None:
            configs = (BASE_MICROARCH,)
        profiles = list(profiles)
        configs = list(configs)
        if self.store is None or max_workers == 1:
            return {
                (p.name, c.describe()): self.run(p, c)
                for p in profiles
                for c in configs
            }
        engine = Engine(store_dir=self.disk_dir, max_workers=max_workers)
        engine.simulate_many(
            [p.name for p in profiles],
            configs,
            instructions=self.instructions,
            warmup=self.warmup,
            seed=self.seed,
        )
        # Re-read through the normal path so the memo fills from the
        # store and every entry went through the same decode checks.
        return {
            (p.name, c.describe()): self.run(p, c)
            for p in profiles
            for c in configs
        }


#: Sweep spec version; bump when the spec shape (and thus run identity)
#: changes.  (Key name stays ``schema`` for hash stability.)
SWEEP_SPEC_SCHEMA = 1


class DRMSweepRunner:
    """Checkpointed DRM oracle sweep over (application × T_qual) cells.

    Each cell runs through :class:`repro.engine.Engine` (simulations fan
    out in parallel first), and every finished cell appends one
    ``sweep.cell_done`` telemetry record — pointing at the decision's
    content key in the store — to the sweep's stream under
    ``<store>/telemetry/sweep-<spec-hash>/``.  A ``resume=True`` run
    replays the stream to restore finished cells — verifying each
    decision still decodes; a corrupt one is struck and recomputed — and
    only submits jobs for the rest, so killing a sweep mid-run (even
    mid-append: frames are CRC-checked and torn tails skipped) costs
    only the cells that had not finished.  A completed sweep compacts
    its stream into one segment.

    Args:
        store_dir: directory of the engine's result store (required —
            the telemetry stream lives inside it).
        mode / dvs_steps / instructions / warmup / seed: sweep
            parameters; all part of the stream's run identity hash.
        max_workers / timeout_s / retries / failure_budget / progress:
            forwarded to the engine.
    """

    def __init__(
        self,
        store_dir: str | os.PathLike,
        *,
        mode: str = "archdvs",
        dvs_steps: int = 26,
        instructions: int | None = None,
        warmup: int | None = None,
        seed: int = 42,
        max_workers: int | None = None,
        timeout_s: float | None = None,
        retries: int = 1,
        failure_budget: int | None = None,
        progress=None,
    ) -> None:
        from repro.cpu.simulator import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
        from repro.engine import Engine

        if store_dir is None:
            from repro.errors import SweepError

            raise SweepError(
                "a checkpointed sweep needs a store directory for its journal"
            )
        self.mode = mode
        self.dvs_steps = dvs_steps
        self.instructions = (
            DEFAULT_INSTRUCTIONS if instructions is None else instructions
        )
        self.warmup = DEFAULT_WARMUP if warmup is None else warmup
        self.seed = seed
        self.engine = Engine(
            store_dir=store_dir,
            max_workers=max_workers,
            timeout_s=timeout_s,
            retries=retries,
            failure_budget=failure_budget,
            progress=progress,
        )

    # ---- stream --------------------------------------------------------

    def _spec(self, apps, tquals) -> dict:
        return {
            "schema": SWEEP_SPEC_SCHEMA,
            "apps": sorted(apps),
            "tquals": sorted(float(t) for t in tquals),
            "mode": self.mode,
            "dvs_steps": self.dvs_steps,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "seed": self.seed,
        }

    @property
    def stream_root(self) -> Path:
        from repro.telemetry import STORE_DIRNAME

        return self.engine.store.root / STORE_DIRNAME

    def sweep_run_id(self, apps, tquals) -> str:
        """The sweep's stream identity: stable across kill/resume."""
        from repro.engine.jobs import content_hash

        return f"sweep-{content_hash(self._spec(apps, tquals))[:16]}"

    def _replay(self, run_id: str) -> dict[str, str]:
        """The ``{cell_id: decision_key}`` map the stream records.

        A ``sweep.reset`` record (appended by every non-resume run)
        clears everything before it; torn or damaged frames are skipped
        by the reader, so a sweep killed mid-append replays every cell
        whose record made it to disk intact.
        """
        from repro.telemetry import read_stream

        done: dict[str, str] = {}
        for record in read_stream(
            self.stream_root, run_id=run_id, kinds=("sweep.",)
        ):
            if record.kind == "sweep.reset":
                done.clear()
            elif record.kind == "sweep.cell_done":
                cell = record.payload.get("cell")
                key = record.payload.get("decision_key")
                if isinstance(cell, str) and isinstance(key, str):
                    done[cell] = key
        return done

    @staticmethod
    def _cell_id(app: str, t_qual: float) -> str:
        return f"{app}@{t_qual:g}"

    # ---- sweep ---------------------------------------------------------

    def run(
        self, apps, tquals, resume: bool = False
    ) -> dict[tuple[str, float], object]:
        """Run (or resume) the sweep; returns ``{(app, t_qual): decision}``.

        With ``resume=True``, cells recorded on the telemetry stream are
        restored straight from the store (one ``resumed`` event each) and
        only the remaining cells are executed; without it a
        ``sweep.reset`` record voids the history and every cell is redone
        (finished simulations still short-circuit through the
        content-addressed store either way).
        """
        from repro.engine.jobs import DRMSearchJob
        from repro.engine.store import DECODE_ERRORS, decode_result
        from repro.telemetry import TelemetryWriter, compact_run

        apps = list(apps)
        tquals = [float(t) for t in tquals]
        spec = self._spec(apps, tquals)
        run_id = self.sweep_run_id(apps, tquals)
        done = self._replay(run_id) if resume else {}
        writer = TelemetryWriter(self.stream_root, run_id=run_id)
        if not resume:
            writer.append("sweep.reset", {"reason": "fresh run"})
        writer.append("sweep.spec", spec)

        jobs: dict[tuple[str, float], DRMSearchJob] = {
            (app, t_qual): DRMSearchJob(
                profile_name=app,
                t_qual_k=t_qual,
                mode=self.mode,
                dvs_steps=self.dvs_steps,
                instructions=self.instructions,
                warmup=self.warmup,
                seed=self.seed,
            )
            for app in apps
            for t_qual in tquals
        }

        decisions: dict[tuple[str, float], object] = {}
        store = self.engine.store
        for cell, job in jobs.items():
            key = done.get(self._cell_id(*cell))
            if key is None:
                continue
            payload = store.get(key)
            if payload is None:
                done.pop(self._cell_id(*cell), None)
                continue
            try:
                decision = decode_result("drm", payload)
            except DECODE_ERRORS as exc:
                action = store.invalidate(key)
                self.engine.events.emit(
                    "quarantined" if action == "quarantined" else "healed",
                    job_key=key,
                    stage="drm",
                    detail=f"journalled cell {self._cell_id(*cell)}: {exc!r}",
                )
                done.pop(self._cell_id(*cell), None)
                continue
            store.absolve(key)
            decisions[cell] = decision
            self.engine.events.emit(
                "resumed",
                job_key=key,
                stage="drm",
                detail=f"cell {self._cell_id(*cell)} restored from stream",
            )

        pending = [cell for cell in jobs if cell not in decisions]
        if pending:
            # Fan the expensive cycle-level simulations out across every
            # pending cell first; the per-cell runs below then hit a warm
            # store and the journal advances cheaply cell by cell.
            prefetch: dict[str, object] = {}
            for cell in pending:
                for dep in jobs[cell].dependencies():
                    prefetch[dep.cache_key] = dep
            self.engine.run(list(prefetch.values()))
        for cell in pending:
            job = jobs[cell]
            decision = self.engine.run([job])[job]
            decisions[cell] = decision
            if decision is not None:
                done[self._cell_id(*cell)] = job.cache_key
                writer.append(
                    "sweep.cell_done",
                    {
                        "cell": self._cell_id(*cell),
                        "decision_key": job.cache_key,
                    },
                )
        if all(decision is not None for decision in decisions.values()):
            # The sweep is whole: fold its (possibly crash-littered)
            # segments into one.  Readers dedupe by seq, so a crash
            # inside the compaction itself is also survivable.
            compact_run(self.stream_root, run_id, include_active=True)
        return decisions
