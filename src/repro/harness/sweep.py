"""Caching for expensive cycle-level simulations.

The DRM sweeps evaluate 9 applications x 18 microarchitectural
configurations; each (application, configuration) pair needs exactly one
cycle-level simulation, after which every DVS point is an analytical
rescale.  :class:`SimulationCache` memoises those runs in memory and,
optionally, on disk, so repeated bench invocations skip straight to the
reliability math.

The disk layer is the engine's content-addressed
:class:`~repro.engine.store.ResultStore`: entries are keyed by a SHA-256
over *all* simulation inputs (full profile, full config, budgets, seed,
schema version), not by a ``describe()``-derived filename — so two
configs can never collide, keys are always filesystem-safe, and editing a
profile invalidates its cached runs.  A corrupt or truncated entry is
quarantined and the simulation simply re-runs; a damaged cache can never
crash a sweep.

For parallel population of the cache (Fig-2-style 162-simulation
sweeps), see :meth:`SimulationCache.run_many`, which routes through
:class:`repro.engine.Engine`.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.config.microarch import BASE_MICROARCH, MicroarchConfig
from repro.cpu.simulator import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    CycleSimulator,
    WorkloadRun,
)
from repro.engine.jobs import simulate_cache_key
from repro.engine.store import (
    DECODE_ERRORS,
    ResultStore,
    decode_workload_run,
    encode_workload_run,
)
from repro.workloads.characteristics import WorkloadProfile


class SimulationCache:
    """Memoised access to cycle-level workload runs.

    Args:
        instructions / warmup / seed: forwarded to the simulator; part of
            the cache key.
        disk_dir: optional directory for the persistent content-addressed
            store (shared freely between processes and with the engine).
    """

    def __init__(
        self,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup: int = DEFAULT_WARMUP,
        seed: int = 42,
        disk_dir: str | os.PathLike | None = None,
    ) -> None:
        self.instructions = instructions
        self.warmup = warmup
        self.seed = seed
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.store = ResultStore(self.disk_dir) if self.disk_dir is not None else None
        self._memory: dict[str, WorkloadRun] = {}

    def _key(self, profile: WorkloadProfile, config: MicroarchConfig) -> str:
        return simulate_cache_key(
            profile, config, self.instructions, self.warmup, self.seed
        )

    def run(
        self, profile: WorkloadProfile, config: MicroarchConfig = BASE_MICROARCH
    ) -> WorkloadRun:
        """Return the (possibly cached) cycle-level run.

        Lookup order: in-memory memo, then the disk store, then a fresh
        simulation.  Undecodable store entries are quarantined and the
        simulation re-runs — corruption degrades to recomputation, never
        to an exception.
        """
        key = self._key(profile, config)
        cached = self._memory.get(key)
        if cached is not None:
            return cached
        if self.store is not None:
            payload = self.store.get(key)
            if payload is not None:
                try:
                    run = decode_workload_run(payload, profile, config)
                except DECODE_ERRORS:
                    self.store.invalidate(key)
                else:
                    self._memory[key] = run
                    return run
        simulator = CycleSimulator(
            config=config,
            instructions=self.instructions,
            warmup=self.warmup,
            seed=self.seed,
        )
        run = simulator.run(profile)
        self._memory[key] = run
        if self.store is not None:
            self.store.put(key, "simulate", encode_workload_run(run))
        return run

    def run_many(
        self,
        profiles,
        configs=None,
        max_workers: int | None = None,
    ) -> dict[tuple[str, str], WorkloadRun]:
        """Populate the cache for (profile × config) pairs in parallel.

        Suite profiles only (the engine addresses them by name).  With a
        disk store the simulations fan out across worker processes and
        land in the shared store; without one the pairs run serially
        in-process (worker memory would be unreachable).  Either way the
        in-memory memo ends up warm and the returned runs are identical
        to what sequential :meth:`run` calls would produce.

        Returns ``{(profile.name, config.describe()): WorkloadRun}``.
        """
        from repro.engine import Engine

        if configs is None:
            configs = (BASE_MICROARCH,)
        profiles = list(profiles)
        configs = list(configs)
        if self.store is None or max_workers == 1:
            return {
                (p.name, c.describe()): self.run(p, c)
                for p in profiles
                for c in configs
            }
        engine = Engine(store_dir=self.disk_dir, max_workers=max_workers)
        engine.simulate_many(
            [p.name for p in profiles],
            configs,
            instructions=self.instructions,
            warmup=self.warmup,
            seed=self.seed,
        )
        # Re-read through the normal path so the memo fills from the
        # store and every entry went through the same decode checks.
        return {
            (p.name, c.describe()): self.run(p, c)
            for p in profiles
            for c in configs
        }
