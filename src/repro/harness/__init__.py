"""Experiment harness: wiring, caching, and reporting.

:class:`~repro.harness.platform.Platform` assembles the timing simulator,
power model, and thermal model into one evaluable system; the sweep
helpers cache expensive cycle-level simulations so the benches that
regenerate the paper's figures stay fast; and the reporting helpers print
fixed-width tables in the shape the paper reports.
"""

from repro.harness.platform import Platform, Interval, PlatformEvaluation
from repro.harness.sweep import SimulationCache
from repro.harness.reporting import format_table, format_series

# repro.harness.validation is intentionally NOT imported here: it builds
# on repro.core, which itself imports repro.harness.platform — import it
# directly (``from repro.harness.validation import validate_stack``).

__all__ = [
    "Platform",
    "Interval",
    "PlatformEvaluation",
    "SimulationCache",
    "format_table",
    "format_series",
]
