"""Self-validation: invariant audits over the assembled stack.

The paper's Section 3.8 is frank that RAMP's architectural abstractions
are approximations grounded in practice rather than formally validated.
This module gives the reproduction the audits that *can* be machine
checked, so a user (or the CLI's ``validate`` command) can confirm the
installed stack is internally consistent:

- **thermal energy balance** — at steady state, all injected power must
  leave through the heat sink;
- **qualification audit** — calibrated budgets sum to the target, split
  evenly across mechanisms and by area across structures, and the
  qualification point reproduces the target FIT exactly;
- **calibration audit** — the synthetic suite's IPC/power against the
  Table 2 targets, with the acceptance bands of EXPERIMENTS.md;
- **SOFR consistency** — an application's total FIT equals the sum of
  its mechanism and structure aggregations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.dvs import DEFAULT_VF_CURVE
from repro.config.technology import STRUCTURES
from repro.core.qualification import QualifiedReliabilityModel
from repro.core.ramp import RampModel
from repro.harness.platform import Platform
from repro.harness.sweep import SimulationCache
from repro.thermal.solver import SteadyStateSolver
from repro.workloads.suite import WORKLOAD_SUITE

#: Acceptance bands (see EXPERIMENTS.md).
IPC_BAND = (0.65, 1.35)
POWER_BAND = (0.70, 1.30)
PEAK_TEMPERATURE_BAND_K = (380.0, 410.0)


@dataclass
class ValidationReport:
    """Accumulated audit results.

    Attributes:
        checks: (name, passed, detail) triplets in execution order.
    """

    checks: list[tuple[str, bool, str]] = field(default_factory=list)

    def record(self, name: str, passed: bool, detail: str) -> None:
        self.checks.append((name, passed, detail))

    @property
    def ok(self) -> bool:
        """Whether every audit passed."""
        return all(passed for _, passed, _ in self.checks)

    def failures(self) -> list[tuple[str, str]]:
        return [(n, d) for n, passed, d in self.checks if not passed]

    def render(self) -> str:
        lines = []
        for name, passed, detail in self.checks:
            mark = "PASS" if passed else "FAIL"
            lines.append(f"[{mark}] {name}: {detail}")
        lines.append(f"=> {'all checks passed' if self.ok else 'FAILURES PRESENT'}")
        return "\n".join(lines)


def audit_energy_balance(platform: Platform, report: ValidationReport) -> None:
    """Steady-state power in == heat flow to ambient, to 0.1%."""
    solver = SteadyStateSolver(platform.network)
    total_in = 30.0
    per_block = {b.name: total_in / len(platform.network.block_names)
                 for b in platform.floorplan}
    full = solver.solve_full(per_block)
    sink_t = float(full[platform.network.sink_index])
    flow_out = (sink_t - platform.network.params.ambient_k) / (
        platform.network.params.r_convection_k_per_w
    )
    ok = abs(flow_out - total_in) < 1e-3 * total_in
    report.record(
        "thermal energy balance",
        ok,
        f"{total_in:.3f} W in vs {flow_out:.3f} W to ambient",
    )


def audit_qualification(qualified: QualifiedReliabilityModel, report: ValidationReport) -> None:
    """Budget bookkeeping and the defining calibration identity."""
    total_budget = sum(qualified.budgets.values())
    ok_total = abs(total_budget - qualified.fit_target) < 1e-6 * qualified.fit_target
    report.record(
        "qualification budget total",
        ok_total,
        f"budgets sum to {total_budget:.3f} (target {qualified.fit_target:.0f})",
    )

    by_mech: dict[str, float] = {}
    for (mech, _), b in qualified.budgets.items():
        by_mech[mech] = by_mech.get(mech, 0.0) + b
    spread = max(by_mech.values()) - min(by_mech.values())
    report.record(
        "even mechanism split",
        spread < 1e-6 * qualified.fit_target,
        f"per-mechanism budgets {sorted(round(v, 2) for v in by_mech.values())}",
    )

    total_area = sum(s.area_mm2 for s in STRUCTURES)
    area_ok = True
    for spec in STRUCTURES:
        expected = by_mech["EM"] * spec.area_mm2 / total_area
        got = qualified.budgets[("EM", spec.name)]
        if abs(got - expected) > 1e-9 * max(expected, 1.0):
            area_ok = False
    report.record("area-proportional split", area_ok, "EM budgets track structure areas")

    # The defining identity: qualification conditions reproduce the target.
    from repro.constants import FIT_DEVICE_HOURS
    from repro.core.failure import ALL_MECHANISMS

    total = 0.0
    for mech in ALL_MECHANISMS:
        for spec in STRUCTURES:
            c = qualified.point.conditions_for(spec.name, qualified.technology)
            total += FIT_DEVICE_HOURS * mech.relative_fit(c) / qualified.constant(
                mech.name, spec.name
            )
    ok_identity = abs(total - qualified.fit_target) < 1e-6 * qualified.fit_target
    report.record(
        "qualification identity",
        ok_identity,
        f"FIT at qual point = {total:.3f}",
    )


def audit_sofr_consistency(ramp: RampModel, evaluation, report: ValidationReport) -> None:
    """Total FIT equals both of its aggregations."""
    rel = ramp.application_reliability(evaluation)
    total = rel.total_fit
    by_mech = sum(rel.account.by_mechanism().values())
    by_struct = sum(rel.account.by_structure().values())
    ok = abs(total - by_mech) < 1e-9 * max(total, 1.0) and abs(
        total - by_struct
    ) < 1e-9 * max(total, 1.0)
    report.record(
        "SOFR aggregation consistency",
        ok,
        f"total {total:.2f} vs Σmech {by_mech:.2f} vs Σstruct {by_struct:.2f}",
    )


def audit_calibration(
    cache: SimulationCache, platform: Platform, report: ValidationReport
) -> None:
    """Suite IPC/power against Table 2 with the published bands."""
    nominal = DEFAULT_VF_CURVE.nominal
    peak = 0.0
    for profile in WORKLOAD_SUITE:
        run = cache.run(profile)
        evaluation = platform.evaluate(run, nominal)
        ipc_ratio = run.ipc / profile.table2_ipc
        # repro: ignore[RPR301] Table 2 reference powers are positive
        # published constants, never zero.
        power_ratio = evaluation.avg_power_w / profile.table2_power_w
        report.record(
            f"calibration {profile.name}",
            IPC_BAND[0] < ipc_ratio < IPC_BAND[1]
            and POWER_BAND[0] < power_ratio < POWER_BAND[1],
            f"IPC x{ipc_ratio:.2f}, power x{power_ratio:.2f} of Table 2",
        )
        peak = max(peak, evaluation.peak_temperature_k)
    report.record(
        "worst-case thermal anchor",
        PEAK_TEMPERATURE_BAND_K[0] < peak < PEAK_TEMPERATURE_BAND_K[1],
        f"hottest structure across the suite: {peak:.1f} K (paper: near 400 K)",
    )


def validate_stack(
    cache: SimulationCache | None = None,
    platform: Platform | None = None,
    t_qual_k: float = 400.0,
) -> ValidationReport:
    """Run every audit; returns the combined report.

    Raises:
        ReproError: never directly — failures are recorded, not raised —
            but constituent audits may propagate configuration errors if
            the stack is fundamentally mis-assembled.
    """
    from repro.core.drm import DRMOracle

    platform = platform or Platform()
    cache = cache or SimulationCache()
    report = ValidationReport()
    audit_energy_balance(platform, report)
    oracle = DRMOracle(platform=platform, cache=cache)
    ramp = oracle.ramp_for(t_qual_k)
    audit_qualification(ramp.qualified, report)
    audit_sofr_consistency(
        ramp, oracle.base_evaluation(WORKLOAD_SUITE[0]), report
    )
    audit_calibration(cache, platform, report)
    return report
