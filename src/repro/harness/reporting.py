"""Fixed-width table and series formatting for the bench harness.

Every bench regenerates one of the paper's tables or figures as text; the
helpers here keep the output format consistent (and easy to diff against
EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.errors import ReproError


def format_table(
    headers: list[str], rows: list[list[object]], title: str | None = None
) -> str:
    """Render a fixed-width text table.

    Floats are shown with three decimals, everything else via ``str``.

    Raises:
        ReproError: if a row's length does not match the header.
    """
    rendered_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        rendered_rows.append([_cell(v) for v in row])
    widths = [
        max(len(h), *(len(r[i]) for r in rendered_rows)) if rendered_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: list[object],
    series: dict[str, list[float]],
    title: str | None = None,
) -> str:
    """Render named y-series against a shared x-axis (a text 'figure').

    Raises:
        ReproError: if any series length differs from the x-axis length.
    """
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ReproError(
                f"series {name!r} has {len(ys)} points for {len(xs)} x values"
            )
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    # Rows are single lines: fold every Unicode line break (\n, \r,
    # \x1c-\x1e, \u2028...) so alignment survives arbitrary content.
    text = str(value)
    lines = text.splitlines()
    return " ".join(lines) if len(lines) > 1 or (lines and lines[0] != text) else text
