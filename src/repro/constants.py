"""Physical constants and unit conversions used throughout the library.

Every quantity in this package uses SI-ish engineering units that match the
RAMP paper's conventions:

- temperature: kelvin
- voltage: volts
- frequency: hertz (configuration tables often speak in GHz; convert at the
  boundary)
- power: watts
- area: square millimetres (floorplans and leakage densities are quoted in
  mm^2 in the paper)
- reliability: FIT (failures per 10^9 device-hours) or MTTF in hours
"""

from __future__ import annotations

#: Boltzmann constant in electron-volts per kelvin. The activation energies
#: in the failure models (0.9 eV for electromigration and stress migration,
#: the Wu et al. TDDB fit) are quoted in eV, so k must match.
BOLTZMANN_EV_PER_K = 8.617333262e-5

#: Hours in a (Julian) year, used for MTTF-in-years conversions.
HOURS_PER_YEAR = 8760.0

#: Device-hours per FIT unit: one FIT is one failure per 1e9 device-hours.
FIT_DEVICE_HOURS = 1.0e9

#: Absolute-zero guard: no model in this package is meaningful below this.
MIN_TEMPERATURE_K = 200.0

#: Upper sanity bound for silicon junction temperatures (melting is far
#: higher, but nothing in a working processor should exceed this).
MAX_TEMPERATURE_K = 500.0

#: Ambient air temperature inside the case, assumed by the thermal model
#: (45 C, the HotSpot default).
AMBIENT_TEMPERATURE_K = 318.15

#: Cold end of the large thermal cycles modelled by the Coffin-Manson
#: fatigue mechanism: the powered-off (room-temperature) state the package
#: returns to when the machine powers down or enters standby.
CYCLE_COLD_TEMPERATURE_K = 300.0

#: The paper's reliability qualification target: processors are expected to
#: have an MTTF of around 30 years, i.e. a total failure rate of ~4000 FIT.
TARGET_FIT = 4000.0

#: Black's-equation current-density exponent n for the copper
#: interconnects modelled (Section 3.1; JEDEC JEP122-A via the paper).
EM_CURRENT_DENSITY_EXPONENT = 1.1

#: Electromigration activation energy Ea in eV for copper (Section 3.1).
EM_ACTIVATION_ENERGY_EV = 0.9

#: Stress-migration temperature exponent m for sputtered copper
#: (Section 3.2).
SM_STRESS_EXPONENT = 2.5

#: Stress-migration activation energy Ea in eV (Section 3.2; equal to
#: the electromigration value for the modelled copper, but kept as its
#: own name because the mechanisms are qualified independently).
SM_ACTIVATION_ENERGY_EV = 0.9

#: Coffin-Manson exponent q for the package (thermal cycling,
#: Section 3.4).
TC_COFFIN_MANSON_EXPONENT = 2.35

#: Number of intrinsic failure mechanisms modelled by RAMP.  The FIT budget
#: is split evenly across them during qualification.
N_FAILURE_MECHANISMS = 4

#: Explicit physical units for the constants above, keyed by constant
#: name.  Values are unit names from the static analyzer's lattice
#: (``repro.analysis.unitsig``): "K", "V", "Hz", "W", "eV", "FIT",
#: "hours", "1" (dimensionless), plus compound spellings like "eV/K"
#: that the dataflow pass treats as opaque.  The analyzer reads this
#: table from the AST, so a constant's declared unit and its name
#: convention can be cross-checked without importing this module.
CONSTANT_UNITS: dict[str, str] = {
    "BOLTZMANN_EV_PER_K": "eV/K",
    "HOURS_PER_YEAR": "hours/year",
    "FIT_DEVICE_HOURS": "device_hours",
    "MIN_TEMPERATURE_K": "K",
    "MAX_TEMPERATURE_K": "K",
    "AMBIENT_TEMPERATURE_K": "K",
    "CYCLE_COLD_TEMPERATURE_K": "K",
    "TARGET_FIT": "FIT",
    "EM_CURRENT_DENSITY_EXPONENT": "1",
    "EM_ACTIVATION_ENERGY_EV": "eV",
    "SM_STRESS_EXPONENT": "1",
    "SM_ACTIVATION_ENERGY_EV": "eV",
    "TC_COFFIN_MANSON_EXPONENT": "1",
    "N_FAILURE_MECHANISMS": "1",
}


#: Declared physical envelopes for the interval-domain analyzer
#: (RPR301-303).  Keys are either unit names from the analyzer's
#: lattice ("K", "V", "FIT", ...) or bare name tokens for quantities
#: the lattice treats as dimensionless ("probability", "activity").
#: Values are ``[lo, hi]`` (inclusive) or ``[lo, hi, True]`` where the
#: third element marks the lower bound as *strict* (durations and
#: areas are positive, never zero).  ``None`` means unbounded.  Bounds
#: may reference the module-level constants above by name; the
#: analyzer resolves them from this file's AST without importing it.
PHYSICAL_RANGES: dict[str, list] = {
    # Temperatures: the same plausibility envelope validate_temperature
    # enforces at runtime, in both absolute scales.
    "K": [MIN_TEMPERATURE_K, MAX_TEMPERATURE_K],
    "degC": [-73.15, 226.85],
    # Qualified electrical envelopes: DVS never leaves [0.5, 1.6] V and
    # the clock stays between 1 MHz (deep scaling) and 10 GHz.
    "V": [0.5, 1.6],
    "mV": [500.0, 1600.0],
    "Hz": [1.0e6, 1.0e10],
    "kHz": [1.0e3, 1.0e7],
    "MHz": [1.0, 1.0e4],
    "GHz": [1.0e-3, 10.0],
    # Reliability: failure rates and powers are non-negative; activation
    # energies sit well under 10 eV for any silicon mechanism.
    "FIT": [0.0, None],
    "W": [0.0, None],
    "mW": [0.0, None],
    "J": [0.0, None],
    "eV": [0.0, 10.0],
    # Durations and areas are strictly positive (third element: the
    # lower bound is open, so dividing by one is provably safe).
    "hours": [0.0, None, True],
    "years": [0.0, None, True],
    "s": [0.0, None, True],
    "ms": [0.0, None, True],
    "mm2": [0.0, None, True],
    "m2": [0.0, None, True],
    "um2": [0.0, None, True],
    "device_hours": [0.0, None, True],
    # Name-token envelopes for dimensionless quantities.
    "probability": [0.0, 1.0],
    "activity": [0.0, 1.0],
    "fraction": [0.0, 1.0],
}


def mttf_hours_to_fit(mttf_hours: float) -> float:
    """Convert a mean-time-to-failure in hours to a FIT value.

    FIT is the expected number of failures per 1e9 device-hours, so under
    the constant-failure-rate (exponential lifetime) assumption used by the
    SOFR model, ``FIT = 1e9 / MTTF``.

    Raises:
        ValueError: if ``mttf_hours`` is not strictly positive.
    """
    if mttf_hours <= 0.0:
        raise ValueError(f"MTTF must be positive, got {mttf_hours!r}")
    return FIT_DEVICE_HOURS / mttf_hours


def fit_to_mttf_hours(fit: float) -> float:
    """Convert a FIT value to a mean-time-to-failure in hours.

    Raises:
        ValueError: if ``fit`` is not strictly positive.
    """
    if fit <= 0.0:
        raise ValueError(f"FIT must be positive, got {fit!r}")
    return FIT_DEVICE_HOURS / fit


def mttf_years_to_fit(mttf_years: float) -> float:
    """Convert an MTTF in years to FIT (30 years ~ 3805 FIT)."""
    return mttf_hours_to_fit(mttf_years * HOURS_PER_YEAR)


def fit_to_mttf_years(fit: float) -> float:
    """Convert a FIT value to an MTTF in years."""
    return fit_to_mttf_hours(fit) / HOURS_PER_YEAR


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    return celsius + 273.15


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    return kelvin - 273.15


def validate_temperature(kelvin: float, *, what: str = "temperature") -> float:
    """Check a temperature is physically plausible and return it.

    Raises:
        ValueError: if ``kelvin`` falls outside
            [``MIN_TEMPERATURE_K``, ``MAX_TEMPERATURE_K``].
    """
    if not MIN_TEMPERATURE_K <= kelvin <= MAX_TEMPERATURE_K:
        raise ValueError(
            f"{what} {kelvin!r} K outside plausible range "
            f"[{MIN_TEMPERATURE_K}, {MAX_TEMPERATURE_K}]"
        )
    return kelvin
