"""Per-application statistical profiles and their Table 2 targets.

Each of the paper's nine applications is described by a
:class:`WorkloadProfile`: the parameters a
:class:`~repro.workloads.generator.TraceGenerator` needs to synthesise a
dynamic instruction stream whose behaviour on the base processor lands in
the right region of the IPC/power spectrum (Table 2), plus a phase list
that provides the temporal variation RAMP's interval accounting consumes.

The knobs and what they control:

- ``mix``: op-class probabilities (media codecs are ALU/FP heavy with
  regular loads; twolf/art are pointer-chasing / cache-hostile).
- ``dep_distance_mean``: mean register-dependency distance.  Larger means
  more instruction-level parallelism and higher IPC.
- ``branch``: number of hot static branches and their bias; biased
  branches are what a bimodal predictor captures well.
- ``memory``: working-set model — probability that a memory access falls
  in an L1-resident hot set, an L2-resident warm set, or the cold
  (memory-resident) remainder, plus the set sizes in cache blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workloads.trace import OpClass
from repro.workloads.phases import Phase


@dataclass(frozen=True)
class BranchBehavior:
    """Branch-stream parameters.

    Attributes:
        n_static: number of hot static branches in the synthetic program.
        bias: probability that a static branch is strongly biased (taken
            ~95% or ~5% of the time).  Unbiased branches flip a fair coin,
            which a bimodal predictor cannot learn; ``bias`` therefore
            controls the emergent misprediction rate.
        taken_fraction: long-run fraction of branches that are taken
            (affects fetch redirects and I-cache behaviour).
    """

    n_static: int = 64
    # repro: ignore[RPR005] branch-predictor bias probability; the
    # collision with Ea = 0.9 eV is numerical coincidence.
    bias: float = 0.9
    taken_fraction: float = 0.55

    def __post_init__(self) -> None:
        if self.n_static <= 0:
            raise WorkloadError("n_static must be positive")
        if not 0.0 <= self.bias <= 1.0:
            raise WorkloadError("bias must be in [0, 1]")
        if not 0.0 <= self.taken_fraction <= 1.0:
            raise WorkloadError("taken_fraction must be in [0, 1]")


@dataclass(frozen=True)
class MemoryBehavior:
    """Data-memory working-set parameters.

    Addresses are generated at cache-block (64 B) granularity from three
    nested sets: a hot set sized to fit in L1D, a warm set sized to fit in
    L2, and a cold stream that always misses.  The probabilities control
    the emergent L1/L2 miss rates.

    Attributes:
        p_hot: probability an access falls in the L1-resident hot set.
        p_warm: probability it falls in the L2-resident warm set.
        hot_blocks: number of distinct blocks in the hot set.
        warm_blocks: number of distinct blocks in the warm set.
        stride_fraction: fraction of hot-set accesses that walk
            sequentially (streaming media style) instead of uniformly.
    """

    # repro: ignore[RPR005] hot-set residency probability; the
    # collision with Ea = 0.9 eV is numerical coincidence.
    p_hot: float = 0.90
    p_warm: float = 0.08
    hot_blocks: int = 512
    warm_blocks: int = 8192
    stride_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_hot <= 1.0 or not 0.0 <= self.p_warm <= 1.0:
            raise WorkloadError("set probabilities must be in [0, 1]")
        if self.p_hot + self.p_warm > 1.0 + 1e-12:
            raise WorkloadError("p_hot + p_warm must not exceed 1")
        if self.hot_blocks <= 0 or self.warm_blocks <= 0:
            raise WorkloadError("working-set sizes must be positive")
        if not 0.0 <= self.stride_fraction <= 1.0:
            raise WorkloadError("stride_fraction must be in [0, 1]")

    @property
    def p_cold(self) -> float:
        """Probability an access goes to the cold (always-miss) stream."""
        return max(0.0, 1.0 - self.p_hot - self.p_warm)


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything needed to synthesise one application's dynamic stream.

    Attributes:
        name: application name (Table 2).
        category: ``"media"``, ``"specint"``, or ``"specfp"``.
        mix: op-class probability for each :class:`OpClass`; must sum to 1.
        dep_distance_mean: mean register-dependency distance (geometric).
        branch: branch-stream parameters.
        memory: working-set parameters.
        code_blocks: size of the instruction working set in I-cache blocks
            (drives the L1I miss rate).
        phases: temporal phase structure; weights must sum to 1.
        table2_ipc: the paper's measured base-processor IPC (target).
        table2_power_w: the paper's measured base power in watts (target).
    """

    name: str
    category: str
    mix: dict[OpClass, float]
    dep_distance_mean: float
    branch: BranchBehavior
    memory: MemoryBehavior
    code_blocks: int
    phases: tuple[Phase, ...]
    table2_ipc: float
    table2_power_w: float

    def __post_init__(self) -> None:
        if self.category not in ("media", "specint", "specfp"):
            raise WorkloadError(f"unknown category {self.category!r}")
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"{self.name}: mix sums to {total}, not 1")
        if any(p < 0.0 for p in self.mix.values()):
            raise WorkloadError(f"{self.name}: mix has negative probability")
        if self.dep_distance_mean < 1.0:
            raise WorkloadError("dep_distance_mean must be >= 1")
        if self.code_blocks <= 0:
            raise WorkloadError("code_blocks must be positive")
        if not self.phases:
            raise WorkloadError("profile needs at least one phase")
        weight = sum(p.weight for p in self.phases)
        if abs(weight - 1.0) > 1e-9:
            raise WorkloadError(f"{self.name}: phase weights sum to {weight}")

    def mem_fraction(self) -> float:
        """Fraction of the stream that is loads or stores."""
        return self.mix.get(OpClass.LOAD, 0.0) + self.mix.get(OpClass.STORE, 0.0)

    def fp_fraction(self) -> float:
        """Fraction of the stream that executes on the FPUs."""
        return (
            self.mix.get(OpClass.FADD, 0.0)
            + self.mix.get(OpClass.FMUL, 0.0)
            + self.mix.get(OpClass.FDIV, 0.0)
        )


def make_mix(
    ialu: float = 0.0,
    imul: float = 0.0,
    idiv: float = 0.0,
    fadd: float = 0.0,
    fmul: float = 0.0,
    fdiv: float = 0.0,
    load: float = 0.0,
    store: float = 0.0,
    branch: float = 0.0,
) -> dict[OpClass, float]:
    """Build an op-class mix dict; the values must sum to 1."""
    return {
        OpClass.IALU: ialu,
        OpClass.IMUL: imul,
        OpClass.IDIV: idiv,
        OpClass.FADD: fadd,
        OpClass.FMUL: fmul,
        OpClass.FDIV: fdiv,
        OpClass.LOAD: load,
        OpClass.STORE: store,
        OpClass.BRANCH: branch,
        # CALL/RETURN are structural: the program builder carves them out
        # of the branch budget, so profiles never specify them directly.
        OpClass.CALL: 0.0,
        OpClass.RETURN: 0.0,
    }
