"""The paper's nine-application workload suite (Table 2).

Three multimedia applications, three SpecInt2000 applications, and three
SpecFP2000 applications, chosen by the paper to span a wide range of IPC
(0.7-3.2) and base power (15.6-36.5 W).  Each profile below is a
hand-calibrated synthetic stand-in (see DESIGN.md for the substitution
argument); the ``table2_*`` fields record the paper's measured values,
which the Table 2 bench compares against.

Calibration intent per application:

- **MPGdec / MP3dec**: streaming codecs — very high ILP, regular loads
  that hit a small hot set, highly predictable loop branches, FP-heavy.
- **H263enc**: encoder — high ILP but a larger working set (motion
  search) and more branches.
- **bzip2 / gzip**: compressors — integer-only, moderate ILP, working
  sets that spill into L2, moderately predictable branches.
- **twolf**: place-and-route — pointer chasing, short dependency chains,
  hard-to-predict branches, cache-hostile.
- **art**: neural-net simulator — FP streaming over a memory-resident
  data set (lowest IPC, memory bound).
- **equake / ammp**: FP solvers — medium ILP, L2-resident working sets.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.characteristics import (
    BranchBehavior,
    MemoryBehavior,
    WorkloadProfile,
    make_mix,
)
from repro.workloads.phases import Phase

_MEDIA_PHASES = (
    Phase("frame-decode", weight=0.6, ilp_scale=1.0, miss_scale=1.0, fp_scale=1.0),
    Phase("frame-setup", weight=0.2, ilp_scale=0.7, miss_scale=1.6, fp_scale=0.6),
    Phase("idct-burst", weight=0.2, ilp_scale=1.2, miss_scale=0.6, fp_scale=1.3),
)

_SPECINT_PHASES = (
    Phase("compute", weight=0.55, ilp_scale=1.0, miss_scale=1.0),
    Phase("table-walk", weight=0.25, ilp_scale=0.8, miss_scale=1.8),
    Phase("dense", weight=0.2, ilp_scale=1.25, miss_scale=0.5),
)

_SPECFP_PHASES = (
    Phase("solve", weight=0.6, ilp_scale=1.0, miss_scale=1.0, fp_scale=1.0),
    Phase("assemble", weight=0.2, ilp_scale=0.75, miss_scale=1.5, fp_scale=0.5),
    Phase("inner-loop", weight=0.2, ilp_scale=1.2, miss_scale=0.7, fp_scale=1.2),
)

WORKLOAD_SUITE: tuple[WorkloadProfile, ...] = (
    WorkloadProfile(
        name="MPGdec",
        category="media",
        mix=make_mix(ialu=0.36, imul=0.02, fadd=0.14, fmul=0.10,
                     load=0.22, store=0.08, branch=0.08),
        dep_distance_mean=20.0,
        branch=BranchBehavior(n_static=48, bias=0.99, taken_fraction=0.6),
        memory=MemoryBehavior(p_hot=0.990, p_warm=0.008, hot_blocks=700,
                              warm_blocks=6000, stride_fraction=0.8),
        code_blocks=220,
        phases=_MEDIA_PHASES,
        table2_ipc=3.2,
        table2_power_w=36.5,
    ),
    WorkloadProfile(
        name="MP3dec",
        category="media",
        mix=make_mix(ialu=0.34, imul=0.02, fadd=0.16, fmul=0.12,
                     load=0.21, store=0.07, branch=0.08),
        dep_distance_mean=15.0,
        branch=BranchBehavior(n_static=40, bias=0.99, taken_fraction=0.6),
        memory=MemoryBehavior(p_hot=0.991, p_warm=0.007, hot_blocks=600,
                              warm_blocks=5000, stride_fraction=0.8),
        code_blocks=200,
        phases=_MEDIA_PHASES,
        table2_ipc=2.8,
        table2_power_w=34.7,
    ),
    WorkloadProfile(
        name="H263enc",
        category="media",
        mix=make_mix(ialu=0.38, imul=0.03, fadd=0.10, fmul=0.07,
                     load=0.23, store=0.07, branch=0.12),
        dep_distance_mean=11.0,
        branch=BranchBehavior(n_static=80, bias=0.98, taken_fraction=0.58),
        memory=MemoryBehavior(p_hot=0.986, p_warm=0.011, hot_blocks=900,
                              warm_blocks=10000, stride_fraction=0.7),
        code_blocks=320,
        phases=_MEDIA_PHASES,
        table2_ipc=1.9,
        table2_power_w=30.8,
    ),
    WorkloadProfile(
        name="bzip2",
        category="specint",
        mix=make_mix(ialu=0.46, imul=0.01, load=0.26, store=0.11, branch=0.16),
        dep_distance_mean=9.0,
        branch=BranchBehavior(n_static=120, bias=0.95, taken_fraction=0.55),
        memory=MemoryBehavior(p_hot=0.978, p_warm=0.017, hot_blocks=900,
                              warm_blocks=12000, stride_fraction=0.5),
        code_blocks=380,
        phases=_SPECINT_PHASES,
        table2_ipc=1.7,
        table2_power_w=23.9,
    ),
    WorkloadProfile(
        name="gzip",
        category="specint",
        mix=make_mix(ialu=0.45, imul=0.01, load=0.27, store=0.11, branch=0.16),
        dep_distance_mean=8.0,
        branch=BranchBehavior(n_static=140, bias=0.95, taken_fraction=0.55),
        memory=MemoryBehavior(p_hot=0.978, p_warm=0.018, hot_blocks=950,
                              warm_blocks=12000, stride_fraction=0.5),
        code_blocks=420,
        phases=_SPECINT_PHASES,
        table2_ipc=1.5,
        table2_power_w=23.4,
    ),
    WorkloadProfile(
        name="twolf",
        category="specint",
        mix=make_mix(ialu=0.42, imul=0.02, load=0.28, store=0.09, branch=0.19),
        dep_distance_mean=3.9,
        branch=BranchBehavior(n_static=260, bias=0.88, taken_fraction=0.5),
        memory=MemoryBehavior(p_hot=0.962, p_warm=0.029, hot_blocks=1000,
                              warm_blocks=14000, stride_fraction=0.1),
        code_blocks=520,
        phases=_SPECINT_PHASES,
        table2_ipc=0.8,
        table2_power_w=15.6,
    ),
    WorkloadProfile(
        name="art",
        category="specfp",
        mix=make_mix(ialu=0.24, fadd=0.17, fmul=0.13, fdiv=0.005,
                     load=0.30, store=0.065, branch=0.09),
        dep_distance_mean=5.0,
        branch=BranchBehavior(n_static=60, bias=0.96, taken_fraction=0.6),
        memory=MemoryBehavior(p_hot=0.933, p_warm=0.054, hot_blocks=800,
                              warm_blocks=15000, stride_fraction=0.6),
        code_blocks=180,
        phases=_SPECFP_PHASES,
        table2_ipc=0.7,
        table2_power_w=17.0,
    ),
    WorkloadProfile(
        name="equake",
        category="specfp",
        mix=make_mix(ialu=0.27, fadd=0.16, fmul=0.12, fdiv=0.005,
                     load=0.28, store=0.075, branch=0.09),
        dep_distance_mean=8.0,
        branch=BranchBehavior(n_static=70, bias=0.96, taken_fraction=0.6),
        memory=MemoryBehavior(p_hot=0.977, p_warm=0.018, hot_blocks=900,
                              warm_blocks=12000, stride_fraction=0.6),
        code_blocks=240,
        phases=_SPECFP_PHASES,
        table2_ipc=1.4,
        table2_power_w=20.9,
    ),
    WorkloadProfile(
        name="ammp",
        category="specfp",
        mix=make_mix(ialu=0.28, fadd=0.15, fmul=0.11, fdiv=0.01,
                     load=0.28, store=0.08, branch=0.09),
        dep_distance_mean=6.5,
        branch=BranchBehavior(n_static=90, bias=0.96, taken_fraction=0.58),
        memory=MemoryBehavior(p_hot=0.975, p_warm=0.021, hot_blocks=900,
                              warm_blocks=13000, stride_fraction=0.4),
        code_blocks=260,
        phases=_SPECFP_PHASES,
        table2_ipc=1.1,  # repro: ignore[RPR005] paper Table 2 IPC datum
        table2_power_w=19.7,
    ),
)

SUITE_NAMES: tuple[str, ...] = tuple(p.name for p in WORKLOAD_SUITE)

_BY_NAME = {p.name: p for p in WORKLOAD_SUITE}


def workload_by_name(name: str) -> WorkloadProfile:
    """Look up a suite profile by application name.

    Raises:
        WorkloadError: if ``name`` is not one of the nine applications.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
