"""Dynamic instruction traces consumed by the cycle-level simulator.

A :class:`Trace` is a flattened dynamic instruction stream.  For speed the
trace is stored as parallel numpy arrays rather than a list of objects;
:class:`Instruction` is a convenience view used by tests and small tools.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


class OpClass(enum.IntEnum):
    """Operation classes recognised by the simulator.

    The latencies associated with each class come from Table 1 and live in
    :mod:`repro.cpu.isa`.
    """

    IALU = 0
    IMUL = 1
    IDIV = 2
    FADD = 3
    FMUL = 4
    FDIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8
    CALL = 9
    RETURN = 10


#: Ops executed by the integer ALUs.
INT_OPS = (OpClass.IALU, OpClass.IMUL, OpClass.IDIV)
#: Ops executed by the floating-point units.
FP_OPS = (OpClass.FADD, OpClass.FMUL, OpClass.FDIV)
#: Ops that access the data memory hierarchy.
MEM_OPS = (OpClass.LOAD, OpClass.STORE)
#: Control-transfer ops (all execute on an integer ALU).
CONTROL_OPS = (OpClass.BRANCH, OpClass.CALL, OpClass.RETURN)


@dataclass(frozen=True)
class Instruction:
    """A single dynamic instruction (object view of one trace row).

    Attributes:
        op: operation class.
        dep1: distance (in dynamic instructions) back to the producer of
            the first source operand, or 0 for no register dependence.
        dep2: distance to the second source's producer, or 0.
        addr: cache-block-aligned byte address for LOAD/STORE, else 0.
        taken: actual branch outcome for BRANCH, else False.
        pc: instruction address (used for I-cache and branch predictor).
        fp_dest: whether the destination register is floating point.
    """

    op: OpClass
    dep1: int = 0
    dep2: int = 0
    addr: int = 0
    taken: bool = False
    pc: int = 0
    fp_dest: bool = False


class Trace:
    """A dynamic instruction stream stored as parallel numpy arrays.

    Attributes:
        op, dep1, dep2, addr, taken, pc, fp_dest: per-instruction arrays.
        name: label for reporting (e.g. the workload and phase it came from).
    """

    __slots__ = ("op", "dep1", "dep2", "addr", "taken", "pc", "fp_dest", "name")

    def __init__(
        self,
        op: np.ndarray,
        dep1: np.ndarray,
        dep2: np.ndarray,
        addr: np.ndarray,
        taken: np.ndarray,
        pc: np.ndarray,
        fp_dest: np.ndarray,
        name: str = "trace",
    ) -> None:
        n = len(op)
        arrays = (dep1, dep2, addr, taken, pc, fp_dest)
        if any(len(a) != n for a in arrays):
            raise WorkloadError("trace arrays must all have the same length")
        if n == 0:
            raise WorkloadError("trace must contain at least one instruction")
        if (dep1 < 0).any() or (dep2 < 0).any():
            raise WorkloadError("dependency distances must be non-negative")
        self.op = np.ascontiguousarray(op, dtype=np.int8)
        self.dep1 = np.ascontiguousarray(dep1, dtype=np.int32)
        self.dep2 = np.ascontiguousarray(dep2, dtype=np.int32)
        self.addr = np.ascontiguousarray(addr, dtype=np.int64)
        self.taken = np.ascontiguousarray(taken, dtype=bool)
        self.pc = np.ascontiguousarray(pc, dtype=np.int64)
        self.fp_dest = np.ascontiguousarray(fp_dest, dtype=bool)
        self.name = name

    def __len__(self) -> int:
        return len(self.op)

    def __getitem__(self, i: int) -> Instruction:
        return Instruction(
            op=OpClass(int(self.op[i])),
            dep1=int(self.dep1[i]),
            dep2=int(self.dep2[i]),
            addr=int(self.addr[i]),
            taken=bool(self.taken[i]),
            pc=int(self.pc[i]),
            fp_dest=bool(self.fp_dest[i]),
        )

    @classmethod
    def from_instructions(cls, instructions: list[Instruction], name: str = "trace") -> "Trace":
        """Build a trace from a list of :class:`Instruction` objects."""
        if not instructions:
            raise WorkloadError("trace must contain at least one instruction")
        return cls(
            op=np.array([int(i.op) for i in instructions], dtype=np.int8),
            dep1=np.array([i.dep1 for i in instructions], dtype=np.int32),
            dep2=np.array([i.dep2 for i in instructions], dtype=np.int32),
            addr=np.array([i.addr for i in instructions], dtype=np.int64),
            taken=np.array([i.taken for i in instructions], dtype=bool),
            pc=np.array([i.pc for i in instructions], dtype=np.int64),
            fp_dest=np.array([i.fp_dest for i in instructions], dtype=bool),
            name=name,
        )

    def mix(self) -> dict[OpClass, float]:
        """Fraction of the dynamic stream in each op class."""
        counts = np.bincount(self.op, minlength=len(OpClass))
        total = float(len(self))
        return {cls_: counts[int(cls_)] / total for cls_ in OpClass}
