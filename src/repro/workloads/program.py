"""Static-program model: basic blocks with fixed layout and branch bias.

Real programs re-execute the same basic blocks, which is what makes
pc-indexed hardware (the branch predictor, the I-cache, the return
address stack) effective.  A :class:`StaticProgram` is a synthetic
control-flow graph:

- ``n_blocks`` basic blocks laid out sequentially in the address space,
  each a fixed sequence of non-control ops ending in one control op;
- most blocks end in a conditional **BRANCH** with a fixed taken-target
  block and a fixed taken-probability drawn from the profile's bias model
  (strongly biased with probability ``bias``, else a coin flip);
- a fraction of blocks end in a **CALL** to a function block; function
  blocks end in a **RETURN** (or occasionally a further CALL to a later
  function block, giving nested call chains for the return address stack
  to track);
- not-taken falls through to the next block in layout order.

The dynamic instruction stream is a random walk over this graph with a
call stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.characteristics import WorkloadProfile
from repro.workloads.trace import OpClass

#: Fraction of the block population that are function bodies (end in
#: RETURN or a nested CALL).
FUNCTION_BLOCK_FRACTION = 0.10

#: Probability that a non-function block's terminator is a CALL rather
#: than a conditional branch.
CALL_TERMINATOR_FRACTION = 0.08

#: Probability that a function block chains a further CALL (to a later
#: function block) instead of returning immediately.
NESTED_CALL_FRACTION = 0.3


@dataclass(frozen=True)
class StaticProgram:
    """A synthetic program: blocks of ops with a control op at each end.

    Attributes:
        block_ops: per-block op-class arrays (each ends in a control op).
        block_pc: per-block pc arrays (4 bytes per instruction,
            sequential layout).
        terminator: per-block terminating op class (BRANCH/CALL/RETURN).
        p_taken: per-block taken probability (meaningful for BRANCH).
        target: per-block control target block id (BRANCH taken-target or
            CALL callee; unused for RETURN).
    """

    block_ops: tuple[np.ndarray, ...]
    block_pc: tuple[np.ndarray, ...]
    terminator: np.ndarray
    p_taken: np.ndarray
    target: np.ndarray

    @property
    def n_blocks(self) -> int:
        return len(self.block_ops)

    def footprint_bytes(self) -> int:
        """Total static code size in bytes."""
        return sum(len(ops) for ops in self.block_ops) * 4

    def function_entries(self) -> np.ndarray:
        """Block ids of the function bodies (entered only by CALL)."""
        is_fn = (self.terminator == int(OpClass.RETURN)) | (
            (self.terminator == int(OpClass.CALL))
            & (np.arange(self.n_blocks) >= self.first_function_block())
        )
        return np.flatnonzero(is_fn)

    def first_function_block(self) -> int:
        """Index of the first function block (they occupy the id tail)."""
        n_fn = max(1, int(round(FUNCTION_BLOCK_FRACTION * self.n_blocks)))
        return self.n_blocks - n_fn


def build_static_program(
    profile: WorkloadProfile, rng: np.random.Generator
) -> StaticProgram:
    """Build the static program for a workload profile.

    The number of basic blocks is the profile's ``code_blocks``; mean
    block length is set by the branch fraction of the instruction mix
    (every block ends in exactly one control op), so the emergent dynamic
    mix matches the profile, with a small share of the control budget
    spent on CALL/RETURN pairs.

    Raises:
        WorkloadError: if the profile's mix contains no branches.
    """
    branch_frac = profile.mix.get(OpClass.BRANCH, 0.0)
    if branch_frac <= 0.0:
        raise WorkloadError(f"{profile.name}: mix needs a branch fraction")
    mean_len = 1.0 / branch_frac
    n_blocks = profile.code_blocks

    body_classes = np.array(
        [int(c) for c, p in profile.mix.items() if c != OpClass.BRANCH and p > 0],
        dtype=np.int8,
    )
    body_probs = np.array(
        [p for c, p in profile.mix.items() if c != OpClass.BRANCH and p > 0],
        dtype=float,
    )
    body_probs /= body_probs.sum()

    # Function blocks live at the top of the id space so nested calls
    # (always to a strictly larger id) terminate.
    n_fn = max(1, int(round(FUNCTION_BLOCK_FRACTION * n_blocks)))
    first_fn = n_blocks - n_fn
    if first_fn <= 0:
        raise WorkloadError("profile needs more code blocks than functions")

    terminator = np.full(n_blocks, int(OpClass.BRANCH), dtype=np.int8)
    target = np.zeros(n_blocks, dtype=np.int64)
    for i in range(n_blocks):
        if i >= first_fn:
            # Function body: chain a call to a later function, or return.
            if i + 1 < n_blocks and rng.random() < NESTED_CALL_FRACTION:
                terminator[i] = int(OpClass.CALL)
                target[i] = int(rng.integers(i + 1, n_blocks))
            else:
                terminator[i] = int(OpClass.RETURN)
        elif rng.random() < CALL_TERMINATOR_FRACTION:
            terminator[i] = int(OpClass.CALL)
            target[i] = int(rng.integers(first_fn, n_blocks))
        else:
            # Conditional branch: taken-targets stay out of the function
            # region so functions are only entered by CALL.
            target[i] = int(rng.integers(0, first_fn))

    # Block length: 1 control op + geometric body with the right mean.
    body_mean = max(mean_len - 1.0, 1.0)
    lengths = 1 + rng.geometric(1.0 / body_mean, size=n_blocks)
    block_ops = []
    block_pc = []
    base = 0
    for i, length in enumerate(lengths):
        ops = np.empty(length, dtype=np.int8)
        ops[:-1] = rng.choice(body_classes, size=length - 1, p=body_probs)
        ops[-1] = terminator[i]
        block_ops.append(ops)
        block_pc.append(base + 4 * np.arange(length, dtype=np.int64))
        base += 4 * int(length)

    b = profile.branch
    # Deterministic, evenly spread bias assignment: exactly the profile's
    # biased fraction, independent of RNG luck, so hot regions of the walk
    # carry a representative share of hard-to-predict branches.
    spread = (np.arange(n_blocks) * 2654435761 % 1000) / 1000.0
    biased = spread < b.bias
    toward_taken = rng.random(n_blocks) < b.taken_fraction
    p_taken = np.where(biased, np.where(toward_taken, 0.99, 0.01), 0.5)
    return StaticProgram(
        block_ops=tuple(block_ops),
        block_pc=tuple(block_pc),
        terminator=terminator,
        p_taken=p_taken,
        target=target,
    )
