"""Trace analysis toolkit.

Characterisation utilities over dynamic instruction traces, used to
sanity-check the synthetic workloads against their profiles and available
to users studying their own traces:

- instruction-mix summary;
- dependency-distance (ILP) histogram and mean;
- LRU **stack-distance profile** for the data stream — the classic
  reuse-distance curve from which cache miss rates for *any* fully
  associative LRU size can be read off;
- branch-stream statistics (static footprint, per-pc bias entropy);
- basic-block (fetch-run) length distribution.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.trace import CONTROL_OPS, MEM_OPS, OpClass, Trace


@dataclass(frozen=True)
class BranchStats:
    """Branch-stream characterisation.

    Attributes:
        dynamic_branches: conditional-branch instances in the trace.
        static_branches: distinct conditional-branch pcs.
        taken_fraction: fraction of dynamic branches taken.
        mean_bias_entropy: mean per-pc Bernoulli entropy (bits); 0 for
            perfectly biased streams, 1 for coin flips — a direct
            predictor-difficulty metric.
    """

    dynamic_branches: int
    static_branches: int
    taken_fraction: float
    mean_bias_entropy: float


def instruction_mix(trace: Trace) -> dict[str, float]:
    """Mix by op-class name (sums to 1)."""
    return {op.name: share for op, share in trace.mix().items()}


def dependency_histogram(trace: Trace, max_distance: int = 64) -> np.ndarray:
    """Histogram of dep1 distances (index 0 = no dependence).

    Distances above ``max_distance`` accumulate in the last bin.
    """
    if max_distance < 1:
        raise WorkloadError("max_distance must be >= 1")
    clipped = np.minimum(trace.dep1, max_distance)
    return np.bincount(clipped, minlength=max_distance + 1)


def mean_dependency_distance(trace: Trace) -> float:
    """Mean dep1 distance over instructions that have a dependence."""
    deps = trace.dep1[trace.dep1 > 0]
    if len(deps) == 0:
        return 0.0
    return float(deps.mean())


def stack_distance_profile(trace: Trace, max_blocks: int = 1 << 16) -> Counter:
    """LRU stack distances of the data-access block stream.

    Returns a Counter mapping stack distance to occurrences; first-touch
    accesses are recorded under the key ``-1``.  The miss rate of a fully
    associative LRU cache of capacity C is the mass at distances >= C
    plus the first-touch mass, divided by total accesses.
    """
    distances: Counter = Counter()
    stack: list[int] = []
    resident: set[int] = set()
    mem = np.isin(trace.op, [int(o) for o in MEM_OPS])
    blocks = (trace.addr[mem] // 64).tolist()
    for block in blocks:
        if block in resident:
            # Distance = number of distinct blocks touched since last use.
            idx = stack.index(block)
            distances[len(stack) - 1 - idx] += 1
            stack.pop(idx)
        else:
            distances[-1] += 1
            resident.add(block)
            if len(stack) >= max_blocks:
                evicted = stack.pop(0)
                resident.discard(evicted)
        stack.append(block)
    return distances


def miss_rate_for_capacity(
    distances: Counter, capacity_blocks: int, include_first_touch: bool = True
) -> float:
    """Fully associative LRU miss rate implied by a stack-distance profile.

    Args:
        distances: profile from :func:`stack_distance_profile`.
        capacity_blocks: cache capacity in blocks.
        include_first_touch: count compulsory (first-touch) misses.  Pass
            False for the steady-state (reuse-only) miss rate — the right
            view for short standalone traces, where compulsory mass
            dominates but a long-running program would have amortised it.

    Raises:
        WorkloadError: if the profile is empty or capacity is not positive.
    """
    if capacity_blocks <= 0:
        raise WorkloadError("capacity must be positive")
    first_touch = distances[-1]
    reuses = sum(v for d, v in distances.items() if d >= 0)
    capacity_misses = sum(
        count for d, count in distances.items() if d >= capacity_blocks
    )
    if include_first_touch:
        total = reuses + first_touch
        misses = capacity_misses + first_touch
    else:
        total = reuses
        misses = capacity_misses
    if total == 0:
        raise WorkloadError("empty stack-distance profile")
    return misses / total


def branch_stats(trace: Trace) -> BranchStats:
    """Characterise the conditional-branch stream.

    Raises:
        WorkloadError: if the trace contains no conditional branches.
    """
    is_branch = trace.op == int(OpClass.BRANCH)
    n = int(is_branch.sum())
    if n == 0:
        raise WorkloadError("trace has no conditional branches")
    pcs = trace.pc[is_branch]
    outcomes = trace.taken[is_branch]
    per_pc: dict[int, list[int]] = defaultdict(lambda: [0, 0])
    for pc, taken in zip(pcs.tolist(), outcomes.tolist()):
        per_pc[pc][1 if taken else 0] += 1
    entropies = []
    for not_taken, taken in per_pc.values():
        total = not_taken + taken
        p = taken / total
        if p in (0.0, 1.0):
            entropies.append(0.0)
        else:
            entropies.append(-p * math.log2(p) - (1 - p) * math.log2(1 - p))
    return BranchStats(
        dynamic_branches=n,
        static_branches=len(per_pc),
        taken_fraction=float(outcomes.mean()),
        mean_bias_entropy=float(np.mean(entropies)),
    )


def fetch_run_lengths(trace: Trace) -> np.ndarray:
    """Lengths of sequential fetch runs (broken by taken control ops).

    The distribution of these runs bounds the front end's effective
    fetch bandwidth on a machine with a taken-branch fetch break.
    """
    control = np.isin(trace.op, [int(o) for o in CONTROL_OPS])
    breaks = np.flatnonzero(control & trace.taken)
    if len(breaks) == 0:
        return np.array([len(trace)])
    edges = np.concatenate(([-1], breaks, [len(trace) - 1]))
    lengths = np.diff(edges)
    return lengths[lengths > 0]
