"""Canonical microbenchmark traces.

Hand-constructed single-behaviour instruction streams for characterising
the simulator (and any machine configuration) along one axis at a time —
the classic microbenchmark kit:

- ``alu_throughput``   independent integer ops (FU bandwidth ceiling)
- ``dependency_chain`` serial ops (latency exposure)
- ``pointer_chase``    dependent loads over a working set (load-to-use)
- ``stream``           independent strided loads (memory bandwidth / MLP)
- ``branchy``          unpredictable branches (front-end resilience)
- ``call_heavy``       call/return ladders (RAS behaviour)

All are deterministic and take explicit sizes, so tests can reason about
their exact timing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.trace import Instruction, OpClass, Trace

#: Single I-cache block pc footprint (see test rationale: one cold miss).
_PC_SLOTS = 16


def _pc(i: int) -> int:
    return (i % _PC_SLOTS) * 4


def _check(n: int) -> None:
    if n <= 0:
        raise WorkloadError("microbenchmark length must be positive")


def alu_throughput(n: int = 2000) -> Trace:
    """Independent integer ALU ops: IPC should approach the ALU count."""
    _check(n)
    return Trace.from_instructions(
        [Instruction(op=OpClass.IALU, pc=_pc(i)) for i in range(n)],
        name="ubench:alu_throughput",
    )


def dependency_chain(n: int = 2000, op: OpClass = OpClass.IALU) -> Trace:
    """A single serial chain: IPC = 1 / op latency."""
    _check(n)
    return Trace.from_instructions(
        [Instruction(op=op, dep1=min(1, i), pc=_pc(i)) for i in range(n)],
        name=f"ubench:chain_{op.name.lower()}",
    )


def pointer_chase(n: int = 800, working_set_blocks: int = 64) -> Trace:
    """Dependent loads walking a working set: exposes load-to-use latency.

    Each load's address depends on the previous load's value, so no two
    chase steps overlap — the canonical linked-list traversal.
    """
    _check(n)
    if working_set_blocks <= 0:
        raise WorkloadError("working set must be positive")
    rng = np.random.default_rng(99)
    order = rng.permutation(working_set_blocks)
    instrs = []
    for i in range(n):
        block = int(order[i % working_set_blocks])
        instrs.append(
            Instruction(op=OpClass.LOAD, dep1=min(1, i), addr=block * 64, pc=_pc(i))
        )
    return Trace.from_instructions(instrs, name="ubench:pointer_chase")


def stream(n: int = 800, stride_blocks: int = 1) -> Trace:
    """Independent strided loads: exposes MLP / MSHR / bandwidth limits."""
    _check(n)
    if stride_blocks <= 0:
        raise WorkloadError("stride must be positive")
    instrs = [
        Instruction(op=OpClass.LOAD, addr=(1 << 30) + i * stride_blocks * 64, pc=_pc(i))
        for i in range(n)
    ]
    return Trace.from_instructions(instrs, name="ubench:stream")


def branchy(n: int = 2000, period: int = 5, predictable: bool = False) -> Trace:
    """Branch every ``period`` instructions.

    Predictable variant: always not-taken (a bimodal predictor learns
    it immediately).  Unpredictable: a fixed pseudo-random coin the
    predictor cannot learn.
    """
    _check(n)
    if period < 2:
        raise WorkloadError("period must be >= 2")
    rng = np.random.default_rng(7)
    instrs = []
    for i in range(n):
        if i % period == period - 1:
            taken = False if predictable else bool(rng.random() < 0.5)
            instrs.append(Instruction(op=OpClass.BRANCH, taken=taken, pc=44))
        else:
            instrs.append(Instruction(op=OpClass.IALU, pc=_pc(i)))
    name = "ubench:branchy_" + ("predictable" if predictable else "random")
    return Trace.from_instructions(instrs, name=name)


def call_heavy(n_pairs: int = 200, body: int = 3) -> Trace:
    """CALL / function body / RETURN ladders: exercises the RAS.

    Returns are perfectly predictable by a return address stack and
    systematically mispredicted without one.
    """
    if n_pairs <= 0 or body <= 0:
        raise WorkloadError("need positive pair count and body size")
    instrs = []
    pc_main = 0
    fn_base = 4096
    for _ in range(n_pairs):
        for k in range(body):
            instrs.append(Instruction(op=OpClass.IALU, pc=pc_main + 4 * k))
        call_pc = pc_main + 4 * body
        instrs.append(Instruction(op=OpClass.CALL, taken=True, pc=call_pc))
        for k in range(body):
            instrs.append(Instruction(op=OpClass.IALU, pc=fn_base + 4 * k))
        instrs.append(
            Instruction(op=OpClass.RETURN, taken=True, pc=fn_base + 4 * body)
        )
        pc_main = call_pc + 4
    return Trace.from_instructions(instrs, name="ubench:call_heavy")
